#!/usr/bin/env sh
# Tier-1 verification plus lint gates and a smoke run of the repro binary.
# The workspace is offline-only: everything must resolve from path
# dependencies (no crates.io access in CI).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> dichotomy-lint (determinism & cache-soundness source auditor)"
# The workspace must be clean: zero findings of any severity. Allowed uses
# carry `// lint: allow(CODE) -- reason` annotations in place.
LINT_BIN=target/release/dichotomy-lint
"$LINT_BIN" --json /tmp/ci_lint.json crates
grep -q '"generator":"dichotomy-lint"' /tmp/ci_lint.json
grep -q '"findings":0' /tmp/ci_lint.json
# Negative check: the stage must be *able* to fail. Linting a violating
# fixture (explicit file paths bypass the tests/fixtures skip list) must
# exit nonzero with a deny finding. (`! cmd` is exempt from `set -e`, so
# test the exit status explicitly.)
if "$LINT_BIN" --json /tmp/ci_lint_neg.json \
    crates/lint/tests/fixtures/d001_drop_field.rs > /dev/null; then
    echo "ci.sh: dichotomy-lint passed a field-dropping Encode fixture" >&2
    exit 1
fi
grep -q '"code":"D001"' /tmp/ci_lint_neg.json
grep -q '"severity":"deny"' /tmp/ci_lint_neg.json
# The explorer crate on its own: no deny-level determinism/cache hazards in
# the 16th crate (it feeds the shared probe cache, so the D0xx rules bite).
"$LINT_BIN" --json /tmp/ci_lint_explore.json crates/explore
grep -q '"deny":0' /tmp/ci_lint_explore.json

echo "==> repro lint (semantic plan linter over all experiments)"
# Every experiment expands clean: no deny-level plan diagnostics. The only
# expected finding is tab02's zero-probe note.
cargo run -p dichotomy-bench --release --bin repro -- \
    lint --quick --json /tmp/ci_plan_lint.json all > /tmp/ci_plan_lint.out
grep -q '"generator":"repro-lint"' /tmp/ci_plan_lint.json
# 20 experiment plans + the explore-spec pseudo-id.
grep -q '"experiments":21' /tmp/ci_plan_lint.json
grep -q '"deny":0' /tmp/ci_plan_lint.json
grep -q 'experiments expanded' /tmp/ci_plan_lint.out
# Negative check: a prune floor that cuts every candidate must deny (S008),
# through both the linter and the explore command itself.
if cargo run -p dichotomy-bench --release --bin repro -- \
    lint --quick --min-forecast-tps 1e30 explore > /tmp/ci_plan_lint_neg.out; then
    echo "ci.sh: repro lint passed a zero-survivor explore spec" >&2
    exit 1
fi
grep -q 'S008' /tmp/ci_plan_lint_neg.out
if cargo run -p dichotomy-bench --release --bin repro -- \
    explore --quick --min-forecast-tps 1e30 > /dev/null 2> /tmp/ci_explore_s008.err; then
    echo "ci.sh: repro explore ran a zero-survivor spec" >&2
    exit 1
fi
grep -q 'S008' /tmp/ci_explore_s008.err

# Worker count for the parallel runs: every core, but at least 4 so the
# pool (channel queue, out-of-order completion, reassembly) is exercised
# even on small CI machines.
CORES="$(nproc 2>/dev/null || echo 1)"
JOBS="$CORES"
[ "$JOBS" -lt 4 ] && JOBS=4

echo "==> repro --json reproducibility (seeded, byte-for-byte, --jobs 1 vs --jobs $JOBS)"
# Every pre-existing experiment, pinned in Exact metrics mode: the scheduler
# (timer wheel), the arena driver state, and the worker pool must all be
# invisible in the seeded JSON. scale01 (streaming metrics, 1M-client
# population) and chaos01 (the fault × oracle grid) are smoked separately
# below.
CI_EXPERIMENTS="fig04 fig05 fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 \
fig14 fig15 tab02 tab04 tab05 fault01 closed01 ramp01"
# --no-cache pins the determinism comparisons to real executions: a cache
# hit being byte-identical is asserted by its own stage below, not assumed
# here.
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs 1 --no-cache --json /tmp/ci_repro_a.json $CI_EXPERIMENTS > /tmp/ci_repro_a.out
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs "$JOBS" --no-cache --json /tmp/ci_repro_b.json $CI_EXPERIMENTS > /tmp/ci_repro_b.out
test -s /tmp/ci_repro_a.out
test -s /tmp/ci_repro_a.json
cmp /tmp/ci_repro_a.out /tmp/ci_repro_b.out
cmp /tmp/ci_repro_a.json /tmp/ci_repro_b.json
# The fault, closed-loop and ramp scenarios' windowed series must be present
# in the JSON document, and no probe anywhere in it may clamp events or fail
# (inverted greps: any nonzero clamp counter or nonempty failure list
# anywhere trips the gate).
grep -q '"key":"fault01"' /tmp/ci_repro_a.json
grep -q '"key":"closed01"' /tmp/ci_repro_a.json
grep -q '"key":"ramp01"' /tmp/ci_repro_a.json
grep -q '"windows":\[{' /tmp/ci_repro_a.json
grep -q '"events_clamped":' /tmp/ci_repro_a.json
grep -q '"offered_tps":' /tmp/ci_repro_a.json
# (`! grep` alone is exempt from `set -e`, so fail explicitly.)
if grep -qE '"events_clamped":[1-9]' /tmp/ci_repro_a.json; then
    echo "ci.sh: a probe clamped events (causality bug in a model)" >&2
    exit 1
fi
if grep -q '"failures":\[{' /tmp/ci_repro_a.json; then
    echo "ci.sh: a probe failed during the reproducibility run" >&2
    exit 1
fi

echo "==> repro scale01 --quick (million-client engine path, streaming metrics)"
# The quick variant (8 / 64 / 2000 closed-loop clients) exercises the same
# wheel + arena + streaming-sketch path as the full 1M-client run, and must
# show the Little's-law knee: throughput grows with the population, then
# saturates. Seeded determinism holds in streaming mode too.
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs 1 --no-cache --json /tmp/ci_scale_a.json scale01 > /tmp/ci_scale_a.out
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs 1 --no-cache --json /tmp/ci_scale_b.json scale01 > /dev/null
cmp /tmp/ci_scale_a.json /tmp/ci_scale_b.json
grep -q '"key":"scale01"' /tmp/ci_scale_a.json
grep -q "2000 clients" /tmp/ci_scale_a.out
if grep -q '"failures":\[{' /tmp/ci_scale_a.json; then
    echo "ci.sh: a probe failed during the scale01 smoke run" >&2
    exit 1
fi

echo "==> repro chaos01 --quick (chaos grid: fault injection x invariant oracles)"
# The full model grid through the declarative fault schedules, on the shared
# worker pool: the seeded JSON must be byte-identical whatever the worker
# count, every cell must pass the whole oracle battery (any non-null
# violation string anywhere trips the gate), and the windowed series must
# show the fault signature — a dip (offered load arriving while nothing
# commits) followed by a recovery burst (a backlog-drain window committing
# well above the per-window offered rate; only faulted rows have either).
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs 1 --no-cache --json /tmp/ci_chaos_a.json chaos01 > /tmp/ci_chaos_a.out
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs "$JOBS" --no-cache --json /tmp/ci_chaos_b.json chaos01 > /tmp/ci_chaos_b.out
cmp /tmp/ci_chaos_a.out /tmp/ci_chaos_b.out
cmp /tmp/ci_chaos_a.json /tmp/ci_chaos_b.json
grep -q '"key":"chaos01"' /tmp/ci_chaos_a.json
# The passing oracle battery, rendered per cell in registration order.
grep -qF '"oracles":[{"name":"receipt-conservation","violation":null},{"name":"no-duplicate-receipt","violation":null},{"name":"commit-order-monotonic","violation":null},{"name":"no-clamped-events","violation":null}]' /tmp/ci_chaos_a.json
# Dip: a window with arrivals but zero commits (a crashed primary's stall).
grep -qE '"submitted":[1-9][0-9]*,"committed":0,' /tmp/ci_chaos_a.json
# Recovery: a post-heal window committing the stalled backlog in one burst.
grep -qE '"committed":[1-9][0-9]{2,},' /tmp/ci_chaos_a.json
if grep -q '"violation":"' /tmp/ci_chaos_a.json; then
    echo "ci.sh: an invariant oracle reported a violation in the chaos grid" >&2
    exit 1
fi
if grep -q '"failures":\[{' /tmp/ci_chaos_a.json; then
    echo "ci.sh: a probe failed during the chaos01 run" >&2
    exit 1
fi

echo "==> BENCH_history.json (bench trajectory: append --jobs 1 and --jobs $JOBS entries)"
BENCH_KEY="$(git describe --always 2>/dev/null || echo untagged)"
# Text-only experiments (tab02) schedule no probes and must stay OUT of the
# bench timings — count its occurrences before and after the appends.
TAB02_BEFORE="$(grep -o '"key":"tab02"' BENCH_history.json 2>/dev/null | wc -l)"
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs 1 --bench BENCH_history.json \
    --bench-key "${BENCH_KEY}-jobs1" all > /dev/null
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs "$JOBS" --bench BENCH_history.json \
    --bench-key "${BENCH_KEY}-jobs${JOBS}" all > /dev/null
grep -q '"generator":"repro-bench-history"' BENCH_history.json
grep -q "\"label\":\"${BENCH_KEY}-jobs1\"" BENCH_history.json
grep -q "\"label\":\"${BENCH_KEY}-jobs${JOBS}\"" BENCH_history.json
# `all` includes the chaos grid, so its wall clock rides the trajectory too.
grep -q '"key":"chaos01"' BENCH_history.json
TAB02_AFTER="$(grep -o '"key":"tab02"' BENCH_history.json | wc -l)"
if [ "$TAB02_AFTER" -ne "$TAB02_BEFORE" ]; then
    echo "ci.sh: tab02 (0 probes) leaked into the bench timings" >&2
    exit 1
fi
# The new entries carry the measurement-layer accounting.
grep -q '"dedup_saved_ms":' BENCH_history.json
grep -q '"calibration":\[{' BENCH_history.json

echo "==> repro --cache (cold vs warm: byte-identical JSON, >=5x wall-clock win)"
# Seed 8 keeps the cache trajectory in its own (key, config) lane so the
# near-zero warm walls never skew the seed-7 regression baselines above.
REPRO_BIN=target/release/repro
"$REPRO_BIN" cache clear > /dev/null
COLD_NS="$(date +%s%N)"
"$REPRO_BIN" --quick --seed 8 --jobs "$JOBS" --cache --json /tmp/ci_cache_cold.json \
    --bench BENCH_history.json --bench-key pr8-cache-cold all > /tmp/ci_cache_cold.out
COLD_MS=$(( ($(date +%s%N) - COLD_NS) / 1000000 ))
WARM_NS="$(date +%s%N)"
"$REPRO_BIN" --quick --seed 8 --jobs "$JOBS" --cache --json /tmp/ci_cache_warm.json \
    --bench BENCH_history.json --bench-key pr8-cache-warm all > /tmp/ci_cache_warm.out 2> /tmp/ci_cache_warm.err
WARM_MS=$(( ($(date +%s%N) - WARM_NS) / 1000000 ))
# A cache hit is pinned byte-identical to a cold run, reports and JSON both.
cmp /tmp/ci_cache_cold.out /tmp/ci_cache_warm.out
cmp /tmp/ci_cache_cold.json /tmp/ci_cache_warm.json
# The warm run answered every distinct probe from the cache...
grep -q ' cache hits' /tmp/ci_cache_warm.err
if grep -q ' 0 cache hits' /tmp/ci_cache_warm.err; then
    echo "ci.sh: the warm run hit the cache zero times" >&2
    exit 1
fi
# ...and must be at least 5x faster end-to-end than the cold one.
if [ "$COLD_MS" -lt $(( 5 * WARM_MS )) ]; then
    echo "ci.sh: warm cache run not >=5x faster (cold ${COLD_MS} ms, warm ${WARM_MS} ms)" >&2
    exit 1
fi
echo "    cold ${COLD_MS} ms, warm ${WARM_MS} ms"
grep -q '"label":"pr8-cache-cold"' BENCH_history.json
grep -q '"label":"pr8-cache-warm"' BENCH_history.json
"$REPRO_BIN" cache stats | grep -q entries
"$REPRO_BIN" cache clear > /dev/null

echo "==> repro explore (design-space explorer: determinism, Pareto front, calibration)"
# Byte-identity across worker counts: the report and JSON carry no wall
# clocks, cache counters or jobs fields, so 1 worker vs $JOBS must match.
"$REPRO_BIN" explore --quick --seed 7 --jobs 1 --no-cache \
    --json /tmp/ci_explore_a.json > /tmp/ci_explore_a.out
"$REPRO_BIN" explore --quick --seed 7 --jobs "$JOBS" --no-cache \
    --json /tmp/ci_explore_b.json > /tmp/ci_explore_b.out
cmp /tmp/ci_explore_a.out /tmp/ci_explore_b.out
cmp /tmp/ci_explore_a.json /tmp/ci_explore_b.json
grep -q '"generator":"repro-explore"' /tmp/ci_explore_a.json
# The funnel must cut candidates (no silent caps: every cut is listed) and
# still leave a non-empty Pareto front over the measured survivors.
grep -q '"pruned":\[{' /tmp/ci_explore_a.json
grep -qE '"pareto_front":\["[^"]' /tmp/ci_explore_a.json
# Per-taxonomy-cell calibration with fitted corrections rides the same JSON.
grep -q '"kendall_tau":' /tmp/ci_explore_a.json
grep -qE '"cell":"[^"]+","designs":[1-9]' /tmp/ci_explore_a.json
grep -q '"correction":' /tmp/ci_explore_a.json
# Cold vs warm cache: same bytes whether probes execute or replay.
"$REPRO_BIN" explore --quick --seed 8 --jobs "$JOBS" --cache \
    --json /tmp/ci_explore_cold.json > /tmp/ci_explore_cold.out
"$REPRO_BIN" explore --quick --seed 8 --jobs "$JOBS" --cache \
    --json /tmp/ci_explore_warm.json > /tmp/ci_explore_warm.out 2> /tmp/ci_explore_warm.err
cmp /tmp/ci_explore_cold.out /tmp/ci_explore_warm.out
cmp /tmp/ci_explore_cold.json /tmp/ci_explore_warm.json
grep -q ' cache hits' /tmp/ci_explore_warm.err
if grep -q ' 0 cache hits' /tmp/ci_explore_warm.err; then
    echo "ci.sh: the warm explore run hit the cache zero times" >&2
    exit 1
fi
"$REPRO_BIN" cache clear > /dev/null
# --sched-walls is the opt-out: measured ProbeCalibration walls replace the
# byte-stable nulls in calibration.scheduling.
"$REPRO_BIN" explore --quick --seed 9 --jobs 1 --no-cache --sched-walls \
    --json /tmp/ci_explore_walls.json > /dev/null
grep -qE '"wall_ms":[0-9]' /tmp/ci_explore_walls.json
# The explorer's own wall clock joins the bench trajectory.
"$REPRO_BIN" explore --quick --seed 7 --jobs "$JOBS" \
    --bench BENCH_history.json --bench-key pr10-explore > /dev/null
grep -q '"label":"pr10-explore"' BENCH_history.json

echo "==> microbench --smoke (engine hot-path regression canary)"
cargo run -p dichotomy-bench --release --bin microbench -- --smoke \
    --bench BENCH_history.json --bench-key "${BENCH_KEY}-micro" > /tmp/ci_microbench.out
test -s /tmp/ci_microbench.out
grep -q "event_queue_schedule_pop_10k" /tmp/ci_microbench.out
grep -q "engine_loop_etcd_update_300" /tmp/ci_microbench.out
grep -q "plan_parallel_8probe_etcd" /tmp/ci_microbench.out
# The wheel-vs-heap and sketch-vs-exact cases pin this PR's two hot paths;
# their timings ride the bench trajectory alongside the experiment runs.
grep -q "event_queue_heap_churn_256k" /tmp/ci_microbench.out
grep -q "latency_sketch_stream_100k" /tmp/ci_microbench.out
grep -q "\"label\":\"${BENCH_KEY}-micro\"" BENCH_history.json
grep -q '"key":"event_queue_heap_churn_256k"' BENCH_history.json
grep -q '"key":"latency_sketch_stream_100k"' BENCH_history.json

echo "==> bench_gate (wall-clock trajectory regression gate + coverage keys)"
scripts/bench_gate --require-key scale01 --require-key chaos01 \
    --require-key pr8-cache-cold --require-key pr8-cache-warm \
    --require-key pr10-explore BENCH_history.json

echo "==> ci.sh: all checks passed"
