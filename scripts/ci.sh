#!/usr/bin/env sh
# Tier-1 verification plus lint gates and a smoke run of the repro binary.
# The workspace is offline-only: everything must resolve from path
# dependencies (no crates.io access in CI).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> repro --json reproducibility (two seeded runs, byte-for-byte)"
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --json /tmp/ci_repro_a.json tab02 fig13 fig15 fault01 > /tmp/ci_repro_a.out
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --json /tmp/ci_repro_b.json tab02 fig13 fig15 fault01 > /tmp/ci_repro_b.out
test -s /tmp/ci_repro_a.out
test -s /tmp/ci_repro_a.json
cmp /tmp/ci_repro_a.out /tmp/ci_repro_b.out
cmp /tmp/ci_repro_a.json /tmp/ci_repro_b.json
# The fault scenario's windowed series must be present in the JSON document.
grep -q '"key":"fault01"' /tmp/ci_repro_a.json
grep -q '"windows":\[{' /tmp/ci_repro_a.json

echo "==> microbench --smoke (engine hot-path regression canary)"
cargo run -p dichotomy-bench --release --bin microbench -- --smoke > /tmp/ci_microbench.out
test -s /tmp/ci_microbench.out
grep -q "event_queue_schedule_pop_10k" /tmp/ci_microbench.out
grep -q "engine_loop_etcd_update_300" /tmp/ci_microbench.out

echo "==> ci.sh: all checks passed"
