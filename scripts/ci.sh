#!/usr/bin/env sh
# Tier-1 verification plus lint gates and a smoke run of the repro binary.
# The workspace is offline-only: everything must resolve from path
# dependencies (no crates.io access in CI).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Worker count for the parallel runs: every core, but at least 4 so the
# pool (channel queue, out-of-order completion, reassembly) is exercised
# even on small CI machines.
CORES="$(nproc 2>/dev/null || echo 1)"
JOBS="$CORES"
[ "$JOBS" -lt 4 ] && JOBS=4

echo "==> repro --json reproducibility (seeded, byte-for-byte, --jobs 1 vs --jobs $JOBS)"
CI_EXPERIMENTS="tab02 fig13 fig15 fault01 closed01 ramp01"
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs 1 --json /tmp/ci_repro_a.json $CI_EXPERIMENTS > /tmp/ci_repro_a.out
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs "$JOBS" --json /tmp/ci_repro_b.json $CI_EXPERIMENTS > /tmp/ci_repro_b.out
test -s /tmp/ci_repro_a.out
test -s /tmp/ci_repro_a.json
cmp /tmp/ci_repro_a.out /tmp/ci_repro_b.out
cmp /tmp/ci_repro_a.json /tmp/ci_repro_b.json
# The fault, closed-loop and ramp scenarios' windowed series must be present
# in the JSON document, and no probe anywhere in it may clamp events or fail
# (inverted greps: any nonzero clamp counter or nonempty failure list
# anywhere trips the gate).
grep -q '"key":"fault01"' /tmp/ci_repro_a.json
grep -q '"key":"closed01"' /tmp/ci_repro_a.json
grep -q '"key":"ramp01"' /tmp/ci_repro_a.json
grep -q '"windows":\[{' /tmp/ci_repro_a.json
grep -q '"events_clamped":' /tmp/ci_repro_a.json
grep -q '"offered_tps":' /tmp/ci_repro_a.json
# (`! grep` alone is exempt from `set -e`, so fail explicitly.)
if grep -qE '"events_clamped":[1-9]' /tmp/ci_repro_a.json; then
    echo "ci.sh: a probe clamped events (causality bug in a model)" >&2
    exit 1
fi
if grep -q '"failures":\[{' /tmp/ci_repro_a.json; then
    echo "ci.sh: a probe failed during the reproducibility run" >&2
    exit 1
fi

echo "==> BENCH_history.json (bench trajectory: append --jobs 1 and --jobs $JOBS entries)"
BENCH_KEY="$(git describe --always 2>/dev/null || echo untagged)"
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs 1 --bench BENCH_history.json \
    --bench-key "${BENCH_KEY}-jobs1" all > /dev/null
cargo run -p dichotomy-bench --release --bin repro -- \
    --quick --seed 7 --jobs "$JOBS" --bench BENCH_history.json \
    --bench-key "${BENCH_KEY}-jobs${JOBS}" all > /dev/null
grep -q '"generator":"repro-bench-history"' BENCH_history.json
grep -q "\"label\":\"${BENCH_KEY}-jobs1\"" BENCH_history.json
grep -q "\"label\":\"${BENCH_KEY}-jobs${JOBS}\"" BENCH_history.json

echo "==> microbench --smoke (engine hot-path regression canary)"
cargo run -p dichotomy-bench --release --bin microbench -- --smoke > /tmp/ci_microbench.out
test -s /tmp/ci_microbench.out
grep -q "event_queue_schedule_pop_10k" /tmp/ci_microbench.out
grep -q "engine_loop_etcd_update_300" /tmp/ci_microbench.out
grep -q "plan_parallel_8probe_etcd" /tmp/ci_microbench.out

echo "==> ci.sh: all checks passed"
