#!/usr/bin/env sh
# Tier-1 verification plus a smoke run of the repro binary.
# The workspace is offline-only: everything must resolve from path
# dependencies (no crates.io access in CI).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> repro tab02 (quick smoke, must be reproducible)"
cargo run -p dichotomy-bench --release --bin repro -- --quick tab02 > /tmp/ci_tab02_a.out
cargo run -p dichotomy-bench --release --bin repro -- --quick tab02 > /tmp/ci_tab02_b.out
test -s /tmp/ci_tab02_a.out
cmp /tmp/ci_tab02_a.out /tmp/ci_tab02_b.out

echo "==> ci.sh: all checks passed"
