//! Property-based tests of the authenticated data structures: roots are
//! content-determined, proofs verify exactly for the data they were issued
//! for, and the two state indexes agree with a reference map.

use proptest::prelude::*;
use std::collections::HashMap;

use dichotomy_common::{Hash, Key, Value};
use dichotomy_merkle::{MerkleBucketTree, MerklePatriciaTrie, MerkleTree};

fn arb_kv() -> impl Strategy<Value = Vec<(u16, u8)>> {
    prop::collection::vec((any::<u16>(), 1u8..200), 1..150)
}

fn key_of(i: u16) -> Key {
    Key::new(Hash::of(&i.to_be_bytes()).0[..16].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mpt_matches_reference_map(writes in arb_kv()) {
        let mut trie = MerklePatriciaTrie::new();
        let mut reference: HashMap<u16, u8> = HashMap::new();
        for (k, len) in writes {
            trie.insert(&key_of(k), &Value::filler(len as usize));
            reference.insert(k, len);
        }
        prop_assert_eq!(trie.len(), reference.len());
        for (k, len) in &reference {
            prop_assert_eq!(trie.get(&key_of(*k)).unwrap().len(), *len as usize);
        }
    }

    #[test]
    fn mpt_root_depends_only_on_content(writes in arb_kv()) {
        // Building with the same final content in two different orders (and
        // with intermediate overwrites) must give the same root after pruning
        // semantics are ignored (the root never depends on history).
        let mut final_content: HashMap<u16, u8> = HashMap::new();
        for (k, len) in &writes {
            final_content.insert(*k, *len);
        }
        let mut a = MerklePatriciaTrie::new();
        for (k, len) in &writes {
            a.insert(&key_of(*k), &Value::filler(*len as usize));
        }
        let mut b = MerklePatriciaTrie::new();
        let mut items: Vec<_> = final_content.iter().collect();
        items.sort();
        for (k, len) in items {
            b.insert(&key_of(*k), &Value::filler(*len as usize));
        }
        prop_assert_eq!(a.root_hash(), b.root_hash());
    }

    #[test]
    fn mpt_proofs_verify_for_every_key(writes in arb_kv()) {
        let mut trie = MerklePatriciaTrie::new();
        let mut reference: HashMap<u16, u8> = HashMap::new();
        for (k, len) in writes {
            trie.insert(&key_of(k), &Value::filler(len as usize));
            reference.insert(k, len);
        }
        let root = trie.root_hash();
        for k in reference.keys() {
            let proof = trie.prove(&key_of(*k)).unwrap();
            prop_assert!(MerklePatriciaTrie::verify_proof(root, &key_of(*k), &proof));
            prop_assert!(!MerklePatriciaTrie::verify_proof(Hash::of(b"bogus"), &key_of(*k), &proof));
        }
    }

    #[test]
    fn mbt_authenticates_exactly_the_written_values(writes in arb_kv()) {
        let mut mbt = MerkleBucketTree::new(128, 4);
        let mut reference: HashMap<u16, u8> = HashMap::new();
        for (k, len) in writes {
            mbt.put(&key_of(k), &Value::filler(len as usize));
            reference.insert(k, len);
        }
        prop_assert_eq!(mbt.len(), reference.len());
        for (k, len) in &reference {
            prop_assert!(mbt.authenticate(&key_of(*k), &Value::filler(*len as usize)));
            prop_assert!(!mbt.authenticate(&key_of(*k), &Value::filler(*len as usize + 1)));
        }
    }

    #[test]
    fn merkle_tree_proofs_bind_leaf_index_and_content(
        n in 1usize..200,
        probe in any::<prop::sample::Index>(),
    ) {
        let leaves: Vec<Hash> = (0..n).map(|i| Hash::of(format!("leaf{i}").as_bytes())).collect();
        let tree = MerkleTree::build(&leaves);
        let i = probe.index(n);
        let proof = tree.prove(i).unwrap();
        prop_assert!(proof.verify(leaves[i], tree.root()));
        prop_assert!(!proof.verify(Hash::of(b"tampered"), tree.root()));
    }
}
