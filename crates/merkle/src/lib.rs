//! Authenticated data structures (Section 3.3.2 of the paper).
//!
//! Blockchains compute a content-unique digest over their state so that a
//! light client can verify any returned value against the block header. The
//! two structures the paper measures (Figure 13) are implemented here from
//! scratch, plus the plain binary Merkle tree used for transaction batches:
//!
//! * [`MerklePatriciaTrie`] — Ethereum/Quorum's hexary prefix trie. Every
//!   node is stored in a hash-addressed node store; updates write new nodes
//!   and (in archival mode, the geth default) never delete the old ones,
//!   which is exactly why the paper measures **over 1 KB of overhead per
//!   record** regardless of record size.
//! * [`MerkleBucketTree`] — Hyperledger Fabric v0.6's fixed-size structure: a
//!   configurable number of buckets, records hashed into buckets, and a
//!   fixed-fan-out Merkle tree over the bucket hashes. Its per-record
//!   overhead is a few tens of bytes (the paper reports **+24 B**).
//! * [`MerkleTree`] — a plain binary Merkle tree with inclusion proofs, used
//!   for block transaction digests and by the FalconDB/IntegriDB model.
//!
//! Each structure exposes its root digest, membership proofs, verification,
//! byte-accurate [`StorageFootprint`] accounting, and per-update structural
//! statistics ([`UpdateStats`]) that the simulator multiplies by the cost
//! model's constants to charge CPU time (Section 5.3.3's 56 µs → 2.5 ms MPT
//! reconstruction growth).

pub mod bucket_tree;
pub mod merkle_tree;
pub mod mpt;

pub use bucket_tree::MerkleBucketTree;
pub use merkle_tree::{InclusionProof, MerkleTree};
pub use mpt::{MerklePatriciaTrie, MptProof};

/// Structural statistics of one authenticated-index update, consumed by the
/// cost model (`CostModel::adr_update_us`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// How many index nodes were created or rewritten.
    pub nodes_touched: usize,
    /// Bytes of leaf payload re-encoded and re-hashed.
    pub leaf_bytes: usize,
}
