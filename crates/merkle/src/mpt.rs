//! A Merkle Patricia Trie (MPT), the authenticated state index of Ethereum
//! and Quorum.
//!
//! Structure (matching the Ethereum yellow paper's trie at the level the
//! experiments need):
//!
//! * keys are split into 4-bit **nibbles**; every branch node has 16 child
//!   slots plus an optional value, so the depth can reach twice the key
//!   length in bytes (32 for the paper's 16-byte keys);
//! * **leaf** and **extension** nodes compress single-child runs of nibbles;
//! * every node is serialized and stored in a **hash-addressed node store**
//!   (the role LevelDB plays under geth); parents reference children by the
//!   32-byte hash of their encoding, and the root hash uniquely identifies
//!   the entire state.
//!
//! Updates create new nodes along the path from the root to the touched leaf.
//! In **archival mode** (the default here and in geth) the superseded nodes
//! stay in the node store, which is why the paper measures more than a
//! kilobyte of storage overhead per record for the MPT (Figure 13).
//! [`MerklePatriciaTrie::prune`] garbage-collects unreachable nodes so that
//! the difference can be quantified in an ablation.

// lint: allow(D003) -- hash-addressed node store on the insert hot path; all iterations fold order-insensitive sums
use std::collections::HashMap;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Hash, Key, Value};

use crate::UpdateStats;

/// A trie node. The `Branch` variant dominates the enum's size, but nodes
/// live behind hashes in the node store, so the size gap is paid once per
/// stored node either way.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
enum Node {
    /// Terminal node holding the remaining path and the value.
    Leaf { path: Vec<u8>, value: Vec<u8> },
    /// Path compression node pointing at a single child.
    Extension { path: Vec<u8>, child: Hash },
    /// 16-way branch with an optional value for keys ending here.
    Branch {
        children: [Option<Hash>; 16],
        value: Option<Vec<u8>>,
    },
}

impl Node {
    /// Deterministic byte encoding, standing in for RLP. The encoding is what
    /// gets hashed (node identity) and what the footprint counts.
    fn encode(&self) -> Vec<u8> {
        match self {
            Node::Leaf { path, value } => {
                let mut out = Vec::with_capacity(2 + path.len() + value.len());
                out.push(0u8);
                out.push(path.len() as u8);
                out.extend_from_slice(path);
                out.extend_from_slice(value);
                out
            }
            Node::Extension { path, child } => {
                let mut out = Vec::with_capacity(2 + path.len() + 32);
                out.push(1u8);
                out.push(path.len() as u8);
                out.extend_from_slice(path);
                out.extend_from_slice(&child.0);
                out
            }
            Node::Branch { children, value } => {
                let mut out = Vec::with_capacity(3 + 16 * 32 + value.as_ref().map_or(0, Vec::len));
                out.push(2u8);
                let mut bitmap: u16 = 0;
                for (i, c) in children.iter().enumerate() {
                    if c.is_some() {
                        bitmap |= 1 << i;
                    }
                }
                out.extend_from_slice(&bitmap.to_be_bytes());
                for c in children.iter().flatten() {
                    out.extend_from_slice(&c.0);
                }
                if let Some(v) = value {
                    out.extend_from_slice(v);
                }
                out
            }
        }
    }

    fn hash(&self) -> Hash {
        Hash::of(&self.encode())
    }
}

/// Split a byte key into nibbles (high nibble first).
fn to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 2);
    for b in key {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Length of the common prefix of two nibble slices.
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A membership proof: the encodings of the nodes along the path from the
/// root to the key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MptProof {
    /// Node encodings, root first.
    pub nodes: Vec<Vec<u8>>,
    /// The value the proof claims for the key (`None` = proof of absence is
    /// not supported by this model; absent keys simply return no proof).
    pub value: Vec<u8>,
}

impl MptProof {
    /// Total proof size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }
}

/// The Merkle Patricia Trie.
#[derive(Debug, Default)]
pub struct MerklePatriciaTrie {
    /// Hash-addressed node store (the LevelDB role). Holds the encoded size
    /// alongside the node to make footprint accounting cheap.
    // lint: allow(D003) -- keyed by content hash; iterated only for order-insensitive byte totals and retain
    store: HashMap<Hash, (Node, usize)>,
    root: Option<Hash>,
    /// Number of live key/value pairs.
    len: usize,
    /// Total bytes of raw values currently reachable (payload accounting).
    live_value_bytes: u64,
}

impl MerklePatriciaTrie {
    /// An empty trie.
    pub fn new() -> Self {
        MerklePatriciaTrie::default()
    }

    /// The state root (`Hash::ZERO` when empty). Placing this root in a block
    /// header is what gives blockchains state tamper evidence.
    pub fn root_hash(&self) -> Hash {
        self.root.unwrap_or(Hash::ZERO)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie has no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes in the node store, including superseded (archival)
    /// nodes.
    pub fn stored_node_count(&self) -> usize {
        self.store.len()
    }

    fn put_node(&mut self, node: Node) -> Hash {
        let encoded_len = node.encode().len();
        let h = node.hash();
        self.store.insert(h, (node, encoded_len));
        h
    }

    fn get_node(&self, h: &Hash) -> Option<&Node> {
        self.store.get(h).map(|(n, _)| n)
    }

    /// Insert or overwrite `key` with `value`, returning the structural
    /// update statistics (used for CPU-cost charging).
    pub fn insert(&mut self, key: &Key, value: &Value) -> UpdateStats {
        let nibbles = to_nibbles(key.as_bytes());
        let mut stats = UpdateStats {
            nodes_touched: 0,
            leaf_bytes: value.len(),
        };
        let existing = self.get(key);
        match &existing {
            Some(old) => {
                self.live_value_bytes =
                    self.live_value_bytes - old.len() as u64 + value.len() as u64
            }
            None => {
                self.len += 1;
                self.live_value_bytes += value.len() as u64;
            }
        }
        let root = self.root;
        let new_root = self.insert_at(root, &nibbles, value.as_bytes(), &mut stats);
        self.root = Some(new_root);
        stats
    }

    /// Recursive insert; returns the hash of the new node replacing
    /// `node_hash` for the remaining `path`.
    fn insert_at(
        &mut self,
        node_hash: Option<Hash>,
        path: &[u8],
        value: &[u8],
        stats: &mut UpdateStats,
    ) -> Hash {
        stats.nodes_touched += 1;
        let node = match node_hash {
            None => {
                return self.put_node(Node::Leaf {
                    path: path.to_vec(),
                    value: value.to_vec(),
                });
            }
            Some(h) => self
                .get_node(&h)
                .expect("child hash must resolve in the node store")
                .clone(),
        };
        match node {
            Node::Leaf {
                path: leaf_path,
                value: leaf_value,
            } => {
                if leaf_path == path {
                    return self.put_node(Node::Leaf {
                        path: path.to_vec(),
                        value: value.to_vec(),
                    });
                }
                let cp = common_prefix_len(&leaf_path, path);
                let mut children: [Option<Hash>; 16] = Default::default();
                let mut branch_value = None;

                // Re-home the existing leaf under the branch.
                let leaf_rest = &leaf_path[cp..];
                if leaf_rest.is_empty() {
                    branch_value = Some(leaf_value);
                } else {
                    let child = self.put_node(Node::Leaf {
                        path: leaf_rest[1..].to_vec(),
                        value: leaf_value,
                    });
                    stats.nodes_touched += 1;
                    children[leaf_rest[0] as usize] = Some(child);
                }
                // Place the new value.
                let new_rest = &path[cp..];
                if new_rest.is_empty() {
                    branch_value = Some(value.to_vec());
                } else {
                    let child = self.put_node(Node::Leaf {
                        path: new_rest[1..].to_vec(),
                        value: value.to_vec(),
                    });
                    stats.nodes_touched += 1;
                    children[new_rest[0] as usize] = Some(child);
                }
                let branch = self.put_node(Node::Branch {
                    children,
                    value: branch_value,
                });
                stats.nodes_touched += 1;
                if cp == 0 {
                    branch
                } else {
                    stats.nodes_touched += 1;
                    self.put_node(Node::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })
                }
            }
            Node::Extension {
                path: ext_path,
                child,
            } => {
                let cp = common_prefix_len(&ext_path, path);
                if cp == ext_path.len() {
                    // Descend into the child with the remaining path.
                    let new_child = self.insert_at(Some(child), &path[cp..], value, stats);
                    return self.put_node(Node::Extension {
                        path: ext_path,
                        child: new_child,
                    });
                }
                // Split the extension at the divergence point.
                let mut children: [Option<Hash>; 16] = Default::default();
                let mut branch_value = None;
                let ext_rest = &ext_path[cp..];
                let under_ext = if ext_rest.len() == 1 {
                    child
                } else {
                    stats.nodes_touched += 1;
                    self.put_node(Node::Extension {
                        path: ext_rest[1..].to_vec(),
                        child,
                    })
                };
                children[ext_rest[0] as usize] = Some(under_ext);

                let new_rest = &path[cp..];
                if new_rest.is_empty() {
                    branch_value = Some(value.to_vec());
                } else {
                    stats.nodes_touched += 1;
                    let leaf = self.put_node(Node::Leaf {
                        path: new_rest[1..].to_vec(),
                        value: value.to_vec(),
                    });
                    children[new_rest[0] as usize] = Some(leaf);
                }
                let branch = self.put_node(Node::Branch {
                    children,
                    value: branch_value,
                });
                stats.nodes_touched += 1;
                if cp == 0 {
                    branch
                } else {
                    stats.nodes_touched += 1;
                    self.put_node(Node::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })
                }
            }
            Node::Branch {
                mut children,
                value: branch_value,
            } => {
                if path.is_empty() {
                    return self.put_node(Node::Branch {
                        children,
                        value: Some(value.to_vec()),
                    });
                }
                let slot = path[0] as usize;
                let new_child = self.insert_at(children[slot], &path[1..], value, stats);
                children[slot] = Some(new_child);
                self.put_node(Node::Branch {
                    children,
                    value: branch_value,
                })
            }
        }
    }

    /// Read the value of `key`, if present.
    pub fn get(&self, key: &Key) -> Option<Value> {
        let nibbles = to_nibbles(key.as_bytes());
        let mut current = self.root?;
        let mut path: &[u8] = &nibbles;
        loop {
            match self.get_node(&current)? {
                Node::Leaf {
                    path: leaf_path,
                    value,
                } => {
                    return if leaf_path.as_slice() == path {
                        Some(Value::new(value.clone()))
                    } else {
                        None
                    };
                }
                Node::Extension {
                    path: ext_path,
                    child,
                } => {
                    if path.len() < ext_path.len() || &path[..ext_path.len()] != ext_path.as_slice()
                    {
                        return None;
                    }
                    path = &path[ext_path.len()..];
                    current = *child;
                }
                Node::Branch { children, value } => {
                    if path.is_empty() {
                        return value.clone().map(Value::new);
                    }
                    current = children[path[0] as usize]?;
                    path = &path[1..];
                }
            }
        }
    }

    /// Produce a membership proof for `key`: the encodings of the nodes from
    /// the root down to the key. Returns `None` if the key is absent.
    pub fn prove(&self, key: &Key) -> Option<MptProof> {
        let nibbles = to_nibbles(key.as_bytes());
        let mut nodes = Vec::new();
        let mut current = self.root?;
        let mut path: &[u8] = &nibbles;
        loop {
            let node = self.get_node(&current)?;
            nodes.push(node.encode());
            match node {
                Node::Leaf {
                    path: leaf_path,
                    value,
                } => {
                    return if leaf_path.as_slice() == path {
                        Some(MptProof {
                            nodes,
                            value: value.clone(),
                        })
                    } else {
                        None
                    };
                }
                Node::Extension {
                    path: ext_path,
                    child,
                } => {
                    if path.len() < ext_path.len() || &path[..ext_path.len()] != ext_path.as_slice()
                    {
                        return None;
                    }
                    path = &path[ext_path.len()..];
                    current = *child;
                }
                Node::Branch { children, value } => {
                    if path.is_empty() {
                        return value.as_ref().map(|v| MptProof {
                            nodes,
                            value: v.clone(),
                        });
                    }
                    current = children[path[0] as usize]?;
                    path = &path[1..];
                }
            }
        }
    }

    /// Verify a proof against a trusted root hash and the claimed key/value:
    /// the first node must hash to the root, every node must be the child the
    /// previous node references along the key's nibble path, and the terminal
    /// node must carry the claimed value.
    pub fn verify_proof(root: Hash, key: &Key, proof: &MptProof) -> bool {
        if proof.nodes.is_empty() {
            return false;
        }
        // Each node encoding must hash to the reference held by its parent.
        let mut expected = root;
        let nibbles = to_nibbles(key.as_bytes());
        let mut path: &[u8] = &nibbles;
        for (i, encoded) in proof.nodes.iter().enumerate() {
            if Hash::of(encoded) != expected {
                return false;
            }
            match Self::decode(encoded) {
                Some(Node::Leaf {
                    path: leaf_path,
                    value,
                }) => {
                    return i + 1 == proof.nodes.len()
                        && leaf_path.as_slice() == path
                        && value == proof.value;
                }
                Some(Node::Extension {
                    path: ext_path,
                    child,
                }) => {
                    if path.len() < ext_path.len() || &path[..ext_path.len()] != ext_path.as_slice()
                    {
                        return false;
                    }
                    path = &path[ext_path.len()..];
                    expected = child;
                }
                Some(Node::Branch { children, value }) => {
                    if path.is_empty() {
                        return i + 1 == proof.nodes.len()
                            && value.as_deref() == Some(&proof.value[..]);
                    }
                    match children[path[0] as usize] {
                        Some(c) => {
                            expected = c;
                            path = &path[1..];
                        }
                        None => return false,
                    }
                }
                None => return false,
            }
        }
        false
    }

    /// Decode a node encoding (inverse of [`Node::encode`]); `None` on
    /// malformed input.
    fn decode(bytes: &[u8]) -> Option<Node> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            0 | 1 => {
                let (&plen, rest) = rest.split_first()?;
                let plen = plen as usize;
                if rest.len() < plen {
                    return None;
                }
                let path = rest[..plen].to_vec();
                let body = &rest[plen..];
                if tag == 0 {
                    Some(Node::Leaf {
                        path,
                        value: body.to_vec(),
                    })
                } else {
                    if body.len() != 32 {
                        return None;
                    }
                    Some(Node::Extension {
                        path,
                        child: Hash(body.try_into().ok()?),
                    })
                }
            }
            2 => {
                if rest.len() < 2 {
                    return None;
                }
                let bitmap = u16::from_be_bytes(rest[..2].try_into().ok()?);
                let mut body = &rest[2..];
                let mut children: [Option<Hash>; 16] = Default::default();
                for (i, child) in children.iter_mut().enumerate() {
                    if bitmap & (1 << i) != 0 {
                        if body.len() < 32 {
                            return None;
                        }
                        *child = Some(Hash(body[..32].try_into().ok()?));
                        body = &body[32..];
                    }
                }
                let value = if body.is_empty() {
                    None
                } else {
                    Some(body.to_vec())
                };
                Some(Node::Branch { children, value })
            }
            _ => None,
        }
    }

    /// Garbage-collect every node not reachable from the current root
    /// (switching from geth's archival behaviour to a pruned state trie).
    /// Returns the number of nodes dropped.
    pub fn prune(&mut self) -> usize {
        // lint: allow(D003) -- reachability membership set; order never observed
        let mut reachable = std::collections::HashSet::new();
        if let Some(root) = self.root {
            let mut stack = vec![root];
            while let Some(h) = stack.pop() {
                if !reachable.insert(h) {
                    continue;
                }
                match self.get_node(&h) {
                    Some(Node::Extension { child, .. }) => stack.push(*child),
                    Some(Node::Branch { children, .. }) => {
                        stack.extend(children.iter().flatten().copied())
                    }
                    _ => {}
                }
            }
        }
        let before = self.store.len();
        self.store.retain(|h, _| reachable.contains(h));
        before - self.store.len()
    }
}

impl StorageFootprint for MerklePatriciaTrie {
    fn footprint(&self) -> StorageBreakdown {
        // Every stored node costs its encoding plus the 32-byte hash key under
        // which the node store (LevelDB) files it.
        let node_bytes: u64 = self.store.values().map(|(_, len)| *len as u64 + 32).sum();
        StorageBreakdown {
            payload_bytes: self.live_value_bytes,
            index_bytes: node_bytes.saturating_sub(self.live_value_bytes),
            history_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key16(i: u64) -> Key {
        // 16-byte keys, as in the paper's Figure 13 setup.
        let mut k = vec![0u8; 8];
        k.extend_from_slice(&Hash::of(&i.to_be_bytes()).0[..8]);
        Key::new(k)
    }

    #[test]
    fn empty_trie_has_zero_root() {
        let t = MerklePatriciaTrie::new();
        assert_eq!(t.root_hash(), Hash::ZERO);
        assert!(t.is_empty());
        assert_eq!(t.get(&key16(1)), None);
        assert!(t.prove(&key16(1)).is_none());
    }

    #[test]
    fn insert_get_roundtrip_many_keys() {
        let mut t = MerklePatriciaTrie::new();
        let n = 500;
        for i in 0..n {
            t.insert(&key16(i), &Value::filler((i % 100 + 1) as usize));
        }
        assert_eq!(t.len(), n as usize);
        for i in 0..n {
            assert_eq!(
                t.get(&key16(i)).unwrap().len(),
                (i % 100 + 1) as usize,
                "key {i}"
            );
        }
        assert_eq!(t.get(&key16(n + 1)), None);
    }

    #[test]
    fn overwrite_updates_value_and_keeps_len() {
        let mut t = MerklePatriciaTrie::new();
        t.insert(&key16(1), &Value::filler(10));
        let root1 = t.root_hash();
        t.insert(&key16(1), &Value::filler(20));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&key16(1)).unwrap().len(), 20);
        assert_ne!(t.root_hash(), root1);
    }

    #[test]
    fn root_is_deterministic_and_insertion_order_independent() {
        let build = |order: &[u64]| {
            let mut t = MerklePatriciaTrie::new();
            for &i in order {
                t.insert(&key16(i), &Value::filler((i + 1) as usize));
            }
            t.root_hash()
        };
        let a = build(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = build(&[8, 3, 1, 7, 5, 2, 6, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_contents_different_roots() {
        let mut a = MerklePatriciaTrie::new();
        let mut b = MerklePatriciaTrie::new();
        a.insert(&key16(1), &Value::filler(10));
        b.insert(&key16(1), &Value::filler(11));
        assert_ne!(a.root_hash(), b.root_hash());
    }

    #[test]
    fn proofs_verify_and_reject_tampering() {
        let mut t = MerklePatriciaTrie::new();
        for i in 0..200 {
            t.insert(&key16(i), &Value::filler(32));
        }
        let root = t.root_hash();
        for i in (0..200).step_by(17) {
            let proof = t.prove(&key16(i)).unwrap();
            assert!(MerklePatriciaTrie::verify_proof(root, &key16(i), &proof));
            // Claiming a different value must fail.
            let mut forged = proof.clone();
            forged.value = vec![0xde; 32];
            assert!(!MerklePatriciaTrie::verify_proof(root, &key16(i), &forged));
            // Proof does not transfer to another key.
            assert!(!MerklePatriciaTrie::verify_proof(
                root,
                &key16(i + 1),
                &proof
            ));
            // Proof does not verify against another root.
            assert!(!MerklePatriciaTrie::verify_proof(
                Hash::of(b"other"),
                &key16(i),
                &proof
            ));
        }
    }

    #[test]
    fn update_stats_report_path_length() {
        let mut t = MerklePatriciaTrie::new();
        for i in 0..1000 {
            t.insert(&key16(i), &Value::filler(10));
        }
        let stats = t.insert(&key16(5), &Value::filler(1000));
        assert!(stats.nodes_touched >= 2, "stats {stats:?}");
        assert_eq!(stats.leaf_bytes, 1000);
    }

    #[test]
    fn archival_mode_accumulates_nodes_and_prune_reclaims_them() {
        let mut t = MerklePatriciaTrie::new();
        for i in 0..200 {
            t.insert(&key16(i), &Value::filler(100));
        }
        let before_overwrites = t.stored_node_count();
        // Overwrite the same keys with new contents: archival mode keeps the
        // superseded versions of every rewritten path node.
        for i in 0..200 {
            t.insert(&key16(i), &Value::filler(120));
        }
        assert!(t.stored_node_count() > before_overwrites);
        let dropped = t.prune();
        assert!(dropped > 0);
        // Everything still readable after pruning.
        for i in 0..200 {
            assert!(t.get(&key16(i)).is_some());
        }
        // Pruning again drops nothing.
        assert_eq!(t.prune(), 0);
    }

    #[test]
    fn per_record_overhead_exceeds_one_kilobyte_like_figure_13() {
        // 10K records of 10 bytes with 16-byte keys: the paper reports an MPT
        // state-storage cost of ≈1 090 B per record (record + >1 KB index).
        let mut t = MerklePatriciaTrie::new();
        let n = 10_000u64;
        for i in 0..n {
            t.insert(&key16(i), &Value::filler(10));
        }
        let per_record = t.footprint().total() as f64 / n as f64;
        assert!(
            per_record > 1000.0,
            "per-record cost {per_record:.0} B should exceed 1 KB"
        );
    }

    #[test]
    fn node_decode_roundtrip() {
        let leaf = Node::Leaf {
            path: vec![1, 2, 3],
            value: b"hello".to_vec(),
        };
        assert_eq!(MerklePatriciaTrie::decode(&leaf.encode()), Some(leaf));
        let ext = Node::Extension {
            path: vec![4, 5],
            child: Hash::of(b"child"),
        };
        assert_eq!(MerklePatriciaTrie::decode(&ext.encode()), Some(ext));
        let mut children: [Option<Hash>; 16] = Default::default();
        children[3] = Some(Hash::of(b"a"));
        children[15] = Some(Hash::of(b"b"));
        let branch = Node::Branch {
            children,
            value: Some(b"v".to_vec()),
        };
        assert_eq!(MerklePatriciaTrie::decode(&branch.encode()), Some(branch));
        assert_eq!(MerklePatriciaTrie::decode(&[9, 9, 9]), None);
    }
}
