//! A plain binary Merkle tree over an ordered list of leaves, with inclusion
//! proofs. Used for the per-block transaction digest and as the
//! IntegriDB-style authenticated index in the FalconDB hybrid model.

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::Hash;

/// A sibling step in an inclusion proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling hash at this level.
    pub sibling: Hash,
    /// Whether the sibling is on the right of the running hash.
    pub sibling_on_right: bool,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// The sibling path from the leaf up to (but excluding) the root.
    pub path: Vec<ProofStep>,
}

impl InclusionProof {
    /// Verify the proof: fold the leaf hash up the path and compare with the
    /// expected root.
    pub fn verify(&self, leaf_hash: Hash, root: Hash) -> bool {
        let mut running = leaf_hash;
        for step in &self.path {
            running = if step.sibling_on_right {
                Hash::combine(&running, &step.sibling)
            } else {
                Hash::combine(&step.sibling, &running)
            };
        }
        running == root
    }

    /// Proof size in bytes (32 per sibling + 1 direction bit rounded up).
    pub fn size_bytes(&self) -> usize {
        self.path.len() * 33
    }
}

/// The binary Merkle tree. Leaves are hashes supplied by the caller (hash of
/// a transaction, of a row, ...). Odd nodes are promoted to the next level.
#[derive(Debug, Clone, Default)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, last level = root (single hash).
    levels: Vec<Vec<Hash>>,
}

impl MerkleTree {
    /// Build the tree over the given leaf hashes.
    pub fn build(leaves: &[Hash]) -> Self {
        if leaves.is_empty() {
            return MerkleTree { levels: Vec::new() };
        }
        let mut levels = vec![leaves.to_vec()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let next: Vec<Hash> = prev
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        Hash::combine(&pair[0], &pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Root digest (`Hash::ZERO` for an empty tree).
    pub fn root(&self) -> Hash {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Hash::ZERO)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Tree height (number of levels including the leaves; 0 when empty).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Inclusion proof for the leaf at `index`.
    pub fn prove(&self, index: usize) -> Option<InclusionProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling_idx = if idx % 2 == 0 { idx + 1 } else { idx - 1 };
            if sibling_idx < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling_idx],
                    sibling_on_right: idx % 2 == 0,
                });
            }
            idx /= 2;
        }
        Some(InclusionProof {
            leaf_index: index,
            path,
        })
    }
}

impl StorageFootprint for MerkleTree {
    fn footprint(&self) -> StorageBreakdown {
        let interior: u64 = self
            .levels
            .iter()
            .skip(1)
            .map(|l| l.len() as u64 * 32)
            .sum();
        let leaves = self.leaf_count() as u64 * 32;
        StorageBreakdown {
            payload_bytes: 0,
            index_bytes: interior + leaves,
            history_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash> {
        (0..n)
            .map(|i| Hash::of(format!("leaf{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let t = MerkleTree::build(&[]);
        assert_eq!(t.root(), Hash::ZERO);
        assert_eq!(t.leaf_count(), 0);
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_the_leaf() {
        let l = leaves(1);
        let t = MerkleTree::build(&l);
        assert_eq!(t.root(), l[0]);
        assert_eq!(t.height(), 1);
        let proof = t.prove(0).unwrap();
        assert!(proof.path.is_empty());
        assert!(proof.verify(l[0], t.root()));
    }

    #[test]
    fn proofs_verify_for_all_leaves_and_sizes() {
        for n in [2usize, 3, 5, 8, 13, 64, 100] {
            let l = leaves(n);
            let t = MerkleTree::build(&l);
            for (i, leaf) in l.iter().enumerate() {
                let proof = t.prove(i).unwrap();
                assert!(proof.verify(*leaf, t.root()), "n={n} i={i}");
                // Proof bound to the right leaf.
                if n > 1 {
                    let other = l[(i + 1) % n];
                    assert!(!proof.verify(other, t.root()), "n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let l = leaves(10);
        let t = MerkleTree::build(&l);
        for i in 0..10 {
            let mut tampered = l.clone();
            tampered[i] = Hash::of(b"evil");
            assert_ne!(MerkleTree::build(&tampered).root(), t.root());
        }
    }

    #[test]
    fn proof_size_is_logarithmic() {
        let t = MerkleTree::build(&leaves(1024));
        let proof = t.prove(17).unwrap();
        assert_eq!(proof.path.len(), 10);
        assert_eq!(proof.size_bytes(), 330);
    }

    #[test]
    fn footprint_counts_all_levels() {
        let t = MerkleTree::build(&leaves(8));
        // 8 + 4 + 2 + 1 = 15 hashes.
        assert_eq!(t.footprint().index_bytes, 15 * 32);
    }
}
