//! A Merkle Bucket Tree (MBT), the authenticated state index of Hyperledger
//! Fabric v0.6 (and of the AHL sharded-blockchain model).
//!
//! The structure has a *fixed* scale, unlike the MPT: records are hashed into
//! one of `num_buckets` buckets, each bucket's content is digested, and a
//! Merkle tree with a fixed `fanout` is built over the bucket digests. With
//! the paper's configuration (1 000 buckets, fan-out 4) the tree depth is
//! capped at ⌈log₄ 1000⌉ = 5, so the per-record overhead stays at a few tens
//! of bytes (Figure 13 reports +24 B per record) — each record contributes
//! one fixed-size digest entry to its bucket while the interior tree is
//! amortized over all records.

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Hash, Key, Value};

use crate::UpdateStats;

/// Per-record entry kept inside a bucket: a truncated digest of the key and a
/// truncated digest of the value (24 bytes total, matching the overhead the
/// paper measures for Fabric v0.6's data nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
struct BucketEntry {
    key_digest: [u8; 16],
    value_digest: [u8; 8],
}

/// The Merkle Bucket Tree.
#[derive(Debug)]
pub struct MerkleBucketTree {
    num_buckets: usize,
    fanout: usize,
    /// Bucket contents, each kept sorted by key digest.
    buckets: Vec<Vec<BucketEntry>>,
    /// `levels[0]` = bucket digests, last level = root.
    levels: Vec<Vec<Hash>>,
    len: usize,
}

impl MerkleBucketTree {
    /// The configuration used in the paper's experiments: 1 000 buckets with
    /// a Merkle fan-out of 4 (tree depth ⌈log₄ 1000⌉ = 5).
    pub fn fabric_default() -> Self {
        Self::new(1000, 4)
    }

    /// Build an empty tree with the given shape.
    pub fn new(num_buckets: usize, fanout: usize) -> Self {
        let num_buckets = num_buckets.max(1);
        let fanout = fanout.max(2);
        let mut tree = MerkleBucketTree {
            num_buckets,
            fanout,
            buckets: vec![Vec::new(); num_buckets],
            levels: Vec::new(),
            len: 0,
        };
        tree.rebuild_all_levels();
        tree
    }

    /// Depth of the Merkle tree above the buckets (number of hashing levels,
    /// including the bucket-digest level).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root digest of the global state.
    pub fn root_hash(&self) -> Hash {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Hash::ZERO)
    }

    fn bucket_of(&self, key: &Key) -> usize {
        (Hash::of(key.as_bytes()).prefix_u64() % self.num_buckets as u64) as usize
    }

    fn digest_bucket(entries: &[BucketEntry]) -> Hash {
        if entries.is_empty() {
            return Hash::ZERO;
        }
        let mut h = dichotomy_common::hash::Hasher::new();
        for e in entries {
            h.update(&e.key_digest);
            h.update(&e.value_digest);
        }
        h.finalize()
    }

    fn rebuild_all_levels(&mut self) {
        let bucket_digests: Vec<Hash> = self
            .buckets
            .iter()
            .map(|b| Self::digest_bucket(b))
            .collect();
        self.levels = vec![bucket_digests];
        while self.levels.last().expect("non-empty").len() > 1 {
            let prev = self.levels.last().expect("non-empty");
            let next: Vec<Hash> = prev
                .chunks(self.fanout)
                .map(|group| {
                    let mut h = dichotomy_common::hash::Hasher::new();
                    for g in group {
                        h.update(&g.0);
                    }
                    h.finalize()
                })
                .collect();
            self.levels.push(next);
        }
    }

    /// Recompute only the path from `bucket` to the root after that bucket
    /// changed. Returns the number of tree nodes rewritten.
    fn refresh_path(&mut self, bucket: usize) -> usize {
        let mut touched = 0;
        self.levels[0][bucket] = Self::digest_bucket(&self.buckets[bucket]);
        touched += 1;
        let mut idx = bucket;
        for level in 1..self.levels.len() {
            idx /= self.fanout;
            let start = idx * self.fanout;
            let end = (start + self.fanout).min(self.levels[level - 1].len());
            let mut h = dichotomy_common::hash::Hasher::new();
            for g in &self.levels[level - 1][start..end] {
                h.update(&g.0);
            }
            self.levels[level][idx] = h.finalize();
            touched += 1;
        }
        touched
    }

    /// Insert or overwrite `key` with `value`, returning update statistics
    /// for CPU-cost charging.
    pub fn put(&mut self, key: &Key, value: &Value) -> UpdateStats {
        let bucket = self.bucket_of(key);
        let key_digest: [u8; 16] = Hash::of(key.as_bytes()).0[..16]
            .try_into()
            .expect("16 bytes");
        let value_digest: [u8; 8] = Hash::of(value.as_bytes()).0[..8]
            .try_into()
            .expect("8 bytes");
        let entries = &mut self.buckets[bucket];
        match entries.binary_search_by(|e| e.key_digest.cmp(&key_digest)) {
            Ok(i) => entries[i].value_digest = value_digest,
            Err(i) => {
                entries.insert(
                    i,
                    BucketEntry {
                        key_digest,
                        value_digest,
                    },
                );
                self.len += 1;
            }
        }
        let nodes = self.refresh_path(bucket);
        UpdateStats {
            nodes_touched: nodes,
            leaf_bytes: value.len(),
        }
    }

    /// Whether `key` is present with exactly `value` (membership check a
    /// validator performs; MBT cannot return the value itself, it only
    /// authenticates what the state storage returned).
    pub fn authenticate(&self, key: &Key, value: &Value) -> bool {
        let bucket = self.bucket_of(key);
        let key_digest: [u8; 16] = Hash::of(key.as_bytes()).0[..16]
            .try_into()
            .expect("16 bytes");
        let value_digest: [u8; 8] = Hash::of(value.as_bytes()).0[..8]
            .try_into()
            .expect("8 bytes");
        self.buckets[bucket]
            .binary_search_by(|e| e.key_digest.cmp(&key_digest))
            .map(|i| self.buckets[bucket][i].value_digest == value_digest)
            .unwrap_or(false)
    }

    /// Remove `key`; returns `true` if it was present.
    pub fn delete(&mut self, key: &Key) -> bool {
        let bucket = self.bucket_of(key);
        let key_digest: [u8; 16] = Hash::of(key.as_bytes()).0[..16]
            .try_into()
            .expect("16 bytes");
        let entries = &mut self.buckets[bucket];
        if let Ok(i) = entries.binary_search_by(|e| e.key_digest.cmp(&key_digest)) {
            entries.remove(i);
            self.len -= 1;
            self.refresh_path(bucket);
            true
        } else {
            false
        }
    }
}

impl StorageFootprint for MerkleBucketTree {
    fn footprint(&self) -> StorageBreakdown {
        // 24 bytes per record entry + 32 bytes per interior/bucket hash.
        let entry_bytes: u64 = self.buckets.iter().map(|b| b.len() as u64 * 24).sum();
        let tree_bytes: u64 = self.levels.iter().map(|l| l.len() as u64 * 32).sum();
        StorageBreakdown {
            payload_bytes: 0,
            index_bytes: entry_bytes + tree_bytes,
            history_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key {
        Key::new(Hash::of(&i.to_be_bytes()).0[..16].to_vec())
    }

    #[test]
    fn fabric_default_depth_is_five_plus_root_levels() {
        let t = MerkleBucketTree::fabric_default();
        // 1000 → 250 → 63 → 16 → 4 → 1: six levels of hashes, i.e. the
        // ⌈log₄ 1000⌉ = 5 interior hashing steps the paper describes.
        assert_eq!(t.depth(), 6);
    }

    #[test]
    fn put_and_authenticate() {
        let mut t = MerkleBucketTree::fabric_default();
        t.put(&key(1), &Value::filler(100));
        t.put(&key(2), &Value::filler(200));
        assert_eq!(t.len(), 2);
        assert!(t.authenticate(&key(1), &Value::filler(100)));
        assert!(!t.authenticate(&key(1), &Value::filler(101)));
        assert!(!t.authenticate(&key(3), &Value::filler(100)));
    }

    #[test]
    fn root_changes_with_every_update() {
        let mut t = MerkleBucketTree::fabric_default();
        let r0 = t.root_hash();
        t.put(&key(1), &Value::filler(10));
        let r1 = t.root_hash();
        t.put(&key(1), &Value::filler(11));
        let r2 = t.root_hash();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn incremental_path_refresh_matches_full_rebuild() {
        let mut t = MerkleBucketTree::new(64, 4);
        for i in 0..500 {
            t.put(&key(i), &Value::filler((i % 50 + 1) as usize));
        }
        let incremental_root = t.root_hash();
        t.rebuild_all_levels();
        assert_eq!(t.root_hash(), incremental_root);
    }

    #[test]
    fn overwrite_does_not_grow_len() {
        let mut t = MerkleBucketTree::fabric_default();
        for _ in 0..10 {
            t.put(&key(7), &Value::filler(10));
        }
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_removes_and_changes_root() {
        let mut t = MerkleBucketTree::fabric_default();
        t.put(&key(1), &Value::filler(10));
        let with = t.root_hash();
        assert!(t.delete(&key(1)));
        assert!(!t.delete(&key(1)));
        assert_ne!(t.root_hash(), with);
        assert_eq!(t.len(), 0);
        assert!(!t.authenticate(&key(1), &Value::filler(10)));
    }

    #[test]
    fn per_record_overhead_is_tens_of_bytes_like_figure_13() {
        let mut t = MerkleBucketTree::fabric_default();
        let n = 10_000u64;
        for i in 0..n {
            t.put(&key(i), &Value::filler(10));
        }
        let overhead = t.footprint().overhead_per_record(n);
        // 24 B per entry + amortized fixed tree (≈ 1333 hashes / 10 000 recs).
        assert!(
            overhead > 20.0 && overhead < 40.0,
            "overhead {overhead:.1} B/record"
        );
    }

    #[test]
    fn update_stats_depth_is_fixed() {
        let mut t = MerkleBucketTree::fabric_default();
        let stats = t.put(&key(9), &Value::filler(5000));
        assert_eq!(stats.nodes_touched, 6);
        assert_eq!(stats.leaf_bytes, 5000);
        // Depth does not grow with more records.
        for i in 0..1000 {
            t.put(&key(i), &Value::filler(10));
        }
        assert_eq!(t.put(&key(9), &Value::filler(10)).nodes_touched, 6);
    }
}
