//! Replication profiles: the bridge between the message-level protocol
//! implementations and the transaction pipelines in `dichotomy-systems`.
//!
//! A system model needs three numbers per replicated batch: how long until
//! the batch commits (latency), how long the leader/primary is busy and
//! therefore unavailable for the next batch (occupancy — this is what caps
//! throughput), and how many messages/bytes the protocol put on the wire
//! (which makes BFT protocols degrade at scale). [`ReplicationProfile`]
//! computes these from the protocol's message pattern and the network
//! configuration, and the consensus crate's tests check the latency numbers
//! against the message-level Raft/PBFT cluster simulations so the shortcut
//! stays honest.

use dichotomy_simnet::{CostModel, NetworkConfig};

/// Crash vs Byzantine fault tolerance (the failure-model row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureModel {
    /// Crash fault tolerant: f+1 (sync) or 2f+1 (async) replicas.
    Crash,
    /// Byzantine fault tolerant: 3f+1 replicas, O(N²) messages.
    Byzantine,
}

/// Which ordering/replication machinery a system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Raft / Paxos style majority consensus (CFT).
    Raft,
    /// PBFT-family three-phase consensus (BFT).
    Pbft,
    /// IBFT — PBFT tuned for blockchains (BFT, no checkpoints).
    Ibft,
    /// Tendermint — BFT consensus with rotating proposers, used by
    /// FalconDB/BigchainDB.
    Tendermint,
    /// Kafka-like shared log (CFT, ordering decoupled from replication).
    SharedLog,
    /// Proof of work (Byzantine-tolerant, probabilistic).
    ProofOfWork,
    /// Primary-backup without consensus (H-Store, Cassandra, DynamoDB).
    PrimaryBackup,
}

impl dichotomy_common::Encode for ProtocolKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ProtocolKind::Raft => 0,
            ProtocolKind::Pbft => 1,
            ProtocolKind::Ibft => 2,
            ProtocolKind::Tendermint => 3,
            ProtocolKind::SharedLog => 4,
            ProtocolKind::ProofOfWork => 5,
            ProtocolKind::PrimaryBackup => 6,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl ProtocolKind {
    /// The failure model a protocol addresses.
    pub fn failure_model(&self) -> FailureModel {
        match self {
            ProtocolKind::Raft | ProtocolKind::SharedLog | ProtocolKind::PrimaryBackup => {
                FailureModel::Crash
            }
            ProtocolKind::Pbft
            | ProtocolKind::Ibft
            | ProtocolKind::Tendermint
            | ProtocolKind::ProofOfWork => FailureModel::Byzantine,
        }
    }

    /// Replicas required to tolerate `f` failures (asynchronous network,
    /// Section 3.1.3).
    pub fn replicas_for(&self, f: usize) -> usize {
        match self.failure_model() {
            FailureModel::Crash => 2 * f + 1,
            FailureModel::Byzantine => 3 * f + 1,
        }
    }

    /// Failures tolerated by a cluster of `n` replicas.
    pub fn tolerated_failures(&self, n: usize) -> usize {
        match self.failure_model() {
            FailureModel::Crash => n.saturating_sub(1) / 2,
            FailureModel::Byzantine => n.saturating_sub(1) / 3,
        }
    }

    /// Human-readable protocol name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Raft => "Raft",
            ProtocolKind::Pbft => "PBFT",
            ProtocolKind::Ibft => "IBFT",
            ProtocolKind::Tendermint => "Tendermint",
            ProtocolKind::SharedLog => "shared log (Kafka)",
            ProtocolKind::ProofOfWork => "PoW",
            ProtocolKind::PrimaryBackup => "primary-backup",
        }
    }
}

/// The per-batch costs of running one protocol instance over a given cluster.
#[derive(Debug, Clone)]
pub struct ReplicationProfile {
    /// Protocol in use.
    pub kind: ProtocolKind,
    /// Cluster size participating in ordering.
    pub n: usize,
    /// Network the replicas share.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
    /// Mean PoW block interval (only used by [`ProtocolKind::ProofOfWork`]).
    pub pow_interval_us: u64,
}

impl ReplicationProfile {
    /// Build a profile.
    pub fn new(kind: ProtocolKind, n: usize, network: NetworkConfig, costs: CostModel) -> Self {
        ReplicationProfile {
            kind,
            n: n.max(1),
            network,
            costs,
            pow_interval_us: 15_000_000,
        }
    }

    fn hop_us(&self, bytes: usize) -> u64 {
        self.network.base_latency_us
            + (bytes as f64 / self.network.bandwidth_bytes_per_us) as u64
            + self.network.jitter_us / 2
    }

    /// Time from handing a batch of `payload_bytes` to the leader/primary
    /// until it is durably committed/ordered cluster-wide.
    pub fn commit_latency_us(&self, payload_bytes: usize) -> u64 {
        match self.kind {
            ProtocolKind::Raft => {
                // AppendEntries with payload + ack, plus leader log append.
                self.costs.log_append_us(1) + self.hop_us(payload_bytes) + self.hop_us(64)
            }
            ProtocolKind::Pbft | ProtocolKind::Ibft | ProtocolKind::Tendermint => {
                // Pre-prepare with payload, then two all-to-all small phases;
                // each phase also pays the quorum's signature verifications.
                let quorum = 2 * self.kind.tolerated_failures(self.n) + 1;
                self.hop_us(payload_bytes)
                    + 2 * self.hop_us(96)
                    + 2 * self.costs.verify_signatures_us(quorum)
            }
            ProtocolKind::SharedLog => {
                // Producer -> broker, broker replication round, ack.
                self.hop_us(payload_bytes) + 2 * self.hop_us(64) + self.hop_us(64)
            }
            ProtocolKind::ProofOfWork => self.pow_interval_us + self.hop_us(payload_bytes),
            ProtocolKind::PrimaryBackup => {
                // Primary forwards to backups and waits for the slowest ack.
                self.hop_us(payload_bytes) + self.hop_us(64)
            }
        }
        .max(1)
    }

    /// How long the leader/primary (the serial bottleneck of the protocol) is
    /// occupied per batch: this bounds the rate at which batches can be
    /// started, i.e. peak ordering throughput ≈ 1e6 / occupancy.
    pub fn leader_occupancy_us(&self, payload_bytes: usize) -> u64 {
        let peers = self.n.saturating_sub(1) as f64;
        let serialization = payload_bytes as f64 / self.network.bandwidth_bytes_per_us;
        match self.kind {
            ProtocolKind::Raft => {
                // The leader serializes one copy per follower on its uplink
                // and appends to its log.
                (peers * serialization) as u64 + self.costs.log_append_us(1)
            }
            ProtocolKind::Pbft | ProtocolKind::Ibft | ProtocolKind::Tendermint => {
                // Same dissemination cost, plus processing 2 quorums of
                // signed votes.
                let quorum = 2 * self.kind.tolerated_failures(self.n) + 1;
                (peers * serialization) as u64
                    + self.costs.verify_signatures_us(2 * quorum)
                    + self.costs.log_append_us(1)
            }
            ProtocolKind::SharedLog => {
                // The broker pool ingests the batch once; producers are not
                // the bottleneck.
                serialization as u64 + self.costs.log_append_us(1)
            }
            ProtocolKind::ProofOfWork => {
                // Producing a block occupies the winning miner for the
                // propagation time only; the interval dominates latency, not
                // occupancy.
                serialization as u64 * peers as u64
            }
            ProtocolKind::PrimaryBackup => (peers * serialization) as u64,
        }
        .max(1)
    }

    /// Number of protocol messages exchanged per committed batch.
    pub fn messages_per_commit(&self) -> u64 {
        let n = self.n as u64;
        let peers = n.saturating_sub(1);
        match self.kind {
            ProtocolKind::Raft | ProtocolKind::PrimaryBackup => 2 * peers,
            ProtocolKind::Pbft | ProtocolKind::Ibft | ProtocolKind::Tendermint => {
                // pre-prepare (n-1) + prepare (n(n-1)) + commit (n(n-1)).
                peers + 2 * n * peers
            }
            ProtocolKind::SharedLog => 4,
            ProtocolKind::ProofOfWork => peers,
        }
    }

    /// Relative standard deviation of commit latency; the paper observes that
    /// IBFT's variance grows with `f` because larger quorums make the
    /// view-change (interruption) probability higher (Section 5.2.3).
    pub fn latency_variability(&self) -> f64 {
        match self.kind {
            ProtocolKind::Raft | ProtocolKind::SharedLog | ProtocolKind::PrimaryBackup => 0.05,
            ProtocolKind::Pbft | ProtocolKind::Ibft | ProtocolKind::Tendermint => {
                0.05 + 0.02 * self.kind.tolerated_failures(self.n) as f64
            }
            ProtocolKind::ProofOfWork => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbft::{PbftCluster, PbftConfig};
    use crate::raft::{RaftCluster, RaftConfig};

    fn profile(kind: ProtocolKind, n: usize) -> ReplicationProfile {
        ReplicationProfile::new(kind, n, NetworkConfig::lan_1gbps(), CostModel::calibrated())
    }

    #[test]
    fn replica_requirements_match_section_3_1_3() {
        assert_eq!(ProtocolKind::Raft.replicas_for(1), 3);
        assert_eq!(ProtocolKind::Raft.replicas_for(2), 5);
        assert_eq!(ProtocolKind::Pbft.replicas_for(1), 4);
        assert_eq!(ProtocolKind::Pbft.replicas_for(2), 7);
        assert_eq!(ProtocolKind::Ibft.tolerated_failures(7), 2);
        assert_eq!(ProtocolKind::Raft.tolerated_failures(7), 3);
    }

    #[test]
    fn bft_messages_grow_quadratically_cft_linearly() {
        let raft4 = profile(ProtocolKind::Raft, 4).messages_per_commit();
        let raft16 = profile(ProtocolKind::Raft, 16).messages_per_commit();
        let pbft4 = profile(ProtocolKind::Pbft, 4).messages_per_commit();
        let pbft16 = profile(ProtocolKind::Pbft, 16).messages_per_commit();
        assert_eq!(raft16, raft4 * 5); // 30 vs 6: linear in n-1
        assert!(pbft16 > pbft4 * 10); // quadratic
        assert!(pbft4 > raft4);
    }

    #[test]
    fn bft_latency_exceeds_cft_latency() {
        let raft = profile(ProtocolKind::Raft, 7).commit_latency_us(10_000);
        let ibft = profile(ProtocolKind::Ibft, 7).commit_latency_us(10_000);
        assert!(ibft > raft);
    }

    #[test]
    fn shared_log_occupancy_is_independent_of_consumer_count() {
        let small = profile(ProtocolKind::SharedLog, 3).leader_occupancy_us(50_000);
        let large = profile(ProtocolKind::SharedLog, 19).leader_occupancy_us(50_000);
        assert_eq!(small, large);
        // Whereas Raft's leader occupancy grows with followers.
        let raft_small = profile(ProtocolKind::Raft, 3).leader_occupancy_us(50_000);
        let raft_large = profile(ProtocolKind::Raft, 19).leader_occupancy_us(50_000);
        assert!(raft_large > raft_small * 4);
    }

    #[test]
    fn ibft_variability_grows_with_f() {
        let v1 = profile(ProtocolKind::Ibft, 4).latency_variability();
        let v6 = profile(ProtocolKind::Ibft, 19).latency_variability();
        assert!(v6 > v1);
        assert!(profile(ProtocolKind::Raft, 19).latency_variability() < v6);
    }

    #[test]
    fn pow_latency_is_dominated_by_the_block_interval() {
        let p = profile(ProtocolKind::ProofOfWork, 8);
        assert!(p.commit_latency_us(1000) >= p.pow_interval_us);
    }

    #[test]
    fn raft_profile_latency_matches_message_level_simulation() {
        // Message-level cluster measurement.
        let mut cluster = RaftCluster::new(3, RaftConfig::default(), 42);
        cluster.run_until_leader(2_000_000).expect("leader");
        let start = cluster.now();
        let id = cluster.propose(1024).unwrap();
        cluster.run_until(start + 200_000);
        let measured = cluster.commit_time(id).expect("committed") - start;
        // Profile prediction.
        let predicted = profile(ProtocolKind::Raft, 3).commit_latency_us(1024);
        let ratio = measured as f64 / predicted as f64;
        assert!(
            (0.3..3.0).contains(&ratio),
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn pbft_profile_latency_matches_message_level_simulation() {
        let mut cluster = PbftCluster::new(4, PbftConfig::default(), 42);
        let (_, payload) = cluster.propose(1024);
        cluster.run_until(100_000);
        let measured = cluster.commit_time(payload).expect("committed");
        let predicted = profile(ProtocolKind::Pbft, 4).commit_latency_us(1024);
        let ratio = measured as f64 / predicted as f64;
        assert!(
            (0.2..5.0).contains(&ratio),
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProtocolKind::Raft.name(), "Raft");
        assert_eq!(ProtocolKind::SharedLog.name(), "shared log (Kafka)");
        assert_eq!(ProtocolKind::ProofOfWork.name(), "PoW");
    }
}
