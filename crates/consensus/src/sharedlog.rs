//! A Kafka-like shared-log ordering service.
//!
//! Fabric's ordering service, Veritas, ChainifyDB and BRD all outsource
//! ordering to a shared log (Section 3.1.2): producers append batches, the
//! log assigns a total order, and consumers (the peers) pull committed
//! batches independently. The defining performance property the paper calls
//! out is that *ordering is decoupled from state replication*: append
//! throughput is limited by the log brokers, not by the number of consumers,
//! so adding peers does not slow the log down (unlike consensus, where every
//! node participates in every decision).

use dichotomy_common::Timestamp;
use dichotomy_simnet::{NetworkConfig, Resource};

/// Configuration of the ordering service.
#[derive(Debug, Clone)]
pub struct SharedLogConfig {
    /// Number of broker/orderer nodes (Fabric fixes this at 3 in the paper's
    /// experiments, independent of the peer count).
    pub brokers: usize,
    /// Maximum broker ingest bandwidth in bytes/µs (aggregate).
    pub ingest_bytes_per_us: f64,
    /// Per-append fixed broker CPU in µs (batch validation, index update).
    pub append_overhead_us: u64,
    /// Network configuration between clients/peers and the brokers.
    pub network: NetworkConfig,
}

impl Default for SharedLogConfig {
    fn default() -> Self {
        SharedLogConfig {
            brokers: 3,
            ingest_bytes_per_us: 60.0,
            append_overhead_us: 120,
            network: NetworkConfig::lan_1gbps(),
        }
    }
}

/// One ordered batch in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Position in the total order.
    pub offset: u64,
    /// Size of the appended batch.
    pub bytes: usize,
    /// When the append was acknowledged to the producer.
    pub appended_at: Timestamp,
}

/// The shared log.
#[derive(Debug)]
pub struct SharedLog {
    config: SharedLogConfig,
    records: Vec<LogRecord>,
    /// The brokers' aggregate ingest pipe, modelled as one FIFO resource.
    ingest: Resource,
}

impl SharedLog {
    /// An empty log.
    pub fn new(config: SharedLogConfig) -> Self {
        SharedLog {
            config,
            records: Vec::new(),
            ingest: Resource::new(),
        }
    }

    /// Append a batch of `bytes` arriving at the brokers at `arrival`.
    /// Returns the record (offset + acknowledgement time).
    ///
    /// The acknowledgement includes one network hop to the brokers, queueing
    /// behind earlier appends, the replication between the brokers (a
    /// Raft-style majority round among `brokers`), and the hop back.
    pub fn append(&mut self, arrival: Timestamp, bytes: usize) -> LogRecord {
        let hop = self.config.network.base_latency_us
            + (bytes as f64 / self.config.network.bandwidth_bytes_per_us) as u64;
        let broker_service = self.config.append_overhead_us
            + (bytes as f64 / self.config.ingest_bytes_per_us) as u64;
        let (_, ingest_done) = self.ingest.schedule(arrival + hop, broker_service);
        // Intra-broker replication: one round trip among the brokers.
        let replication = if self.config.brokers > 1 {
            2 * self.config.network.base_latency_us
        } else {
            0
        };
        let ack_hop = self.config.network.base_latency_us;
        let appended_at = ingest_done + replication + ack_hop;
        let record = LogRecord {
            offset: self.records.len() as u64,
            bytes,
            appended_at,
        };
        self.records.push(record.clone());
        record
    }

    /// Records with offsets in `[from, to)`, as a consumer pull would return.
    pub fn read(&self, from: u64, to: u64) -> &[LogRecord] {
        let from = (from as usize).min(self.records.len());
        let to = (to as usize).min(self.records.len());
        &self.records[from..to]
    }

    /// Next offset to be assigned.
    pub fn end_offset(&self) -> u64 {
        self.records.len() as u64
    }

    /// Aggregate bytes appended.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes as u64).sum()
    }

    /// The broker pipe's busy time, for utilization accounting.
    pub fn broker_busy_us(&self) -> u64 {
        self.ingest.busy_us()
    }

    /// Maximum sustainable append throughput in batches/second for a given
    /// batch size — the quantity that stays constant as consumers are added.
    pub fn max_append_rate_per_s(&self, batch_bytes: usize) -> f64 {
        let per_batch_us = self.config.append_overhead_us as f64
            + batch_bytes as f64 / self.config.ingest_bytes_per_us;
        1e6 / per_batch_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> SharedLog {
        SharedLog::new(SharedLogConfig::default())
    }

    #[test]
    fn offsets_are_dense_and_ordered() {
        let mut l = log();
        for i in 0..10 {
            let r = l.append(i * 10, 1000);
            assert_eq!(r.offset, i);
        }
        assert_eq!(l.end_offset(), 10);
        assert_eq!(l.read(3, 6).len(), 3);
        assert_eq!(l.read(3, 6)[0].offset, 3);
        assert_eq!(l.total_bytes(), 10_000);
    }

    #[test]
    fn ack_times_are_monotone_under_queueing() {
        let mut l = log();
        let mut last = 0;
        // Offered faster than the brokers can ingest: queueing builds up.
        for i in 0..200 {
            let r = l.append(i, 100_000);
            assert!(r.appended_at >= last);
            last = r.appended_at;
        }
        // The last ack is far later than its arrival: the log saturated.
        assert!(last > 200 + 10_000);
    }

    #[test]
    fn unsaturated_append_latency_is_a_few_hops() {
        let mut l = log();
        let r = l.append(0, 1000);
        // to-broker hop + service + broker replication RTT + ack hop.
        assert!(
            r.appended_at > 700 && r.appended_at < 3_000,
            "{}",
            r.appended_at
        );
    }

    #[test]
    fn read_clamps_out_of_range() {
        let mut l = log();
        l.append(0, 10);
        assert!(l.read(5, 10).is_empty());
        assert_eq!(l.read(0, 100).len(), 1);
    }

    #[test]
    fn max_rate_falls_with_batch_size() {
        let l = log();
        assert!(l.max_append_rate_per_s(1_000) > l.max_append_rate_per_s(100_000));
    }

    #[test]
    fn single_broker_skips_replication_round() {
        let mut single = SharedLog::new(SharedLogConfig {
            brokers: 1,
            ..SharedLogConfig::default()
        });
        let mut triple = SharedLog::new(SharedLogConfig::default());
        let a = single.append(0, 1000).appended_at;
        let b = triple.append(0, 1000).appended_at;
        assert!(b > a);
    }
}
