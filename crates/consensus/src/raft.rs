//! Raft (Ongaro & Ousterhout, 2014): leader election and log replication.
//!
//! The implementation is a faithful, single-threaded state machine per node:
//! terms, `RequestVote`/`AppendEntries` RPCs, the log-matching property, and
//! commitment by majority replication in the leader's current term. Nodes are
//! driven by a [`RaftCluster`] harness that exchanges messages through the
//! simulated network and fires election/heartbeat timeouts from the shared
//! [`SimEngine`] (the same discrete-event core the system models and the
//! benchmark driver run on), so leader crashes and partitions (via the fault
//! plan) produce real elections and real commit stalls.

use std::collections::BTreeMap;

use dichotomy_common::rng::{self, Rng};
use dichotomy_common::{NodeId, Timestamp};
use dichotomy_simnet::{FaultPlan, NetworkConfig, NetworkModel, SimEngine};

/// One replicated log entry: an opaque payload (a batch of transactions, a
/// block, a storage operation) plus the term it was appended in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the leader appended this entry.
    pub term: u64,
    /// Opaque payload identifier (the caller keeps the actual bytes).
    pub payload_id: u64,
    /// Payload size in bytes, used for network cost.
    pub payload_bytes: usize,
}

/// Raft RPC messages.
#[derive(Debug, Clone)]
pub enum RaftMessage {
    RequestVote {
        term: u64,
        candidate: NodeId,
        last_log_index: u64,
        last_log_term: u64,
    },
    RequestVoteReply {
        term: u64,
        voter: NodeId,
        granted: bool,
    },
    AppendEntries {
        term: u64,
        leader: NodeId,
        prev_log_index: u64,
        prev_log_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
    },
    AppendEntriesReply {
        term: u64,
        follower: NodeId,
        success: bool,
        match_index: u64,
    },
}

impl RaftMessage {
    /// Approximate wire size for the network model.
    pub fn wire_bytes(&self) -> usize {
        match self {
            RaftMessage::AppendEntries { entries, .. } => {
                64 + entries.iter().map(|e| e.payload_bytes + 16).sum::<usize>()
            }
            _ => 64,
        }
    }
}

/// Node roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Per-node Raft state.
#[derive(Debug)]
pub struct RaftNode {
    pub id: NodeId,
    peers: Vec<NodeId>,
    pub role: Role,
    pub current_term: u64,
    voted_for: Option<NodeId>,
    /// 1-based log (index 0 is a sentinel).
    pub log: Vec<LogEntry>,
    pub commit_index: u64,
    // Leader state.
    next_index: BTreeMap<NodeId, u64>,
    match_index: BTreeMap<NodeId, u64>,
    votes_received: usize,
    /// When the next election timeout fires (reset on every valid heartbeat).
    pub election_deadline: Timestamp,
}

/// Messages to send as a result of a step: (destination, message).
pub type Outbox = Vec<(NodeId, RaftMessage)>;

impl RaftNode {
    /// A fresh follower.
    pub fn new(id: NodeId, peers: Vec<NodeId>) -> Self {
        RaftNode {
            id,
            peers,
            role: Role::Follower,
            current_term: 0,
            voted_for: None,
            log: vec![LogEntry {
                term: 0,
                payload_id: 0,
                payload_bytes: 0,
            }],
            commit_index: 0,
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            votes_received: 0,
            election_deadline: 0,
        }
    }

    fn last_log_index(&self) -> u64 {
        (self.log.len() - 1) as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(0)
    }

    /// Majority size for the cluster (self + peers).
    fn majority(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    /// Start an election: become candidate, vote for self, ask peers.
    pub fn start_election(&mut self, now: Timestamp, timeout_us: u64) -> Outbox {
        self.role = Role::Candidate;
        self.current_term += 1;
        self.voted_for = Some(self.id);
        self.votes_received = 1;
        self.election_deadline = now + timeout_us;
        self.peers
            .iter()
            .map(|&p| {
                (
                    p,
                    RaftMessage::RequestVote {
                        term: self.current_term,
                        candidate: self.id,
                        last_log_index: self.last_log_index(),
                        last_log_term: self.last_log_term(),
                    },
                )
            })
            .collect()
    }

    /// Become leader: initialize follower indices and send an empty heartbeat.
    fn become_leader(&mut self) -> Outbox {
        self.role = Role::Leader;
        for &p in &self.peers {
            self.next_index.insert(p, self.last_log_index() + 1);
            self.match_index.insert(p, 0);
        }
        self.broadcast_append()
    }

    fn step_down(&mut self, term: u64) {
        self.current_term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.votes_received = 0;
    }

    /// Leader: append a new payload to the local log and replicate it.
    pub fn propose(&mut self, payload_id: u64, payload_bytes: usize) -> Option<Outbox> {
        if self.role != Role::Leader {
            return None;
        }
        self.log.push(LogEntry {
            term: self.current_term,
            payload_id,
            payload_bytes,
        });
        Some(self.broadcast_append())
    }

    /// Leader: build AppendEntries for every follower from its next_index.
    pub fn broadcast_append(&mut self) -> Outbox {
        let mut out = Vec::new();
        for &p in &self.peers {
            let next = *self.next_index.get(&p).unwrap_or(&1);
            let prev_log_index = next - 1;
            let prev_log_term = self
                .log
                .get(prev_log_index as usize)
                .map(|e| e.term)
                .unwrap_or(0);
            let entries: Vec<LogEntry> = self.log.iter().skip(next as usize).cloned().collect();
            out.push((
                p,
                RaftMessage::AppendEntries {
                    term: self.current_term,
                    leader: self.id,
                    prev_log_index,
                    prev_log_term,
                    entries,
                    leader_commit: self.commit_index,
                },
            ));
        }
        out
    }

    /// Handle an incoming message; returns messages to send.
    pub fn handle(&mut self, msg: RaftMessage, now: Timestamp, election_timeout_us: u64) -> Outbox {
        match msg {
            RaftMessage::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                if term > self.current_term {
                    self.step_down(term);
                }
                let log_ok = last_log_term > self.last_log_term()
                    || (last_log_term == self.last_log_term()
                        && last_log_index >= self.last_log_index());
                let granted = term == self.current_term
                    && log_ok
                    && (self.voted_for.is_none() || self.voted_for == Some(candidate));
                if granted {
                    self.voted_for = Some(candidate);
                    self.election_deadline = now + election_timeout_us;
                }
                vec![(
                    candidate,
                    RaftMessage::RequestVoteReply {
                        term: self.current_term,
                        voter: self.id,
                        granted,
                    },
                )]
            }
            RaftMessage::RequestVoteReply { term, granted, .. } => {
                if term > self.current_term {
                    self.step_down(term);
                    return Vec::new();
                }
                if self.role == Role::Candidate && term == self.current_term && granted {
                    self.votes_received += 1;
                    if self.votes_received >= self.majority() {
                        return self.become_leader();
                    }
                }
                Vec::new()
            }
            RaftMessage::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => {
                if term > self.current_term
                    || (term == self.current_term && self.role == Role::Candidate)
                {
                    self.step_down(term);
                }
                if term < self.current_term {
                    return vec![(
                        leader,
                        RaftMessage::AppendEntriesReply {
                            term: self.current_term,
                            follower: self.id,
                            success: false,
                            match_index: 0,
                        },
                    )];
                }
                self.election_deadline = now + election_timeout_us;
                // Log matching check.
                let prev_ok = self
                    .log
                    .get(prev_log_index as usize)
                    .map(|e| e.term == prev_log_term)
                    .unwrap_or(false);
                if !prev_ok {
                    return vec![(
                        leader,
                        RaftMessage::AppendEntriesReply {
                            term: self.current_term,
                            follower: self.id,
                            success: false,
                            match_index: 0,
                        },
                    )];
                }
                // Append/overwrite entries after prev_log_index.
                for (idx, entry) in (prev_log_index as usize + 1..).zip(entries) {
                    if self.log.len() > idx {
                        if self.log[idx].term != entry.term {
                            self.log.truncate(idx);
                            self.log.push(entry);
                        }
                    } else {
                        self.log.push(entry);
                    }
                }
                let match_index = self.last_log_index();
                if leader_commit > self.commit_index {
                    self.commit_index = leader_commit.min(match_index);
                }
                vec![(
                    leader,
                    RaftMessage::AppendEntriesReply {
                        term: self.current_term,
                        follower: self.id,
                        success: true,
                        match_index,
                    },
                )]
            }
            RaftMessage::AppendEntriesReply {
                term,
                follower,
                success,
                match_index,
            } => {
                if term > self.current_term {
                    self.step_down(term);
                    return Vec::new();
                }
                if self.role != Role::Leader || term != self.current_term {
                    return Vec::new();
                }
                if success {
                    self.match_index.insert(follower, match_index);
                    self.next_index.insert(follower, match_index + 1);
                    self.advance_commit_index();
                    Vec::new()
                } else {
                    // Back off and retry.
                    let next = self.next_index.entry(follower).or_insert(1);
                    *next = next.saturating_sub(1).max(1);
                    let prev_log_index = *next - 1;
                    let prev_log_term = self
                        .log
                        .get(prev_log_index as usize)
                        .map(|e| e.term)
                        .unwrap_or(0);
                    let entries: Vec<LogEntry> =
                        self.log.iter().skip(*next as usize).cloned().collect();
                    vec![(
                        follower,
                        RaftMessage::AppendEntries {
                            term: self.current_term,
                            leader: self.id,
                            prev_log_index,
                            prev_log_term,
                            entries,
                            leader_commit: self.commit_index,
                        },
                    )]
                }
            }
        }
    }

    /// Leader: advance the commit index to the highest index replicated on a
    /// majority *in the current term* (Raft's commitment rule).
    fn advance_commit_index(&mut self) {
        for n in (self.commit_index + 1..=self.last_log_index()).rev() {
            if self.log[n as usize].term != self.current_term {
                continue;
            }
            let replicated = 1 + self
                .peers
                .iter()
                .filter(|p| self.match_index.get(p).copied().unwrap_or(0) >= n)
                .count();
            if replicated >= self.majority() {
                self.commit_index = n;
                break;
            }
        }
    }

    /// Committed payload ids in log order.
    pub fn committed_payloads(&self) -> Vec<u64> {
        self.log[1..=self.commit_index as usize]
            .iter()
            .map(|e| e.payload_id)
            .collect()
    }
}

/// Events driving the cluster harness.
#[derive(Debug, Clone)]
enum ClusterEvent {
    Deliver(NodeId, RaftMessage),
    ElectionTick(NodeId),
    HeartbeatTick(NodeId),
}

/// Configuration of the cluster harness.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// Base election timeout in µs (each node randomizes ±50 %).
    pub election_timeout_us: u64,
    /// Leader heartbeat interval in µs.
    pub heartbeat_interval_us: u64,
    /// Network configuration.
    pub network: NetworkConfig,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout_us: 150_000,
            heartbeat_interval_us: 30_000,
            network: NetworkConfig::lan_1gbps(),
        }
    }
}

/// A simulated Raft cluster.
pub struct RaftCluster {
    pub nodes: BTreeMap<NodeId, RaftNode>,
    engine: SimEngine<ClusterEvent>,
    network: NetworkModel,
    config: RaftConfig,
    rng: rng::StdRng,
    next_payload: u64,
    /// payload_id -> commit time observed at the leader.
    commit_times: BTreeMap<u64, Timestamp>,
    /// Terms for which a node's heartbeat loop has been started, so a leader
    /// heartbeats exactly once per term it wins.
    heartbeat_started: BTreeMap<NodeId, u64>,
}

impl RaftCluster {
    /// Build a cluster of `n` nodes and schedule initial election timeouts.
    pub fn new(n: usize, config: RaftConfig, seed: u64) -> Self {
        let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let mut nodes = BTreeMap::new();
        for &id in &ids {
            let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
            nodes.insert(id, RaftNode::new(id, peers));
        }
        let mut cluster = RaftCluster {
            nodes,
            engine: SimEngine::new(),
            network: NetworkModel::new(config.network.clone(), seed),
            config,
            rng: rng::seeded(rng::derive_seed(seed, "raft-cluster")),
            next_payload: 1,
            commit_times: BTreeMap::new(),
            heartbeat_started: BTreeMap::new(),
        };
        for &id in &ids {
            cluster.schedule_election_tick(id, 0);
        }
        cluster
    }

    /// Install a fault plan on the underlying network.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        *self.network.faults_mut() = faults;
    }

    fn schedule_election_tick(&mut self, node: NodeId, now: Timestamp) {
        let timeout = self.config.election_timeout_us;
        let jittered = timeout + self.rng.gen_range(0..timeout / 2 + 1);
        let deadline = now + jittered;
        if let Some(n) = self.nodes.get_mut(&node) {
            n.election_deadline = deadline;
        }
        self.engine
            .schedule_at(deadline, ClusterEvent::ElectionTick(node));
    }

    fn send_all(&mut self, from: NodeId, outbox: Outbox) {
        let now = self.engine.now();
        for (to, msg) in outbox {
            let bytes = msg.wire_bytes();
            if let Some(delay) = self.network.delay(from, to, bytes, now) {
                self.engine
                    .schedule_in(delay, ClusterEvent::Deliver(to, msg));
            }
        }
    }

    /// The current leader with the highest term, if any live node considers
    /// itself leader (a crashed ex-leader's stale state does not count).
    pub fn leader(&self) -> Option<NodeId> {
        let now = self.engine.now();
        self.nodes
            .values()
            .filter(|n| n.role == Role::Leader)
            .filter(|n| !self.network.faults().is_crashed(n.id, now))
            .max_by_key(|n| n.current_term)
            .map(|n| n.id)
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.engine.now()
    }

    /// Propose a payload of the given size at the current leader; returns the
    /// payload id, or `None` if there is no leader yet.
    pub fn propose(&mut self, payload_bytes: usize) -> Option<u64> {
        let leader = self.leader()?;
        let id = self.next_payload;
        self.next_payload += 1;
        let outbox = self.nodes.get_mut(&leader)?.propose(id, payload_bytes)?;
        self.send_all(leader, outbox);
        Some(id)
    }

    /// Run the simulation until `deadline` (µs) or until the event queue
    /// drains.
    pub fn run_until(&mut self, deadline: Timestamp) {
        while let Some(t) = self.engine.peek_time() {
            if t > deadline {
                break;
            }
            let (now, event) = self.engine.pop().expect("peeked");
            match event {
                ClusterEvent::Deliver(to, msg) => {
                    // A crashed node neither processes nor answers.
                    if !self.network.faults_mut().can_deliver(to, to, now) {
                        continue;
                    }
                    let outbox = {
                        let node = self.nodes.get_mut(&to).expect("node exists");
                        node.handle(msg, now, self.config.election_timeout_us)
                    };
                    // Track commits at the leader.
                    self.record_commits(to, now);
                    self.send_all(to, outbox);
                }
                ClusterEvent::ElectionTick(id) => {
                    let crashed = !self.network.faults_mut().can_deliver(id, id, now);
                    let node = self.nodes.get_mut(&id).expect("node exists");
                    if !crashed && node.role != Role::Leader && now >= node.election_deadline {
                        let outbox = node.start_election(now, self.config.election_timeout_us);
                        self.send_all(id, outbox);
                    }
                    self.schedule_election_tick(id, now);
                }
                ClusterEvent::HeartbeatTick(id) => {
                    let crashed = !self.network.faults_mut().can_deliver(id, id, now);
                    let is_leader = self
                        .nodes
                        .get(&id)
                        .map(|n| n.role == Role::Leader)
                        .unwrap_or(false);
                    if !crashed && is_leader {
                        let outbox = self
                            .nodes
                            .get_mut(&id)
                            .expect("node exists")
                            .broadcast_append();
                        self.send_all(id, outbox);
                        self.engine.schedule_in(
                            self.config.heartbeat_interval_us,
                            ClusterEvent::HeartbeatTick(id),
                        );
                    } else {
                        // Stop the loop; it restarts if this node wins again.
                        self.heartbeat_started.remove(&id);
                    }
                }
            }
            // Newly elected leaders start their heartbeat loop (once per term
            // won, so losing and regaining leadership restarts it).
            let new_leaders: Vec<(NodeId, u64)> = self
                .nodes
                .values()
                .filter(|n| n.role == Role::Leader)
                .map(|n| (n.id, n.current_term))
                .filter(|(id, term)| self.heartbeat_started.get(id) != Some(term))
                .collect();
            for (id, term) in new_leaders {
                self.heartbeat_started.insert(id, term);
                self.engine.schedule_in(
                    self.config.heartbeat_interval_us,
                    ClusterEvent::HeartbeatTick(id),
                );
            }
        }
        self.engine.advance_to(deadline);
    }

    fn record_commits(&mut self, node: NodeId, now: Timestamp) {
        let n = &self.nodes[&node];
        if n.role != Role::Leader {
            return;
        }
        for payload in n.committed_payloads() {
            self.commit_times.entry(payload).or_insert(now);
        }
    }

    /// Run until a leader is elected (or the deadline passes); returns it.
    pub fn run_until_leader(&mut self, deadline: Timestamp) -> Option<NodeId> {
        let mut step_deadline = self.engine.now();
        while step_deadline < deadline {
            step_deadline += 50_000;
            self.run_until(step_deadline.min(deadline));
            if let Some(l) = self.leader() {
                return Some(l);
            }
        }
        self.leader()
    }

    /// Commit time of a payload, if it committed.
    pub fn commit_time(&self, payload: u64) -> Option<Timestamp> {
        self.commit_times.get(&payload).copied()
    }

    /// Safety check: every pair of nodes agrees on the committed prefix.
    pub fn committed_prefixes_consistent(&self) -> bool {
        let logs: Vec<Vec<u64>> = self
            .nodes
            .values()
            .map(|n| n.committed_payloads())
            .collect();
        for a in &logs {
            for b in &logs {
                let common = a.len().min(b.len());
                if a[..common] != b[..common] {
                    return false;
                }
            }
        }
        true
    }

    /// Total messages the protocol has put on the network.
    pub fn messages_sent(&self) -> u64 {
        self.network.messages_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_simnet::fault::NodeFault;

    fn cluster(n: usize, seed: u64) -> RaftCluster {
        RaftCluster::new(n, RaftConfig::default(), seed)
    }

    #[test]
    fn elects_a_single_leader() {
        let mut c = cluster(5, 1);
        let leader = c.run_until_leader(2_000_000).expect("leader elected");
        // Exactly one node believes it is leader in the highest term.
        let leaders: Vec<_> = c
            .nodes
            .values()
            .filter(|n| n.role == Role::Leader)
            .collect();
        assert!(!leaders.is_empty());
        assert!(leaders.iter().any(|n| n.id == leader));
    }

    #[test]
    fn replicates_and_commits_proposals() {
        let mut c = cluster(5, 2);
        c.run_until_leader(2_000_000).expect("leader");
        let mut ids = Vec::new();
        for _ in 0..10 {
            ids.push(c.propose(512).expect("leader accepts proposal"));
            c.run_until(c.now() + 20_000);
        }
        c.run_until(c.now() + 500_000);
        for id in ids {
            assert!(c.commit_time(id).is_some(), "payload {id} must commit");
        }
        assert!(c.committed_prefixes_consistent());
        // Followers converge on the same committed prefix as the leader.
        let leader = c.leader().unwrap();
        let leader_commit = c.nodes[&leader].commit_index;
        assert!(leader_commit >= 10);
    }

    #[test]
    fn leader_crash_triggers_reelection_and_progress_resumes() {
        let mut c = cluster(5, 3);
        let first = c.run_until_leader(2_000_000).expect("leader");
        c.propose(128);
        c.run_until(c.now() + 300_000);
        // Crash the leader.
        let crash_at = c.now();
        let mut faults = FaultPlan::none();
        faults.add(NodeFault::crash(first, crash_at));
        c.set_faults(faults);
        // A new leader must emerge.
        let second = c.run_until_leader(c.now() + 5_000_000).expect("new leader");
        assert_ne!(first, second);
        // And new proposals still commit.
        let id = c.propose(128).expect("new leader accepts");
        c.run_until(c.now() + 1_000_000);
        assert!(c.commit_time(id).is_some());
        assert!(c.committed_prefixes_consistent());
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut c = cluster(5, 4);
        let leader = c.run_until_leader(2_000_000).expect("leader");
        // Partition the leader together with one follower away from the rest.
        let follower = c
            .nodes
            .keys()
            .copied()
            .find(|&n| n != leader)
            .expect("another node");
        let t = c.now();
        let mut faults = FaultPlan::none();
        faults.add_partition([leader, follower], t, None);
        c.set_faults(faults);
        // Proposals at the minority leader must not commit.
        if let Some(id) = c.propose(64) {
            c.run_until(c.now() + 1_500_000);
            assert!(c.commit_time(id).is_none(), "minority must not commit");
        }
        assert!(c.committed_prefixes_consistent());
    }

    #[test]
    fn commit_latency_is_about_one_round_trip_on_a_lan() {
        let mut c = cluster(3, 5);
        c.run_until_leader(2_000_000).expect("leader");
        let start = c.now();
        let id = c.propose(1024).unwrap();
        c.run_until(start + 200_000);
        let committed = c.commit_time(id).expect("committed");
        let latency = committed - start;
        // One AppendEntries + one reply over a ~250 µs LAN plus jitter.
        assert!(latency > 400 && latency < 10_000, "latency {latency}");
    }

    #[test]
    fn five_node_log_safety_under_repeated_leader_failures() {
        let mut c = cluster(5, 6);
        c.run_until_leader(2_000_000).unwrap();
        let mut crashed: Vec<NodeId> = Vec::new();
        for round in 0..2 {
            for _ in 0..5 {
                c.propose(256);
                c.run_until(c.now() + 50_000);
            }
            let leader = match c.leader() {
                Some(l) => l,
                None => break,
            };
            crashed.push(leader);
            let t = c.now();
            let mut plan = FaultPlan::none();
            for (i, &n) in crashed.iter().enumerate() {
                // Earlier crashed leaders heal to keep a majority alive.
                if i + 1 < crashed.len() {
                    plan.add(NodeFault::crash_until(n, 0, t));
                } else {
                    plan.add(NodeFault::crash(n, t));
                }
            }
            c.set_faults(plan);
            c.run_until_leader(c.now() + 5_000_000);
            assert!(c.committed_prefixes_consistent(), "round {round}");
        }
    }
}
