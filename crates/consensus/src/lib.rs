//! Consensus and ordering substrates (the replication dimension, Section 3.1).
//!
//! Implemented from scratch and driven over the `dichotomy-simnet` network
//! model:
//!
//! * [`raft`] — the CFT protocol used by Quorum (default), TiKV, etcd and
//!   Fabric's ordering service: leader election, log replication, commit.
//! * [`pbft`] — the three-phase BFT family (PBFT and its blockchain-tuned
//!   IBFT variant used by Quorum): O(N²) message complexity, 2f+1 quorums out
//!   of 3f+1 replicas, view change.
//! * [`pow`] — simulated proof-of-work mining with longest-chain fork choice
//!   (the permissionless baseline and the BlockchainDB substrate).
//! * [`sharedlog`] — a Kafka-like shared-log ordering service (Fabric's
//!   external orderer, Veritas, ChainifyDB, BRD).
//! * [`profile`] — runs message-level rounds of each protocol over the
//!   network model and distills a [`profile::ReplicationProfile`] (commit
//!   latency, leader occupancy, message/byte counts) that the system models
//!   in `dichotomy-systems` plug into their transaction pipelines.
//!
//! The protocol implementations are deterministic state machines; all
//! nondeterminism (timeouts, network jitter) comes from the seeded simulator.

pub mod pbft;
pub mod pow;
pub mod profile;
pub mod raft;
pub mod sharedlog;

pub use profile::{FailureModel, ProtocolKind, ReplicationProfile};
