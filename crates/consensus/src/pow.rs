//! Simulated proof-of-work mining with longest-chain fork choice.
//!
//! The paper excludes permissionless blockchains from its quantitative study
//! but needs PoW twice: as the consensus of the BlockchainDB hybrid
//! (Table 2 / Figure 15) and as a shard-formation primitive (Elastico,
//! Section 3.4.1). What matters is the *behavioural envelope*: block
//! intervals are exponentially distributed around a target, a miner's win
//! probability is proportional to its hash power, throughput is capped by
//! `block_size / interval`, and simultaneous blocks fork and get resolved by
//! the longest chain. Actual hash grinding is pointless to reproduce, so
//! mining times are sampled rather than computed.

use dichotomy_common::rng::{self, StdRng};
use dichotomy_common::{NodeId, Timestamp};

/// Configuration of the mining network.
#[derive(Debug, Clone)]
pub struct PowConfig {
    /// Target mean block interval in µs (Bitcoin: 600 s; the paper's
    /// BlockchainDB setting uses Ethereum-like ~15 s).
    pub target_interval_us: u64,
    /// Block propagation delay across the network in µs.
    pub propagation_delay_us: u64,
    /// Relative hash power per miner (need not sum to 1).
    pub hash_power: Vec<f64>,
}

impl Default for PowConfig {
    fn default() -> Self {
        PowConfig {
            target_interval_us: 15_000_000,
            propagation_delay_us: 200_000,
            hash_power: vec![1.0; 4],
        }
    }
}

/// One mined block in the simulation's history.
#[derive(Debug, Clone)]
pub struct MinedBlock {
    /// Height in the winning chain (forked-off blocks keep their height).
    pub height: u64,
    /// Which miner found it.
    pub miner: NodeId,
    /// When it was found.
    pub found_at: Timestamp,
    /// Whether it ended up in the canonical chain.
    pub canonical: bool,
}

/// Result of a mining simulation.
#[derive(Debug, Clone)]
pub struct PowRun {
    /// All blocks found, canonical and orphaned.
    pub blocks: Vec<MinedBlock>,
    /// Length of the canonical chain.
    pub canonical_height: u64,
    /// Number of orphaned (forked-off) blocks.
    pub orphans: u64,
    /// Total simulated time.
    pub duration_us: Timestamp,
}

impl PowRun {
    /// Observed mean interval between canonical blocks.
    pub fn mean_interval_us(&self) -> f64 {
        if self.canonical_height == 0 {
            return 0.0;
        }
        self.duration_us as f64 / self.canonical_height as f64
    }

    /// Fraction of mined blocks that were orphaned.
    pub fn orphan_rate(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.orphans as f64 / self.blocks.len() as f64
        }
    }

    /// Blocks won by each miner, for fairness checks.
    pub fn wins_by_miner(&self, miners: usize) -> Vec<u64> {
        let mut wins = vec![0u64; miners];
        for b in self.blocks.iter().filter(|b| b.canonical) {
            wins[b.miner.0 as usize] += 1;
        }
        wins
    }
}

/// The PoW simulator.
pub struct PowSimulator {
    config: PowConfig,
    rng: StdRng,
}

impl PowSimulator {
    /// Build a simulator with a seed.
    pub fn new(config: PowConfig, seed: u64) -> Self {
        PowSimulator {
            config,
            rng: rng::seeded(rng::derive_seed(seed, "pow")),
        }
    }

    /// Simulate mining for `duration_us` of simulated time.
    ///
    /// Each round, every miner draws an exponential time-to-solution whose
    /// rate is proportional to its hash power; the minimum wins the round. A
    /// competing miner that finds a solution within the propagation delay of
    /// the winner creates a fork, which the longest-chain rule resolves by
    /// discarding the slower block (ties broken by arrival).
    pub fn run(&mut self, duration_us: Timestamp) -> PowRun {
        let total_power: f64 = self.config.hash_power.iter().sum();
        let mut now: Timestamp = 0;
        let mut height: u64 = 0;
        let mut blocks = Vec::new();
        let mut orphans = 0u64;
        while now < duration_us {
            // Time-to-solution per miner.
            let mut solutions: Vec<(Timestamp, NodeId)> = self
                .config
                .hash_power
                .iter()
                .enumerate()
                .map(|(i, &power)| {
                    let mean =
                        self.config.target_interval_us as f64 * total_power / power.max(1e-9);
                    let t = rng::exp_delay_us(&mut self.rng, mean);
                    (now + t, NodeId(i as u64))
                })
                .collect();
            solutions.sort();
            let (win_time, winner) = solutions[0];
            height += 1;
            blocks.push(MinedBlock {
                height,
                miner: winner,
                found_at: win_time,
                canonical: true,
            });
            // Any other solution inside the propagation window is an orphan.
            for &(t, miner) in &solutions[1..] {
                if t <= win_time + self.config.propagation_delay_us {
                    orphans += 1;
                    blocks.push(MinedBlock {
                        height,
                        miner,
                        found_at: t,
                        canonical: false,
                    });
                }
            }
            now = win_time + self.config.propagation_delay_us;
        }
        PowRun {
            blocks,
            canonical_height: height,
            orphans,
            duration_us: now,
        }
    }

    /// Expected transaction throughput given a block capacity, in
    /// transactions per second — the quantity Figure 15 places at the bottom
    /// of its throughput scale.
    pub fn expected_throughput_tps(&self, txns_per_block: usize) -> f64 {
        txns_per_block as f64 / (self.config.target_interval_us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_interval_approximates_target() {
        let mut sim = PowSimulator::new(
            PowConfig {
                target_interval_us: 1_000_000,
                propagation_delay_us: 10_000,
                hash_power: vec![1.0; 4],
            },
            1,
        );
        let run = sim.run(2_000_000_000);
        let mean = run.mean_interval_us();
        assert!(
            (mean - 1_000_000.0).abs() < 150_000.0,
            "mean interval {mean}"
        );
    }

    #[test]
    fn hash_power_determines_win_share() {
        let mut sim = PowSimulator::new(
            PowConfig {
                target_interval_us: 500_000,
                propagation_delay_us: 1_000,
                hash_power: vec![3.0, 1.0],
            },
            2,
        );
        let run = sim.run(1_000_000_000);
        let wins = run.wins_by_miner(2);
        let share = wins[0] as f64 / (wins[0] + wins[1]) as f64;
        assert!((share - 0.75).abs() < 0.08, "share {share}");
    }

    #[test]
    fn longer_propagation_creates_more_orphans() {
        let runs = |prop: u64| {
            let mut sim = PowSimulator::new(
                PowConfig {
                    target_interval_us: 200_000,
                    propagation_delay_us: prop,
                    hash_power: vec![1.0; 8],
                },
                3,
            );
            sim.run(400_000_000).orphan_rate()
        };
        let fast = runs(100);
        let slow = runs(50_000);
        assert!(slow > fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn throughput_is_block_capacity_over_interval() {
        let sim = PowSimulator::new(
            PowConfig {
                target_interval_us: 15_000_000,
                ..PowConfig::default()
            },
            4,
        );
        // ~150 txns per block every 15 s ≈ 10 tps (the Bitcoin-era figure the
        // paper's introduction quotes).
        let tps = sim.expected_throughput_tps(150);
        assert!((tps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut sim = PowSimulator::new(PowConfig::default(), seed);
            sim.run(500_000_000).canonical_height
        };
        assert_eq!(run(9), run(9));
    }
}
