//! Practical Byzantine Fault Tolerance (Castro & Liskov, 1999) and its
//! blockchain-tuned variant IBFT (Istanbul BFT, used by Quorum).
//!
//! The implementation follows the normal-case three-phase pattern —
//! PRE-PREPARE from the primary, all-to-all PREPARE, all-to-all COMMIT — with
//! `2f + 1` quorums out of `N = 3f + 1` replicas, plus a view-change
//! triggered by request timeouts at the backups. Byzantine replicas are
//! modelled as silent (they neither prepare nor commit); silence is the
//! worst case for liveness and cannot harm safety with honest quorums.
//!
//! The difference between PBFT and IBFT that matters to the paper's
//! experiments (Figure 7) is operational: IBFT embeds consensus metadata in
//! the block (no checkpoint messages) and tolerates dynamic validators, but
//! keeps the same O(N²) message complexity and the same quorum sizes, so the
//! same state machine serves both; the [`PbftVariant`] flag only changes the
//! bookkeeping the profile layer charges.

use std::collections::{BTreeMap, BTreeSet};

use dichotomy_common::{NodeId, Timestamp};
use dichotomy_simnet::{FaultPlan, NetworkConfig, NetworkModel, SimEngine};

/// Which member of the protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbftVariant {
    /// Classic PBFT with checkpointing (Fabric v0.6, AHL shards).
    Pbft,
    /// Istanbul BFT as shipped in Quorum.
    Ibft,
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum PbftMessage {
    PrePrepare {
        view: u64,
        seq: u64,
        payload_id: u64,
        payload_bytes: usize,
    },
    Prepare {
        view: u64,
        seq: u64,
        payload_id: u64,
        from: NodeId,
    },
    Commit {
        view: u64,
        seq: u64,
        payload_id: u64,
        from: NodeId,
    },
    ViewChange {
        new_view: u64,
        from: NodeId,
    },
    NewView {
        view: u64,
    },
}

impl PbftMessage {
    /// Approximate wire size for the network model.
    pub fn wire_bytes(&self) -> usize {
        match self {
            PbftMessage::PrePrepare { payload_bytes, .. } => 96 + payload_bytes,
            _ => 96,
        }
    }
}

/// Per-replica protocol state.
#[derive(Debug)]
pub struct PbftNode {
    pub id: NodeId,
    pub n: usize,
    pub view: u64,
    /// Prepares received per (view, seq): set of senders.
    prepares: BTreeMap<(u64, u64), BTreeSet<NodeId>>,
    /// Commits received per (view, seq).
    commits: BTreeMap<(u64, u64), BTreeSet<NodeId>>,
    /// Pre-prepares accepted: (view, seq) -> payload.
    pre_prepared: BTreeMap<(u64, u64), u64>,
    /// Sequence numbers locally committed: seq -> payload.
    pub committed: BTreeMap<u64, u64>,
    /// View-change votes per proposed new view.
    view_change_votes: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Whether this replica behaves Byzantine (silent).
    pub byzantine: bool,
}

impl PbftNode {
    /// A fresh replica in view 0.
    pub fn new(id: NodeId, n: usize) -> Self {
        PbftNode {
            id,
            n,
            view: 0,
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            pre_prepared: BTreeMap::new(),
            committed: BTreeMap::new(),
            view_change_votes: BTreeMap::new(),
            byzantine: false,
        }
    }

    /// `f`, the number of tolerated Byzantine replicas.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// The primary of a view (round-robin).
    pub fn primary_of(view: u64, n: usize) -> NodeId {
        NodeId(view % n as u64)
    }

    /// Handle a message; returns messages to broadcast (destination `None`
    /// means "to all replicas including self").
    pub fn handle(&mut self, msg: PbftMessage) -> Vec<PbftMessage> {
        if self.byzantine {
            return Vec::new();
        }
        match msg {
            PbftMessage::PrePrepare {
                view,
                seq,
                payload_id,
                ..
            } => {
                if view != self.view {
                    return Vec::new();
                }
                self.pre_prepared.insert((view, seq), payload_id);
                vec![PbftMessage::Prepare {
                    view,
                    seq,
                    payload_id,
                    from: self.id,
                }]
            }
            PbftMessage::Prepare {
                view,
                seq,
                payload_id,
                from,
            } => {
                if view != self.view {
                    return Vec::new();
                }
                let set = self.prepares.entry((view, seq)).or_default();
                set.insert(from);
                // Prepared = pre-prepare + 2f prepares (counting our own).
                if set.len() + 1 >= self.quorum()
                    && self.pre_prepared.contains_key(&(view, seq))
                    && !self
                        .commits
                        .get(&(view, seq))
                        .is_some_and(|c| c.contains(&self.id))
                {
                    self.commits.entry((view, seq)).or_default().insert(self.id);
                    return vec![PbftMessage::Commit {
                        view,
                        seq,
                        payload_id,
                        from: self.id,
                    }];
                }
                Vec::new()
            }
            PbftMessage::Commit {
                view,
                seq,
                payload_id,
                from,
            } => {
                if view != self.view {
                    return Vec::new();
                }
                let set = self.commits.entry((view, seq)).or_default();
                set.insert(from);
                if set.len() >= self.quorum() && self.pre_prepared.contains_key(&(view, seq)) {
                    self.committed.entry(seq).or_insert(payload_id);
                }
                Vec::new()
            }
            PbftMessage::ViewChange { new_view, from } => {
                let votes = self.view_change_votes.entry(new_view).or_default();
                votes.insert(from);
                if votes.len() >= self.quorum()
                    && new_view > self.view
                    && PbftNode::primary_of(new_view, self.n) == self.id
                {
                    self.view = new_view;
                    return vec![PbftMessage::NewView { view: new_view }];
                }
                Vec::new()
            }
            PbftMessage::NewView { view } => {
                if view > self.view {
                    self.view = view;
                }
                Vec::new()
            }
        }
    }

    /// Trigger a view-change vote (called when a request timer expires).
    pub fn suspect_primary(&mut self) -> PbftMessage {
        PbftMessage::ViewChange {
            new_view: self.view + 1,
            from: self.id,
        }
    }
}

/// Events in the cluster harness.
#[derive(Debug, Clone)]
enum PbftEvent {
    Deliver(NodeId, PbftMessage),
    RequestTimeout { seq: u64 },
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// Variant (PBFT vs IBFT) — affects only reporting.
    pub variant: PbftVariant,
    /// Backup request timeout before suspecting the primary (µs).
    pub request_timeout_us: u64,
    /// Network configuration.
    pub network: NetworkConfig,
}

impl Default for PbftConfig {
    fn default() -> Self {
        PbftConfig {
            variant: PbftVariant::Ibft,
            request_timeout_us: 500_000,
            network: NetworkConfig::lan_1gbps(),
        }
    }
}

/// A simulated PBFT/IBFT cluster.
pub struct PbftCluster {
    pub nodes: BTreeMap<NodeId, PbftNode>,
    engine: SimEngine<PbftEvent>,
    network: NetworkModel,
    config: PbftConfig,
    next_seq: u64,
    next_payload: u64,
    commit_times: BTreeMap<u64, Timestamp>,
}

impl PbftCluster {
    /// Build a cluster of `n = 3f + 1` replicas.
    pub fn new(n: usize, config: PbftConfig, seed: u64) -> Self {
        let mut nodes = BTreeMap::new();
        for i in 0..n as u64 {
            nodes.insert(NodeId(i), PbftNode::new(NodeId(i), n));
        }
        PbftCluster {
            nodes,
            engine: SimEngine::new(),
            network: NetworkModel::new(config.network.clone(), seed),
            config,
            next_seq: 0,
            next_payload: 1,
            commit_times: BTreeMap::new(),
        }
    }

    /// Mark `count` replicas (other than the current primary) Byzantine
    /// (silent).
    pub fn make_byzantine(&mut self, count: usize) {
        let primary = self.primary();
        let ids: Vec<NodeId> = self
            .nodes
            .keys()
            .copied()
            .filter(|&n| n != primary)
            .take(count)
            .collect();
        for id in ids {
            self.nodes.get_mut(&id).expect("exists").byzantine = true;
        }
    }

    /// Install a fault plan (crashes) on the network.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        *self.network.faults_mut() = faults;
    }

    /// Current primary (highest view among honest replicas).
    pub fn primary(&self) -> NodeId {
        let view = self.nodes.values().map(|n| n.view).max().unwrap_or(0);
        PbftNode::primary_of(view, self.nodes.len())
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.engine.now()
    }

    fn broadcast_from(&mut self, from: NodeId, msgs: Vec<PbftMessage>) {
        let now = self.engine.now();
        let peers: Vec<NodeId> = self.nodes.keys().copied().collect();
        for msg in msgs {
            for &to in &peers {
                let bytes = msg.wire_bytes();
                let delay = if to == from {
                    Some(self.network.config().loopback_latency_us)
                } else {
                    self.network.delay(from, to, bytes, now)
                };
                if let Some(d) = delay {
                    self.engine
                        .schedule_in(d, PbftEvent::Deliver(to, msg.clone()));
                }
            }
        }
    }

    /// Submit a payload to the primary; returns (seq, payload id).
    pub fn propose(&mut self, payload_bytes: usize) -> (u64, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload_id = self.next_payload;
        self.next_payload += 1;
        let primary = self.primary();
        let view = self.nodes[&primary].view;
        let msg = PbftMessage::PrePrepare {
            view,
            seq,
            payload_id,
            payload_bytes,
        };
        self.broadcast_from(primary, vec![msg]);
        // Arm the backups' request timers.
        self.engine.schedule_in(
            self.config.request_timeout_us,
            PbftEvent::RequestTimeout { seq },
        );
        (seq, payload_id)
    }

    /// Run the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: Timestamp) {
        while let Some(t) = self.engine.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.engine.pop().expect("peeked");
            match ev {
                PbftEvent::Deliver(to, msg) => {
                    if !self.network.faults_mut().can_deliver(to, to, now) {
                        continue;
                    }
                    let out = self.nodes.get_mut(&to).expect("exists").handle(msg);
                    // Record new commits.
                    if self.quorum_committed_count() > 0 {
                        self.record_commits(now);
                    }
                    self.broadcast_from(to, out);
                }
                PbftEvent::RequestTimeout { seq } => {
                    // Backups that have not committed `seq` suspect the primary.
                    let laggards: Vec<NodeId> = self
                        .nodes
                        .values()
                        .filter(|n| !n.byzantine && !n.committed.contains_key(&seq))
                        .map(|n| n.id)
                        .collect();
                    for id in laggards {
                        let msg = {
                            let node = self.nodes.get_mut(&id).expect("exists");
                            node.suspect_primary()
                        };
                        self.broadcast_from(id, vec![msg]);
                    }
                }
            }
        }
        self.engine.advance_to(deadline);
    }

    fn record_commits(&mut self, now: Timestamp) {
        // A payload counts as committed when f+1 honest replicas committed it
        // (at least one honest replica's commit is then durable).
        let f = (self.nodes.len() - 1) / 3;
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for node in self.nodes.values() {
            for payload in node.committed.values() {
                *counts.entry(*payload).or_default() += 1;
            }
        }
        for (payload, count) in counts {
            if count > f {
                self.commit_times.entry(payload).or_insert(now);
            }
        }
    }

    fn quorum_committed_count(&self) -> usize {
        self.nodes
            .values()
            .map(|n| n.committed.len())
            .max()
            .unwrap_or(0)
    }

    /// Commit time of a payload, if it committed cluster-wide.
    pub fn commit_time(&self, payload: u64) -> Option<Timestamp> {
        self.commit_times.get(&payload).copied()
    }

    /// Safety: no two honest replicas commit different payloads at the same
    /// sequence number.
    pub fn agreement_holds(&self) -> bool {
        let mut assignments: BTreeMap<u64, u64> = BTreeMap::new();
        for node in self.nodes.values().filter(|n| !n.byzantine) {
            for (&seq, &payload) in &node.committed {
                match assignments.get(&seq) {
                    Some(&p) if p != payload => return false,
                    _ => {
                        assignments.insert(seq, payload);
                    }
                }
            }
        }
        true
    }

    /// Total protocol messages offered to the network.
    pub fn messages_sent(&self) -> u64 {
        self.network.messages_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_simnet::fault::NodeFault;

    fn cluster(n: usize, seed: u64) -> PbftCluster {
        PbftCluster::new(n, PbftConfig::default(), seed)
    }

    #[test]
    fn commits_with_all_honest_replicas() {
        let mut c = cluster(4, 1);
        let (_, payload) = c.propose(1024);
        c.run_until(100_000);
        assert!(c.commit_time(payload).is_some());
        assert!(c.agreement_holds());
    }

    #[test]
    fn tolerates_f_silent_byzantine_replicas() {
        let mut c = cluster(7, 2); // f = 2
        c.make_byzantine(2);
        let (_, payload) = c.propose(512);
        c.run_until(200_000);
        assert!(c.commit_time(payload).is_some());
        assert!(c.agreement_holds());
    }

    #[test]
    fn stalls_with_more_than_f_failures() {
        let mut c = cluster(4, 3); // f = 1
        c.make_byzantine(2); // beyond the tolerance
        let (_, payload) = c.propose(512);
        c.run_until(2_000_000);
        assert!(c.commit_time(payload).is_none());
        assert!(c.agreement_holds());
    }

    #[test]
    fn commit_latency_is_three_network_hops() {
        let mut c = cluster(4, 4);
        let (_, payload) = c.propose(1024);
        c.run_until(100_000);
        let latency = c.commit_time(payload).expect("committed");
        // Pre-prepare + prepare + commit over a ~250–300 µs LAN; the primary's
        // own prepare overlaps with the pre-prepare, so ≈2–3 hops end to end.
        assert!(latency > 450 && latency < 5_000, "latency {latency}");
    }

    #[test]
    fn message_complexity_is_quadratic() {
        let mut small = cluster(4, 5);
        small.propose(256);
        small.run_until(100_000);
        let small_msgs = small.messages_sent();

        let mut large = cluster(13, 5);
        large.propose(256);
        large.run_until(100_000);
        let large_msgs = large.messages_sent();
        // 13 nodes vs 4 nodes: ~(13/4)² ≈ 10× more messages; allow slack.
        assert!(
            large_msgs > small_msgs * 5,
            "small {small_msgs}, large {large_msgs}"
        );
    }

    #[test]
    fn primary_crash_triggers_view_change() {
        let mut c = cluster(4, 6);
        let primary = c.primary();
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash(primary, 0));
        c.set_faults(plan);
        let (_, payload) = c.propose(256);
        // Run long enough for the request timeout and the view change.
        c.run_until(3_000_000);
        assert!(
            c.commit_time(payload).is_none(),
            "pre-prepare was lost with the primary"
        );
        let new_primary = c.primary();
        assert_ne!(new_primary, primary, "view change must elect a new primary");
        assert!(c.agreement_holds());
    }

    #[test]
    fn many_sequential_proposals_commit_in_order() {
        let mut c = cluster(4, 7);
        let mut payloads = Vec::new();
        for _ in 0..20 {
            let (_, p) = c.propose(200);
            payloads.push(p);
            c.run_until(c.now() + 20_000);
        }
        c.run_until(c.now() + 500_000);
        for p in payloads {
            assert!(c.commit_time(p).is_some(), "payload {p}");
        }
        assert!(c.agreement_holds());
        // Honest replicas agree on the payload at every sequence number.
        let reference: Vec<_> = c.nodes[&NodeId(0)].committed.values().copied().collect();
        assert_eq!(reference.len(), 20);
    }
}
