//! Sharding (the fourth taxonomy dimension, Section 3.4).
//!
//! Two concerns, mirrored in two modules:
//!
//! * [`partition`] — *shard formation*: how data and nodes are assigned to
//!   shards. Databases partition data by hash or range to optimize workload
//!   locality; sharded blockchains must additionally randomize node
//!   assignment so an adversary cannot concentrate its nodes in one shard,
//!   and must periodically re-form shards to resist adaptive corruption
//!   (Elastico's PoW-based assignment, AHL's trusted-hardware randomness).
//! * [`two_pc`] — *cross-shard atomicity*: plain two-phase commit with a
//!   trusted coordinator for databases, versus 2PC driven by a
//!   BFT-replicated coordinator shard for blockchains (AHL), which adds a
//!   consensus round per 2PC phase.

pub mod partition;
pub mod two_pc;

pub use partition::{PartitionScheme, Partitioner, ShardFormation, ShardPlan};
pub use two_pc::{CoordinatorKind, TwoPcOutcome, TwoPhaseCommit};
