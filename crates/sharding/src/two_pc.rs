//! Two-phase commit for cross-shard transactions (Section 3.4.2).
//!
//! The protocol is the textbook one: the coordinator sends PREPARE to every
//! participant shard, collects votes, and sends COMMIT (all yes) or ABORT
//! (any no). The taxonomy's distinction is *who the coordinator is*:
//!
//! * a single trusted node (databases — cheap but a blocking single point of
//!   failure), or
//! * a BFT-replicated state machine running in its own shard (AHL, Eth2's
//!   beacon chain) — every coordinator step is itself a consensus decision,
//!   adding a BFT round per phase but removing the trust assumption.
//!
//! The module computes both the outcome (given participant votes) and the
//! latency/occupancy of the exchange, which the sharded system models in
//! `dichotomy-systems` use for Figure 14 and the operation-count experiment.

use dichotomy_common::{ShardId, Timestamp};
use dichotomy_consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_simnet::{CostModel, NetworkConfig};

/// Who drives the two-phase commit.
#[derive(Debug, Clone)]
pub enum CoordinatorKind {
    /// A single trusted coordinator node (TiDB, Spanner).
    Trusted,
    /// A coordinator implemented as a replicated state machine inside a shard
    /// running the given consensus protocol (AHL: PBFT with `n` replicas).
    Replicated {
        /// Consensus protocol of the coordinator shard.
        protocol: ProtocolKind,
        /// Replicas in the coordinator shard.
        n: usize,
    },
}

/// Result of a 2PC round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPcOutcome {
    /// Whether the transaction committed in every shard.
    pub committed: bool,
    /// When the outcome was known at the coordinator.
    pub decided_at: Timestamp,
    /// Number of protocol messages exchanged.
    pub messages: u64,
}

/// The 2PC latency/outcome model.
#[derive(Debug, Clone)]
pub struct TwoPhaseCommit {
    coordinator: CoordinatorKind,
    network: NetworkConfig,
    costs: CostModel,
}

impl TwoPhaseCommit {
    /// Build a 2PC engine.
    pub fn new(coordinator: CoordinatorKind, network: NetworkConfig, costs: CostModel) -> Self {
        TwoPhaseCommit {
            coordinator,
            network,
            costs,
        }
    }

    fn hop_us(&self, bytes: usize) -> u64 {
        self.network.base_latency_us
            + (bytes as f64 / self.network.bandwidth_bytes_per_us) as u64
            + self.network.jitter_us / 2
    }

    /// Extra latency each coordinator *step* pays when the coordinator is a
    /// replicated state machine: its decision must itself reach consensus.
    fn coordinator_step_overhead_us(&self) -> u64 {
        match &self.coordinator {
            CoordinatorKind::Trusted => 0,
            CoordinatorKind::Replicated { protocol, n } => {
                ReplicationProfile::new(*protocol, *n, self.network.clone(), self.costs.clone())
                    .commit_latency_us(256)
            }
        }
    }

    /// Run a 2PC round started at `start` across `participants` shards, given
    /// each shard's vote (`true` = prepared). Single-shard transactions
    /// short-circuit: no 2PC is needed.
    pub fn run(
        &self,
        start: Timestamp,
        participants: &[(ShardId, bool)],
        payload_bytes: usize,
    ) -> TwoPcOutcome {
        if participants.len() <= 1 {
            return TwoPcOutcome {
                committed: participants.first().map(|(_, v)| *v).unwrap_or(true),
                decided_at: start,
                messages: 0,
            };
        }
        let committed = participants.iter().all(|(_, vote)| *vote);
        let shards = participants.len() as u64;
        // Phase 1: PREPARE out (with the writes) + votes back.
        let phase1 = self.hop_us(payload_bytes) + self.hop_us(64);
        // Phase 2: decision out + acks back.
        let phase2 = self.hop_us(64) + self.hop_us(64);
        // A replicated coordinator reaches consensus once per phase.
        let coordinator_overhead = 2 * self.coordinator_step_overhead_us();
        // Participant-side prepare work (lock/write-intent persistence).
        let participant_work = self.costs.storage_put_us(payload_bytes);
        let decided_at = start + phase1 + phase2 + coordinator_overhead + participant_work;
        let coordinator_msgs = match &self.coordinator {
            CoordinatorKind::Trusted => 0,
            CoordinatorKind::Replicated { protocol, n } => {
                2 * ReplicationProfile::new(*protocol, *n, self.network.clone(), self.costs.clone())
                    .messages_per_commit()
            }
        };
        TwoPcOutcome {
            committed,
            decided_at,
            messages: 4 * shards + coordinator_msgs,
        }
    }

    /// How long the coordinator resource is occupied per cross-shard
    /// transaction (bounds coordinator throughput).
    pub fn coordinator_occupancy_us(&self, participants: usize, payload_bytes: usize) -> u64 {
        if participants <= 1 {
            return 0;
        }
        let per_participant = (payload_bytes as f64 / self.network.bandwidth_bytes_per_us) as u64
            + self.costs.log_append_us(1);
        let base = per_participant * participants as u64;
        match &self.coordinator {
            CoordinatorKind::Trusted => base,
            CoordinatorKind::Replicated { protocol, n } => {
                base + 2 * ReplicationProfile::new(
                    *protocol,
                    *n,
                    self.network.clone(),
                    self.costs.clone(),
                )
                .leader_occupancy_us(256)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trusted() -> TwoPhaseCommit {
        TwoPhaseCommit::new(
            CoordinatorKind::Trusted,
            NetworkConfig::lan_1gbps(),
            CostModel::calibrated(),
        )
    }

    fn bft() -> TwoPhaseCommit {
        TwoPhaseCommit::new(
            CoordinatorKind::Replicated {
                protocol: ProtocolKind::Pbft,
                n: 4,
            },
            NetworkConfig::lan_1gbps(),
            CostModel::calibrated(),
        )
    }

    #[test]
    fn single_shard_transactions_skip_2pc() {
        let out = trusted().run(100, &[(ShardId(0), true)], 1000);
        assert!(out.committed);
        assert_eq!(out.decided_at, 100);
        assert_eq!(out.messages, 0);
        assert_eq!(trusted().coordinator_occupancy_us(1, 1000), 0);
    }

    #[test]
    fn any_no_vote_aborts_everywhere() {
        let votes = [(ShardId(0), true), (ShardId(1), false), (ShardId(2), true)];
        let out = trusted().run(0, &votes, 500);
        assert!(!out.committed);
        // Abort still costs the full two phases.
        assert!(out.decided_at > 1000);
    }

    #[test]
    fn all_yes_commits() {
        let votes = [(ShardId(0), true), (ShardId(1), true)];
        assert!(trusted().run(0, &votes, 500).committed);
    }

    #[test]
    fn bft_coordinator_costs_more_than_a_trusted_one() {
        let votes = [(ShardId(0), true), (ShardId(1), true)];
        let t = trusted().run(0, &votes, 1000);
        let b = bft().run(0, &votes, 1000);
        assert!(
            b.decided_at > t.decided_at + 1000,
            "trusted {} bft {}",
            t.decided_at,
            b.decided_at
        );
        assert!(b.messages > t.messages);
        assert!(
            bft().coordinator_occupancy_us(2, 1000) > trusted().coordinator_occupancy_us(2, 1000)
        );
    }

    #[test]
    fn more_participants_mean_more_messages_and_occupancy() {
        let two: Vec<_> = (0..2).map(|i| (ShardId(i), true)).collect();
        let five: Vec<_> = (0..5).map(|i| (ShardId(i), true)).collect();
        assert!(trusted().run(0, &five, 100).messages > trusted().run(0, &two, 100).messages);
        assert!(
            trusted().coordinator_occupancy_us(5, 100) > trusted().coordinator_occupancy_us(2, 100)
        );
    }
}
