//! Data partitioning and shard (re-)formation.

use dichotomy_common::rng::{self, SliceRandom};
use dichotomy_common::{Hash, Key, NodeId, ShardId};

/// How data is mapped to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Hash of the key modulo the shard count (uniform, locality-blind).
    Hash,
    /// Contiguous key ranges (locality-aware; the scheme TiDB/Spanner use).
    Range,
}

/// The data partitioner.
#[derive(Debug, Clone)]
pub struct Partitioner {
    scheme: PartitionScheme,
    shards: u32,
    /// Range boundaries for range partitioning (sorted upper bounds of the
    /// first `shards - 1` ranges, as key byte prefixes).
    range_splits: Vec<Vec<u8>>,
}

impl Partitioner {
    /// A hash partitioner over `shards` shards.
    pub fn hash(shards: u32) -> Self {
        Partitioner {
            scheme: PartitionScheme::Hash,
            shards: shards.max(1),
            range_splits: Vec::new(),
        }
    }

    /// A range partitioner with explicit split points (`shards = splits + 1`).
    pub fn range(splits: Vec<Vec<u8>>) -> Self {
        let mut range_splits = splits;
        range_splits.sort();
        Partitioner {
            scheme: PartitionScheme::Range,
            shards: range_splits.len() as u32 + 1,
            range_splits,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// The scheme in use.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Which shard owns `key`.
    pub fn shard_of(&self, key: &Key) -> ShardId {
        match self.scheme {
            PartitionScheme::Hash => {
                ShardId((Hash::of(key.as_bytes()).prefix_u64() % self.shards as u64) as u32)
            }
            PartitionScheme::Range => {
                let idx = self
                    .range_splits
                    .partition_point(|split| split.as_slice() <= key.as_bytes());
                ShardId(idx as u32)
            }
        }
    }

    /// Which distinct shards a transaction touching `keys` spans.
    pub fn shards_of(&self, keys: &[&Key]) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> = keys.iter().map(|k| self.shard_of(k)).collect();
        shards.sort();
        shards.dedup();
        shards
    }

    /// Whether a transaction over `keys` is cross-shard.
    pub fn is_cross_shard(&self, keys: &[&Key]) -> bool {
        self.shards_of(keys).len() > 1
    }
}

/// How nodes are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFormation {
    /// Administrator-chosen static placement (databases: no adversary).
    Static,
    /// Unbiased random assignment derived from PoW / trusted randomness
    /// (Elastico, OmniLedger, AHL); re-run at every reconfiguration epoch.
    SecureRandom {
        /// Length of an epoch between reconfigurations, in µs.
        epoch_us: u64,
    },
}

/// A concrete assignment of nodes to shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// `assignment[i]` = the nodes of shard `i`.
    pub assignment: Vec<Vec<NodeId>>,
    /// The formation policy that produced it.
    pub formation: ShardFormation,
    /// Epoch counter (increments at each reconfiguration).
    pub epoch: u64,
}

impl ShardPlan {
    /// Form shards of `shard_size` nodes from `nodes` under the given policy.
    /// Random formation shuffles with a seed derived from the epoch, so every
    /// epoch produces an independent assignment (the defence against adaptive
    /// adversaries discussed in Section 3.4.1).
    pub fn form(
        nodes: &[NodeId],
        shard_size: usize,
        formation: ShardFormation,
        epoch: u64,
        seed: u64,
    ) -> Self {
        let shard_size = shard_size.max(1);
        let mut pool: Vec<NodeId> = nodes.to_vec();
        if let ShardFormation::SecureRandom { .. } = formation {
            let mut rng = rng::seeded(rng::derive_seed(seed, &format!("shard-epoch-{epoch}")));
            pool.shuffle(&mut rng);
        }
        let assignment: Vec<Vec<NodeId>> = pool.chunks(shard_size).map(|c| c.to_vec()).collect();
        ShardPlan {
            assignment,
            formation,
            epoch,
        }
    }

    /// Number of shards formed.
    pub fn shard_count(&self) -> usize {
        self.assignment.len()
    }

    /// Probability that a specific shard of size `m` contains at least
    /// `⌈m/3⌉` adversarial nodes when the adversary controls a fraction `p`
    /// of all nodes and assignment is uniformly random (hypergeometric tail
    /// approximated binomially). This is the quantity a secure shard-size
    /// choice must keep negligible (Section 3.4.1).
    pub fn shard_compromise_probability(shard_size: usize, adversary_fraction: f64) -> f64 {
        let m = shard_size.max(1);
        let threshold = m.div_ceil(3);
        let p = adversary_fraction.clamp(0.0, 1.0);
        // Sum of binomial tail P[X >= threshold], X ~ Bin(m, p).
        let mut tail = 0.0;
        for k in threshold..=m {
            tail += binomial_pmf(m, k, p);
        }
        tail.min(1.0)
    }

    /// The fraction of an epoch lost to reconfiguration downtime when a
    /// reconfiguration takes `reconfig_pause_us` (state migration + identity
    /// re-establishment). AHL's periodic reconfiguration trades exactly this
    /// against security (the paper measures ≈30 % throughput loss).
    pub fn reconfiguration_overhead(epoch_us: u64, reconfig_pause_us: u64) -> f64 {
        if epoch_us == 0 {
            return 1.0;
        }
        (reconfig_pause_us as f64 / epoch_us as f64).min(1.0)
    }
}

fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    // Computed in log space to stay stable for n up to a few hundred.
    let ln_choose = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    (ln_choose + k as f64 * p.max(1e-300).ln() + (n - k) as f64 * (1.0 - p).max(1e-300).ln()).exp()
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioning_is_deterministic_and_balanced() {
        let p = Partitioner::hash(8);
        let mut counts = vec![0u32; 8];
        for i in 0..8000 {
            let key = Key::from_str(&format!("user{i:08}"));
            let s = p.shard_of(&key);
            assert_eq!(s, p.shard_of(&key));
            counts[s.0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
    }

    #[test]
    fn range_partitioning_respects_split_points() {
        let p = Partitioner::range(vec![b"m".to_vec(), b"t".to_vec()]);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.shard_of(&Key::from_str("apple")), ShardId(0));
        assert_eq!(p.shard_of(&Key::from_str("mango")), ShardId(1));
        assert_eq!(p.shard_of(&Key::from_str("zebra")), ShardId(2));
    }

    #[test]
    fn cross_shard_detection() {
        let p = Partitioner::hash(4);
        let (a, b) = (Key::from_str("aaa"), Key::from_str("zzz42"));
        let same = p.shard_of(&a) == p.shard_of(&b);
        assert_eq!(p.is_cross_shard(&[&a, &b]), !same);
        assert!(!p.is_cross_shard(&[&a, &a]));
        assert_eq!(p.shards_of(&[&a, &a]).len(), 1);
    }

    #[test]
    fn secure_formation_reshuffles_every_epoch_static_does_not() {
        let nodes: Vec<NodeId> = (0..24).map(NodeId).collect();
        let secure0 = ShardPlan::form(
            &nodes,
            4,
            ShardFormation::SecureRandom { epoch_us: 1 },
            0,
            7,
        );
        let secure1 = ShardPlan::form(
            &nodes,
            4,
            ShardFormation::SecureRandom { epoch_us: 1 },
            1,
            7,
        );
        assert_eq!(secure0.shard_count(), 6);
        assert_ne!(secure0.assignment, secure1.assignment);
        let static0 = ShardPlan::form(&nodes, 4, ShardFormation::Static, 0, 7);
        let static1 = ShardPlan::form(&nodes, 4, ShardFormation::Static, 1, 7);
        assert_eq!(static0.assignment, static1.assignment);
        // Every node appears exactly once.
        let mut all: Vec<NodeId> = secure0.assignment.concat();
        all.sort();
        assert_eq!(all, nodes);
    }

    #[test]
    fn larger_shards_are_harder_to_compromise() {
        let p_small = ShardPlan::shard_compromise_probability(4, 0.2);
        let p_large = ShardPlan::shard_compromise_probability(40, 0.2);
        assert!(p_small > p_large);
        assert!(p_large < 0.05, "p_large {p_large}");
        // With an adversary above the threshold, even large shards fail.
        assert!(ShardPlan::shard_compromise_probability(40, 0.5) > 0.5);
    }

    #[test]
    fn reconfiguration_overhead_is_a_fraction_of_the_epoch() {
        assert!((ShardPlan::reconfiguration_overhead(10_000_000, 3_000_000) - 0.3).abs() < 1e-9);
        assert_eq!(ShardPlan::reconfiguration_overhead(0, 1), 1.0);
        assert_eq!(ShardPlan::reconfiguration_overhead(100, 1_000), 1.0);
    }
}
