//! Model-level digital signatures.
//!
//! The benchmarked blockchains spend a measurable fraction of their time on
//! signature creation and verification — the paper reports that a saturated
//! Fabric peer spends 42 % of block-validation time verifying transaction
//! signatures, and that client authentication dominates Fabric's read path
//! (Figure 8b). What matters for the reproduction is therefore (i) that
//! signatures are *checked* — a forged or mis-bound signature must be
//! rejected so the protocol logic is honest — and (ii) that each
//! create/verify call carries a realistic CPU cost, which the simulator
//! charges via `dichotomy_simnet::costs`.
//!
//! We implement a deterministic hash-based scheme: a key pair is derived from
//! a seed, the public key is the hash of the secret key, and a signature is
//! `H(secret_key || message)` together with the public key. Verification
//! recomputes the tag from the *claimed* signer's registered secret (looked
//! up through a keyring held by the verifier model). This is obviously not a
//! real public-key scheme, but it preserves the two properties above without
//! pulling in a cryptography dependency, and it is stated as a substitution
//! in DESIGN.md.

use crate::codec::Encode;
use crate::hash::Hash;
use crate::types::NodeId;

/// Public identity of a signer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub Hash);

/// A signature over a message: the authentication tag plus the signer's
/// public key (as carried in real transaction envelopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// `H(secret || message)`.
    pub tag: Hash,
    /// Claimed signer.
    pub signer: PublicKey,
}

impl Encode for PublicKey {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Encode for Signature {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.tag.encode_into(out);
        self.signer.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        64
    }
}

/// A signing key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: Hash,
    public: PublicKey,
}

impl KeyPair {
    /// Derive a key pair deterministically from a byte seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        let secret = Hash::of_parts(&[b"dichotomy-secret-key", seed]);
        let public = PublicKey(Hash::of_parts(&[b"dichotomy-public-key", &secret.0]));
        KeyPair { secret, public }
    }

    /// Key pair for a simulated node, derived from its id. Every replica in a
    /// simulated cluster derives its peers' key pairs the same way, which
    /// stands in for certificate distribution by the membership service.
    pub fn for_node(node: NodeId) -> Self {
        KeyPair::from_seed(&node.0.to_be_bytes())
    }

    /// Key pair for a simulated client.
    pub fn for_client(client_id: u64) -> Self {
        KeyPair::from_seed(&[b"client".as_slice(), &client_id.to_be_bytes()].concat())
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            tag: Hash::of_parts(&[&self.secret.0, message]),
            signer: self.public,
        }
    }
}

impl Signature {
    /// Verify this signature against a message, given the signer's key pair
    /// (the verifier rederives it from the signer's identity, standing in for
    /// a PKI lookup). Returns `true` iff the tag matches and the signature's
    /// claimed public key matches the key pair.
    pub fn verify(&self, message: &[u8], signer: &KeyPair) -> bool {
        if self.signer != signer.public {
            return false;
        }
        self.tag == Hash::of_parts(&[&signer.secret.0, message])
    }
}

/// Verify a signature claimed to come from `node` over `message`.
///
/// Convenience wrapper used by consensus and validation code paths, where the
/// verifier knows the node identity from the message envelope.
pub fn verify_from_node(sig: &Signature, message: &[u8], node: NodeId) -> bool {
    sig.verify(message, &KeyPair::for_node(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = kp.sign(b"transfer 10 coins");
        assert!(sig.verify(b"transfer 10 coins", &kp));
    }

    #[test]
    fn tampered_message_fails() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = kp.sign(b"transfer 10 coins");
        assert!(!sig.verify(b"transfer 99 coins", &kp));
    }

    #[test]
    fn wrong_signer_fails() {
        let alice = KeyPair::from_seed(b"alice");
        let bob = KeyPair::from_seed(b"bob");
        let sig = alice.sign(b"msg");
        assert!(!sig.verify(b"msg", &bob));
    }

    #[test]
    fn forged_signature_with_wrong_secret_fails() {
        let alice = KeyPair::from_seed(b"alice");
        let mallory = KeyPair::from_seed(b"mallory");
        // Mallory claims to be Alice but signs with her own secret.
        let forged = Signature {
            tag: mallory.sign(b"msg").tag,
            signer: alice.public(),
        };
        assert!(!forged.verify(b"msg", &alice));
    }

    #[test]
    fn node_keys_are_deterministic_and_distinct() {
        let a1 = KeyPair::for_node(NodeId(3));
        let a2 = KeyPair::for_node(NodeId(3));
        let b = KeyPair::for_node(NodeId(4));
        assert_eq!(a1.public(), a2.public());
        assert_ne!(a1.public(), b.public());
    }

    #[test]
    fn client_and_node_keyspaces_do_not_collide() {
        assert_ne!(
            KeyPair::for_node(NodeId(1)).public(),
            KeyPair::for_client(1).public()
        );
    }

    #[test]
    fn verify_from_node_helper() {
        let kp = KeyPair::for_node(NodeId(9));
        let sig = kp.sign(b"block proposal");
        assert!(verify_from_node(&sig, b"block proposal", NodeId(9)));
        assert!(!verify_from_node(&sig, b"block proposal", NodeId(8)));
    }
}
