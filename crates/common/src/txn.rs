//! The transactional vocabulary shared by every system model.
//!
//! A [`Transaction`] is a signed set of read/write [`Operation`]s issued by a
//! client. The same structure is used by the blockchains (where it stands for
//! a smart-contract invocation whose read/write set the contract logic
//! produces) and by the databases (where it is the sequence of statements of
//! a stored procedure). The execution *semantics* — serial, optimistic,
//! pessimistic, Percolator-style — live in `dichotomy-txn`; this module only
//! defines the data.

use crate::codec::{Decode, Encode};
use crate::crypto::{KeyPair, Signature};
use crate::hash::{Hash, Hasher};
use crate::types::{ClientId, Key, Timestamp, TxnId, Value, Version};

/// What a single operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationKind {
    /// Read the current value of the key.
    Read,
    /// Overwrite the value of the key.
    Write,
    /// Read the key, then write a new value derived from it
    /// (the "modify" pattern used by the paper's skew experiments,
    /// Section 5.3.1: "first read, then update and write back").
    ReadModifyWrite,
}

/// One key-level operation inside a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation kind.
    pub kind: OperationKind,
    /// Target key.
    pub key: Key,
    /// Payload for writes; `None` for pure reads.
    pub value: Option<Value>,
}

impl Operation {
    /// A read of `key`.
    pub fn read(key: Key) -> Self {
        Operation {
            kind: OperationKind::Read,
            key,
            value: None,
        }
    }

    /// A blind write of `value` to `key`.
    pub fn write(key: Key, value: Value) -> Self {
        Operation {
            kind: OperationKind::Write,
            key,
            value: Some(value),
        }
    }

    /// A read-modify-write of `key`, writing `value` back.
    pub fn read_modify_write(key: Key, value: Value) -> Self {
        Operation {
            kind: OperationKind::ReadModifyWrite,
            key,
            value: Some(value),
        }
    }

    /// Whether the operation reads the key (reads and read-modify-writes).
    pub fn reads(&self) -> bool {
        matches!(
            self.kind,
            OperationKind::Read | OperationKind::ReadModifyWrite
        )
    }

    /// Whether the operation writes the key (writes and read-modify-writes).
    pub fn writes(&self) -> bool {
        matches!(
            self.kind,
            OperationKind::Write | OperationKind::ReadModifyWrite
        )
    }

    /// Size of the operation payload in bytes (key + value), used for
    /// transaction-size accounting and bandwidth modelling.
    pub fn payload_bytes(&self) -> usize {
        self.key.len() + self.value.as_ref().map_or(0, Value::len)
    }
}

/// Isolation level requested by the client; the paper's database experiments
/// run TiDB at snapshot isolation and the blockchains at serializable
/// (ledger-order) isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Reads see a consistent snapshot; write-write conflicts abort.
    Snapshot,
    /// Full serializability.
    Serializable,
}

/// A client-signed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Globally unique id (client, sequence).
    pub id: TxnId,
    /// Operations in program order.
    pub ops: Vec<Operation>,
    /// Isolation level requested.
    pub isolation: IsolationLevel,
    /// Client wall-clock submit time (simulated microseconds); carried in the
    /// envelope the way real systems carry timestamps, and used by the
    /// harness to compute end-to-end latency.
    pub submit_time: Timestamp,
    /// Client signature over the transaction content.
    pub signature: Option<Signature>,
}

impl Transaction {
    /// Build an unsigned transaction.
    pub fn new(id: TxnId, ops: Vec<Operation>) -> Self {
        Transaction {
            id,
            ops,
            isolation: IsolationLevel::Serializable,
            submit_time: 0,
            signature: None,
        }
    }

    /// Build and sign a transaction with the client's key.
    pub fn signed(
        id: TxnId,
        ops: Vec<Operation>,
        submit_time: Timestamp,
        keypair: &KeyPair,
    ) -> Self {
        let mut txn = Transaction {
            id,
            ops,
            isolation: IsolationLevel::Serializable,
            submit_time,
            signature: None,
        };
        let digest = txn.digest();
        txn.signature = Some(keypair.sign(digest.as_bytes()));
        txn
    }

    /// Content digest over id, isolation and operations (excludes the
    /// signature itself).
    pub fn digest(&self) -> Hash {
        let mut h = Hasher::new();
        h.update(&self.id.client.0.to_be_bytes());
        h.update(&self.id.seq.to_be_bytes());
        h.update(&[match self.isolation {
            IsolationLevel::Snapshot => 0u8,
            IsolationLevel::Serializable => 1u8,
        }]);
        for op in &self.ops {
            h.update(&[match op.kind {
                OperationKind::Read => 0u8,
                OperationKind::Write => 1u8,
                OperationKind::ReadModifyWrite => 2u8,
            }]);
            h.update(&(op.key.len() as u64).to_be_bytes());
            h.update(op.key.as_bytes());
            if let Some(v) = &op.value {
                h.update(&(v.len() as u64).to_be_bytes());
                h.update(v.as_bytes());
            } else {
                h.update(&u64::MAX.to_be_bytes());
            }
        }
        h.finalize()
    }

    /// Verify the client signature, rederiving the client's key from the
    /// transaction's client id (stands in for a certificate lookup).
    pub fn verify_signature(&self) -> bool {
        match &self.signature {
            None => false,
            Some(sig) => {
                let kp = KeyPair::for_client(self.id.client.0);
                sig.verify(self.digest().as_bytes(), &kp)
            }
        }
    }

    /// Keys read by this transaction (deduplicated, in first-occurrence order).
    pub fn read_set(&self) -> Vec<&Key> {
        let mut seen = std::collections::BTreeSet::new();
        self.ops
            .iter()
            .filter(|op| op.reads())
            .filter(|op| seen.insert(&op.key))
            .map(|op| &op.key)
            .collect()
    }

    /// Keys written by this transaction (deduplicated, in first-occurrence order).
    pub fn write_set(&self) -> Vec<&Key> {
        let mut seen = std::collections::BTreeSet::new();
        self.ops
            .iter()
            .filter(|op| op.writes())
            .filter(|op| seen.insert(&op.key))
            .map(|op| &op.key)
            .collect()
    }

    /// Whether the transaction performs no writes.
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(|op| !op.writes())
    }

    /// Total payload size (keys + values) in bytes, the quantity the paper
    /// holds at 1000 bytes in the operation-count experiment (Section 5.3.2).
    pub fn payload_bytes(&self) -> usize {
        self.ops.iter().map(Operation::payload_bytes).sum()
    }

    /// Approximate size of the transaction envelope on the wire: payload plus
    /// a fixed header (id, timestamps, isolation) and the signature.
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 48;
        const SIGNATURE: usize = 96;
        HEADER
            + self.payload_bytes()
            + if self.signature.is_some() {
                SIGNATURE
            } else {
                0
            }
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Issuing client.
    pub fn client(&self) -> ClientId {
        self.id.client
    }
}

impl Encode for OperationKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            OperationKind::Read => 0,
            OperationKind::Write => 1,
            OperationKind::ReadModifyWrite => 2,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Encode for Operation {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        self.key.encode_into(out);
        self.value.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.kind.encoded_len() + self.key.encoded_len() + self.value.encoded_len()
    }
}

impl Encode for IsolationLevel {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            IsolationLevel::Snapshot => 0,
            IsolationLevel::Serializable => 1,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Encode for Transaction {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.ops.encode_into(out);
        self.isolation.encode_into(out);
        self.submit_time.encode_into(out);
        self.signature.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.ops.encoded_len()
            + self.isolation.encoded_len()
            + 8
            + self.signature.encoded_len()
    }
}

/// Why a transaction aborted. The categories mirror the paper's abort-rate
/// analysis (Figures 9b and 10b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortReason {
    /// Fabric-style MVCC validation failure: a key read during simulation was
    /// overwritten before commit ("read-write conflict").
    ReadWriteConflict,
    /// Fabric proposal-phase failure: endorsing peers returned different
    /// simulation results ("inconsistent read").
    InconsistentRead,
    /// TiDB/Percolator-style write-write conflict on the primary lock.
    WriteWriteConflict,
    /// Pessimistic locking could not acquire a lock (deadlock avoidance /
    /// wound-wait victim).
    LockConflict,
    /// 2PC coordinator or a participant voted to abort.
    CrossShardAbort,
    /// The request was rejected because the system is overloaded (admission
    /// control / queue overflow).
    Overload,
    /// Smallbank application-level constraint violation (e.g. insufficient
    /// balance); counted separately because it is not a concurrency artifact.
    ApplicationConstraint,
}

/// Final status of a transaction as observed by the issuing client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Committed and durable.
    Committed,
    /// Aborted for the given reason.
    Aborted(AbortReason),
}

impl TxnStatus {
    /// Whether this status is `Committed`.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnStatus::Committed)
    }
}

/// The receipt returned to the client when a transaction finishes, carrying
/// everything the benchmark harness needs to compute throughput, latency and
/// abort-rate breakdowns, plus the per-phase latency decomposition used by
/// Figures 8 and 11.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnReceipt {
    /// The transaction this receipt is for.
    pub txn_id: TxnId,
    /// Commit or abort outcome.
    pub status: TxnStatus,
    /// When the client submitted the transaction (simulated µs).
    pub submit_time: Timestamp,
    /// When the outcome became visible to the client (simulated µs).
    pub finish_time: Timestamp,
    /// Values read, for read(-modify-write) operations, in operation order.
    pub reads: Vec<(Key, Option<Value>)>,
    /// Version assigned to the writes, when committed.
    pub commit_version: Option<Version>,
    /// Named per-phase latencies, e.g. ("execute", 480_000), ("order", ...),
    /// ("validate", ...) for Fabric or ("proposal"/"consensus"/"commit") for
    /// Quorum. Phases are system-specific; the harness aggregates them by name.
    pub phase_latencies: Vec<(&'static str, u64)>,
}

impl TxnReceipt {
    /// End-to-end latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.finish_time.saturating_sub(self.submit_time)
    }

    /// Convenience constructor for a committed receipt.
    pub fn committed(txn_id: TxnId, submit_time: Timestamp, finish_time: Timestamp) -> Self {
        TxnReceipt {
            txn_id,
            status: TxnStatus::Committed,
            submit_time,
            finish_time,
            reads: Vec::new(),
            commit_version: None,
            phase_latencies: Vec::new(),
        }
    }

    /// Convenience constructor for an aborted receipt.
    pub fn aborted(
        txn_id: TxnId,
        reason: AbortReason,
        submit_time: Timestamp,
        finish_time: Timestamp,
    ) -> Self {
        TxnReceipt {
            txn_id,
            status: TxnStatus::Aborted(reason),
            submit_time,
            finish_time,
            reads: Vec::new(),
            commit_version: None,
            phase_latencies: Vec::new(),
        }
    }
}

impl Encode for AbortReason {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AbortReason::ReadWriteConflict => 0,
            AbortReason::InconsistentRead => 1,
            AbortReason::WriteWriteConflict => 2,
            AbortReason::LockConflict => 3,
            AbortReason::CrossShardAbort => 4,
            AbortReason::Overload => 5,
            AbortReason::ApplicationConstraint => 6,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for AbortReason {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode_from(input)? {
            0 => AbortReason::ReadWriteConflict,
            1 => AbortReason::InconsistentRead,
            2 => AbortReason::WriteWriteConflict,
            3 => AbortReason::LockConflict,
            4 => AbortReason::CrossShardAbort,
            5 => AbortReason::Overload,
            6 => AbortReason::ApplicationConstraint,
            _ => return None,
        })
    }
}

impl Encode for TxnStatus {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            TxnStatus::Committed => out.push(0),
            TxnStatus::Aborted(reason) => {
                out.push(1);
                reason.encode_into(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            TxnStatus::Committed => 1,
            TxnStatus::Aborted(_) => 2,
        }
    }
}

impl Encode for TxnReceipt {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.txn_id.encode_into(out);
        self.status.encode_into(out);
        self.submit_time.encode_into(out);
        self.finish_time.encode_into(out);
        self.reads.encode_into(out);
        self.commit_version.encode_into(out);
        self.phase_latencies.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClientId;

    fn txn_id() -> TxnId {
        TxnId::new(ClientId(1), 1)
    }

    #[test]
    fn read_and_write_sets_deduplicate() {
        let k1 = Key::from_str("a");
        let k2 = Key::from_str("b");
        let t = Transaction::new(
            txn_id(),
            vec![
                Operation::read(k1.clone()),
                Operation::read_modify_write(k1.clone(), Value::filler(4)),
                Operation::write(k2.clone(), Value::filler(4)),
            ],
        );
        assert_eq!(t.read_set(), vec![&k1]);
        assert_eq!(t.write_set(), vec![&k1, &k2]);
        assert!(!t.is_read_only());
    }

    #[test]
    fn read_only_detection() {
        let t = Transaction::new(txn_id(), vec![Operation::read(Key::from_str("a"))]);
        assert!(t.is_read_only());
    }

    #[test]
    fn payload_bytes_sums_keys_and_values() {
        let t = Transaction::new(
            txn_id(),
            vec![
                Operation::write(Key::from_str("ab"), Value::filler(10)),
                Operation::read(Key::from_str("cde")),
            ],
        );
        assert_eq!(t.payload_bytes(), 2 + 10 + 3);
        assert!(t.wire_bytes() > t.payload_bytes());
    }

    #[test]
    fn signature_roundtrip_and_tamper_detection() {
        let kp = KeyPair::for_client(1);
        let mut t = Transaction::signed(
            txn_id(),
            vec![Operation::write(Key::from_str("k"), Value::filler(8))],
            123,
            &kp,
        );
        assert!(t.verify_signature());
        // Tamper with the payload: verification must fail.
        t.ops[0].value = Some(Value::filler(9));
        assert!(!t.verify_signature());
    }

    #[test]
    fn unsigned_transaction_does_not_verify() {
        let t = Transaction::new(txn_id(), vec![]);
        assert!(!t.verify_signature());
    }

    #[test]
    fn signature_bound_to_client_identity() {
        // Signed with the wrong client's key: digest check fails.
        let other = KeyPair::for_client(999);
        let t = Transaction::signed(txn_id(), vec![], 0, &other);
        assert!(!t.verify_signature());
    }

    #[test]
    fn digest_changes_with_ops() {
        let t1 = Transaction::new(txn_id(), vec![Operation::read(Key::from_str("a"))]);
        let t2 = Transaction::new(txn_id(), vec![Operation::read(Key::from_str("b"))]);
        assert_ne!(t1.digest(), t2.digest());
    }

    #[test]
    fn digest_distinguishes_read_from_empty_value_write() {
        let t1 = Transaction::new(txn_id(), vec![Operation::read(Key::from_str("a"))]);
        let t2 = Transaction::new(
            txn_id(),
            vec![Operation::write(Key::from_str("a"), Value::new(Vec::new()))],
        );
        assert_ne!(t1.digest(), t2.digest());
    }

    #[test]
    fn receipt_latency_and_status() {
        let r = TxnReceipt::committed(txn_id(), 100, 350);
        assert_eq!(r.latency_us(), 250);
        assert!(r.status.is_committed());
        let a = TxnReceipt::aborted(txn_id(), AbortReason::ReadWriteConflict, 100, 200);
        assert!(!a.status.is_committed());
        assert_eq!(a.latency_us(), 100);
    }
}
