//! Shared diagnostic model for the two static-analysis layers.
//!
//! Both the source auditor (`dichotomy-lint`, codes `D0xx`) and the semantic
//! plan linter (`repro lint`, codes `S0xx`) emit the same [`Diagnostic`]
//! shape so one renderer serves the human report, the `--json` document, and
//! the exit-code policy (any [`Severity::Deny`] finding fails the run).
//!
//! The model lives in `dichotomy-common` because it is shared across crate
//! layers: `dichotomy-simnet` produces fault-schedule diagnostics during
//! `FaultPlan::validate`, `dichotomy-core` attaches plan loci during scenario
//! expansion, and the `dichotomy-lint` / `repro` binaries render them.

use std::fmt;

/// How serious a finding is. Ordering is ascending severity, so
/// `max()`-style folds and sorts do the right thing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never actionable by itself.
    Note,
    /// Probably a mistake, but the run is still well-defined.
    Warn,
    /// A correctness hazard; the linting command exits nonzero.
    Deny,
}

impl Severity {
    /// Lowercase label used in both the text and JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a finding anchors: a source position (layer 1), a plan position
/// (layer 2), or nowhere in particular (produced before the locus is known —
/// e.g. inside `FaultPlan::validate`, which cannot see the experiment it
/// belongs to; the caller fills the locus in via [`Diagnostic::at_plan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Locus {
    /// No anchor (yet).
    None,
    /// A file/line position in the workspace source tree.
    Source { file: String, line: u32 },
    /// A position inside an expanded experiment plan. Empty strings mean
    /// "not applicable" (e.g. a plan-wide finding has no row or probe).
    Plan {
        experiment: String,
        row: String,
        probe: String,
    },
}

/// One finding from either analysis layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code, `D0xx` (source auditor) or `S0xx` (plan linter).
    pub code: &'static str,
    /// Severity; [`Severity::Deny`] findings fail the linting command.
    pub severity: Severity,
    /// Anchor for the finding.
    pub locus: Locus,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Convenience constructor with no locus and no help text.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            locus: Locus::None,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a source locus.
    pub fn at_source(mut self, file: impl Into<String>, line: u32) -> Self {
        self.locus = Locus::Source {
            file: file.into(),
            line,
        };
        self
    }

    /// Attach a plan locus. Pass `""` for fields that do not apply.
    pub fn at_plan(
        mut self,
        experiment: impl Into<String>,
        row: impl Into<String>,
        probe: impl Into<String>,
    ) -> Self {
        self.locus = Locus::Plan {
            experiment: experiment.into(),
            row: row.into(),
            probe: probe.into(),
        };
        self
    }

    /// Attach a remediation hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Fill in the experiment field of a plan locus (or promote a bare locus
    /// to a plan locus). Diagnostics produced during plan expansion know
    /// their row and probe but not which repro key requested them.
    pub fn for_experiment(mut self, experiment: &str) -> Self {
        match &mut self.locus {
            Locus::Plan {
                experiment: slot, ..
            } => {
                if slot.is_empty() {
                    *slot = experiment.to_string();
                }
            }
            Locus::None => {
                self.locus = Locus::Plan {
                    experiment: experiment.to_string(),
                    row: String::new(),
                    probe: String::new(),
                };
            }
            Locus::Source { .. } => {}
        }
        self
    }

    /// One-line human rendering:
    /// `deny[D001] crates/foo/src/bar.rs:12: message (help: ...)`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        match &self.locus {
            Locus::None => {}
            Locus::Source { file, line } => {
                out.push_str(&format!(" {file}:{line}"));
            }
            Locus::Plan {
                experiment,
                row,
                probe,
            } => {
                out.push(' ');
                out.push_str(experiment);
                if !row.is_empty() {
                    out.push_str(&format!(" / row '{row}'"));
                }
                if !probe.is_empty() {
                    out.push_str(&format!(" / probe '{probe}'"));
                }
            }
        }
        out.push_str(": ");
        out.push_str(&self.message);
        if let Some(help) = &self.help {
            out.push_str(&format!(" (help: {help})"));
        }
        out
    }

    /// JSON object rendering (hand-rolled; the workspace is offline-only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        match &self.locus {
            Locus::None => {}
            Locus::Source { file, line } => {
                out.push_str(&format!(",\"file\":{},\"line\":{line}", json_string(file)));
            }
            Locus::Plan {
                experiment,
                row,
                probe,
            } => {
                out.push_str(&format!(",\"experiment\":{}", json_string(experiment)));
                if !row.is_empty() {
                    out.push_str(&format!(",\"row\":{}", json_string(row)));
                }
                if !probe.is_empty() {
                    out.push_str(&format!(",\"probe\":{}", json_string(probe)));
                }
            }
        }
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        if let Some(help) = &self.help {
            out.push_str(&format!(",\"help\":{}", json_string(help)));
        }
        out.push('}');
        out
    }
}

/// Render a diagnostic list as a JSON array (stable order: input order).
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// True if any finding is deny-level (the exit-1 policy for both linters).
pub fn has_deny(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Deny)
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_ascending() {
        assert!(Severity::Note < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn render_source_locus() {
        let d = Diagnostic::new("D001", Severity::Deny, "field `x` never encoded")
            .at_source("crates/foo/src/bar.rs", 12)
            .with_help("encode every named field");
        assert_eq!(
            d.render(),
            "deny[D001] crates/foo/src/bar.rs:12: field `x` never encoded \
             (help: encode every named field)"
        );
    }

    #[test]
    fn render_plan_locus() {
        let d = Diagnostic::new("S001", Severity::Warn, "fault past horizon")
            .at_plan("fault01", "crash", "etcd");
        assert_eq!(
            d.render(),
            "warn[S001] fault01 / row 'crash' / probe 'etcd': fault past horizon"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new("S003", Severity::Note, "dup \"x\"\n").at_plan("fig04", "", "");
        assert_eq!(
            d.to_json(),
            "{\"code\":\"S003\",\"severity\":\"note\",\"experiment\":\"fig04\",\
             \"message\":\"dup \\\"x\\\"\\n\"}"
        );
        assert_eq!(to_json_array(&[]), "[]");
    }

    #[test]
    fn for_experiment_fills_empty_slot_only() {
        let d = Diagnostic::new("S001", Severity::Warn, "m").for_experiment("fault01");
        assert!(matches!(&d.locus, Locus::Plan { experiment, .. } if experiment == "fault01"));
        let d = d.for_experiment("other");
        assert!(matches!(&d.locus, Locus::Plan { experiment, .. } if experiment == "fault01"));
    }

    #[test]
    fn has_deny_policy() {
        let warn = Diagnostic::new("S001", Severity::Warn, "w");
        let deny = Diagnostic::new("D001", Severity::Deny, "d");
        assert!(!has_deny(&[warn.clone()]));
        assert!(has_deny(&[warn, deny]));
    }
}
