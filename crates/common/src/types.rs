//! Core scalar identifiers and the key/value vocabulary shared by every
//! substrate and system model in the workspace.

use std::fmt;

use crate::codec::Encode;

/// A logical node (replica/peer/orderer/server) in a simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Convenience constructor used throughout tests and benches.
    pub const fn new(id: u64) -> Self {
        NodeId(id)
    }

    /// Raw numeric id.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A client issuing transactions against one of the systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// A shard (data partition) identifier used by the sharding substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// Globally unique transaction identifier (client id, client sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Which client issued the transaction.
    pub client: ClientId,
    /// Per-client monotonically increasing sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Build a transaction id from a client and its sequence counter.
    pub const fn new(client: ClientId, seq: u64) -> Self {
        TxnId { client, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn-{}.{}", self.client.0, self.seq)
    }
}

/// Simulated time, in microseconds since the start of the run.
///
/// Microsecond granularity is enough to capture every constant the paper
/// reports (the smallest is the 15–16 µs SQL-compile / storage-get latencies
/// of Figure 8b) while keeping arithmetic in `u64`.
pub type Timestamp = u64;

/// A version number attached to a record by MVCC-style storage. In Fabric
/// this is the (block, txn) height of the last write; in TiDB it is the
/// commit timestamp; we use a single monotonically increasing counter.
pub type Version = u64;

/// Record key. Keys are opaque byte strings; YCSB-style workloads use
/// `user<zero-padded-number>` keys, Smallbank uses `acct:<n>:<field>`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub Vec<u8>);

impl Key {
    /// Construct a key from anything byte-like.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Key(bytes.into())
    }

    /// Construct a key from a UTF-8 string slice. Unlike `FromStr` this is
    /// infallible, hence the inherent method.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        Key(s.as_bytes().to_vec())
    }

    /// View the key as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes_as_ascii(&self.0, f)
    }
}

/// Record value: an opaque byte payload whose size is one of the paper's
/// experiment knobs (Table 3: 10–5000 bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Value(pub Vec<u8>);

impl Value {
    /// Construct a value from anything byte-like.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Value(bytes.into())
    }

    /// A value consisting of `len` filler bytes, used by the workload
    /// generators when only the size matters.
    pub fn filler(len: usize) -> Self {
        Value(vec![b'x'; len])
    }

    /// View the value as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes_as_ascii(&self.0, f)
    }
}

impl Encode for NodeId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Encode for ClientId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Encode for ShardId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Encode for TxnId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.client.encode_into(out);
        self.seq.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Encode for Key {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.0.len()
    }
}

impl Encode for Value {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.0.len()
    }
}

/// Shared `Display` body for byte-string wrappers: print as ASCII when
/// possible, otherwise as a hex prefix.
fn fmt_bytes_as_ascii(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if let Ok(s) = std::str::from_utf8(bytes) {
        if s.len() <= 48 {
            return write!(f, "{s}");
        }
        return write!(f, "{}…({}B)", &s[..45], bytes.len());
    }
    for b in bytes.iter().take(16) {
        write!(f, "{b:02x}")?;
    }
    if bytes.len() > 16 {
        write!(f, "…({}B)", bytes.len())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_accessors() {
        let n = NodeId::new(7);
        assert_eq!(n.as_u64(), 7);
        assert_eq!(n.to_string(), "node-7");
    }

    #[test]
    fn txn_id_ordering_is_client_then_seq() {
        let a = TxnId::new(ClientId(1), 5);
        let b = TxnId::new(ClientId(1), 6);
        let c = TxnId::new(ClientId(2), 0);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.to_string(), "txn-1.5");
    }

    #[test]
    fn key_constructors_agree() {
        assert_eq!(Key::from_str("user42"), Key::new(b"user42".to_vec()));
        assert_eq!(Key::from_str("user42").len(), 6);
        assert!(!Key::from_str("user42").is_empty());
        assert!(Key::new(Vec::new()).is_empty());
    }

    #[test]
    fn value_filler_has_requested_size() {
        let v = Value::filler(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.as_bytes().iter().all(|&b| b == b'x'));
    }

    #[test]
    fn display_truncates_long_ascii() {
        let v = Value::filler(100);
        let s = v.to_string();
        assert!(s.contains("…(100B)"));
    }

    #[test]
    fn display_hexes_non_utf8() {
        let v = Value::new(vec![0xff, 0x00, 0x12]);
        assert_eq!(v.to_string(), "ff0012");
    }
}
