//! A from-scratch SHA-256 implementation and the 32-byte [`Hash`] digest type.
//!
//! The paper's storage experiments (Figures 11–13) depend on *real* hashing:
//! the Merkle Patricia Trie and Merkle Bucket Tree derive node identities from
//! content hashes, the ledger chains blocks by header hash, and the cost of a
//! hash grows with the record size (Section 5.3.3). Implementing SHA-256 here
//! (FIPS 180-4) avoids pulling a cryptography dependency into the workspace
//! while keeping digests collision-resistant enough for the data-structure
//! invariants the tests assert.

use std::fmt;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash(pub [u8; 32]);

impl Hash {
    /// The all-zero hash, used as the genesis parent and the digest of an
    /// empty authenticated structure.
    pub const ZERO: Hash = Hash([0u8; 32]);

    /// Digest of `data` using the crate's SHA-256.
    pub fn of(data: &[u8]) -> Self {
        sha256(data)
    }

    /// Digest of the concatenation of several byte slices, without an
    /// intermediate allocation of the concatenated buffer.
    pub fn of_parts(parts: &[&[u8]]) -> Self {
        let mut hasher = Hasher::new();
        for p in parts {
            hasher.update(p);
        }
        hasher.finalize()
    }

    /// Combine two child hashes into a parent hash (Merkle interior node).
    pub fn combine(left: &Hash, right: &Hash) -> Self {
        Hash::of_parts(&[&left.0, &right.0])
    }

    /// Whether this is the all-zero hash.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Hex string of the full digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// First eight bytes interpreted as a big-endian integer; handy for
    /// pseudo-random but deterministic placement decisions (e.g. PoW-based
    /// shard assignment).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("hash has 32 bytes"))
    }
}

/// Digests encode as their 32 raw bytes: the width is fixed, so no length
/// prefix is needed.
impl crate::codec::Encode for Hash {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl Default for Hash {
    fn default() -> Self {
        Hash::ZERO
    }
}

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the square
/// roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// A fresh hasher in the initial state.
    pub fn new() -> Self {
        Hasher {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially full buffer first.
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Process full blocks directly from the input.
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().expect("slice is 64 bytes");
            self.compress(&block);
            input = &input[64..];
        }
        // Stash the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finish the hash and return the digest. Consumes the hasher.
    pub fn finalize(mut self) -> Hash {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding_byte();
        while self.buffer_len != 56 {
            self.update_zero_byte();
        }
        let len_bytes = bit_len.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&len_bytes);
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash(out)
    }

    fn update_padding_byte(&mut self) {
        self.buffer[self.buffer_len] = 0x80;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
            self.buffer = [0u8; 64];
        }
    }

    fn update_zero_byte(&mut self) {
        self.buffer[self.buffer_len] = 0;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
            self.buffer = [0u8; 64];
        }
    }

    /// One compression-function application over a 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Hash {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST test vectors.
    #[test]
    fn sha256_empty_string() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_one_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_over_chunk_boundaries() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let oneshot = sha256(&data);
        for chunk in [1usize, 3, 7, 63, 64, 65, 127, 512] {
            let mut h = Hasher::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn of_parts_equals_concatenation() {
        let a = b"hello ".to_vec();
        let b = b"world".to_vec();
        let concat = [a.clone(), b.clone()].concat();
        assert_eq!(Hash::of_parts(&[&a, &b]), Hash::of(&concat));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let l = Hash::of(b"left");
        let r = Hash::of(b"right");
        assert_ne!(Hash::combine(&l, &r), Hash::combine(&r, &l));
    }

    #[test]
    fn zero_hash_and_prefix() {
        assert!(Hash::ZERO.is_zero());
        assert!(!Hash::of(b"x").is_zero());
        assert_eq!(Hash::ZERO.prefix_u64(), 0);
        let h = Hash::of(b"prefix");
        assert_eq!(
            h.prefix_u64(),
            u64::from_be_bytes(h.0[..8].try_into().unwrap())
        );
    }

    #[test]
    fn debug_format_is_truncated() {
        let d = format!("{:?}", Hash::of(b"abc"));
        assert!(d.starts_with("Hash(ba7816bf8f01"));
    }
}
