//! Byte-level storage accounting.
//!
//! Figures 12 and 13 of the paper are pure storage-size measurements (bytes
//! per record in state storage, block storage, and under the MBT / MPT
//! authenticated indexes). To regenerate them, every storage component in the
//! workspace reports its footprint through the [`StorageFootprint`] trait,
//! and the helpers here aggregate per-record costs. Payload sizes come from
//! the canonical [`Encode`] byte encoding, so accounting matches what would
//! actually sit on a wire or on disk.

use crate::codec::Encode;

/// Total canonical encoded size of a collection of values, in bytes — the
/// payload term of a [`StorageBreakdown`].
pub fn encoded_bytes<'a, T, I>(items: I) -> u64
where
    T: Encode + 'a,
    I: IntoIterator<Item = &'a T>,
{
    items
        .into_iter()
        .map(|item| item.encoded_len() as u64)
        .sum()
}

/// Breakdown of a component's storage consumption in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Bytes holding the raw record payloads (keys + values).
    pub payload_bytes: u64,
    /// Bytes holding index structures over the payloads (tree nodes, bucket
    /// directories, hashes of internal nodes...).
    pub index_bytes: u64,
    /// Bytes holding historical data: ledger blocks, old versions, WAL.
    pub history_bytes: u64,
}

impl StorageBreakdown {
    /// Total footprint in bytes.
    pub fn total(&self) -> u64 {
        self.payload_bytes + self.index_bytes + self.history_bytes
    }

    /// Average bytes consumed per record, given the number of live records.
    /// Returns 0.0 when there are no records.
    pub fn per_record(&self, record_count: u64) -> f64 {
        if record_count == 0 {
            0.0
        } else {
            self.total() as f64 / record_count as f64
        }
    }

    /// Overhead per record beyond the raw payload (the quantity Figure 13
    /// reports for MBT vs MPT).
    pub fn overhead_per_record(&self, record_count: u64) -> f64 {
        if record_count == 0 {
            0.0
        } else {
            (self.index_bytes + self.history_bytes) as f64 / record_count as f64
        }
    }

    /// Element-wise sum of two breakdowns.
    pub fn merged(&self, other: &StorageBreakdown) -> StorageBreakdown {
        StorageBreakdown {
            payload_bytes: self.payload_bytes + other.payload_bytes,
            index_bytes: self.index_bytes + other.index_bytes,
            history_bytes: self.history_bytes + other.history_bytes,
        }
    }
}

impl StorageBreakdown {
    /// A breakdown whose payload term is the canonical encoded size of
    /// `items` (index and history start at zero; callers add their own).
    pub fn of_payload<'a, T, I>(items: I) -> StorageBreakdown
    where
        T: Encode + 'a,
        I: IntoIterator<Item = &'a T>,
    {
        StorageBreakdown {
            payload_bytes: encoded_bytes(items),
            index_bytes: 0,
            history_bytes: 0,
        }
    }
}

impl Encode for StorageBreakdown {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.payload_bytes.encode_into(out);
        self.index_bytes.encode_into(out);
        self.history_bytes.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        24
    }
}

impl crate::codec::Decode for StorageBreakdown {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(StorageBreakdown {
            payload_bytes: u64::decode_from(input)?,
            index_bytes: u64::decode_from(input)?,
            history_bytes: u64::decode_from(input)?,
        })
    }
}

/// Implemented by every component that occupies (simulated) storage.
pub trait StorageFootprint {
    /// Report the component's current footprint.
    fn footprint(&self) -> StorageBreakdown;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_per_record() {
        let b = StorageBreakdown {
            payload_bytes: 1000,
            index_bytes: 240,
            history_bytes: 760,
        };
        assert_eq!(b.total(), 2000);
        assert!((b.per_record(10) - 200.0).abs() < 1e-9);
        assert!((b.overhead_per_record(10) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_records_is_not_a_division_by_zero() {
        let b = StorageBreakdown::default();
        assert_eq!(b.per_record(0), 0.0);
        assert_eq!(b.overhead_per_record(0), 0.0);
    }

    #[test]
    fn encoded_payload_accounting_matches_the_codec() {
        use crate::types::Value;
        let values = vec![Value::filler(10), Value::filler(100)];
        // Each Value encodes as a 4-byte length prefix plus its payload.
        assert_eq!(encoded_bytes(values.iter()), (4 + 10) + (4 + 100));
        let b = StorageBreakdown::of_payload(values.iter());
        assert_eq!(b.payload_bytes, 118);
        assert_eq!(b.index_bytes, 0);
        assert_eq!(b.total(), 118);
        assert_eq!(b.encoded_len(), b.encode().len());
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = StorageBreakdown {
            payload_bytes: 1,
            index_bytes: 2,
            history_bytes: 3,
        };
        let b = StorageBreakdown {
            payload_bytes: 10,
            index_bytes: 20,
            history_bytes: 30,
        };
        let m = a.merged(&b);
        assert_eq!(m.payload_bytes, 11);
        assert_eq!(m.index_bytes, 22);
        assert_eq!(m.history_bytes, 33);
        assert_eq!(m.total(), 66);
    }
}
