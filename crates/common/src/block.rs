//! The block format shared by all ledger-based system models.
//!
//! A [`Block`] is an ordered batch of transactions plus a [`BlockHeader`]
//! that chains it to its predecessor by hash and commits to the batch via a
//! Merkle-style transactions digest and (optionally) a global state root.
//! Quorum fills `state_root` with the Merkle Patricia Trie root, Fabric
//! leaves it empty (Fabric ≥ v1 has no authenticated state index), and the
//! Fabric-v0.6 / AHL models fill it with the Merkle Bucket Tree root.

use crate::codec::Encode;
use crate::hash::{Hash, Hasher};
use crate::txn::Transaction;
use crate::types::{NodeId, Timestamp};

/// Block header: the part that is hashed and chained.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockHeader {
    /// Height of this block in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the previous block's header (`Hash::ZERO` for genesis).
    pub prev_hash: Hash,
    /// Digest over the ordered transaction list.
    pub txns_digest: Hash,
    /// Root of the authenticated state index after applying this block, if
    /// the system maintains one.
    pub state_root: Option<Hash>,
    /// Proposer / primary that assembled the block.
    pub proposer: NodeId,
    /// Simulated time at which the block was proposed.
    pub timestamp: Timestamp,
}

impl BlockHeader {
    /// Hash of the header; this is "the block hash" that the next block's
    /// `prev_hash` points to.
    pub fn hash(&self) -> Hash {
        let mut h = Hasher::new();
        h.update(&self.height.to_be_bytes());
        h.update(&self.prev_hash.0);
        h.update(&self.txns_digest.0);
        match &self.state_root {
            Some(root) => {
                h.update(&[1]);
                h.update(&root.0);
            }
            None => h.update(&[0]),
        }
        h.update(&self.proposer.0.to_be_bytes());
        h.update(&self.timestamp.to_be_bytes());
        h.finalize()
    }
}

/// A block: header plus the transaction batch it commits.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The chained header.
    pub header: BlockHeader,
    /// Ordered transactions.
    pub txns: Vec<Transaction>,
}

impl Block {
    /// Assemble a block at `height` on top of `prev_hash` from an ordered
    /// transaction batch.
    pub fn assemble(
        height: u64,
        prev_hash: Hash,
        txns: Vec<Transaction>,
        proposer: NodeId,
        timestamp: Timestamp,
        state_root: Option<Hash>,
    ) -> Self {
        let txns_digest = Self::digest_txns(&txns);
        Block {
            header: BlockHeader {
                height,
                prev_hash,
                txns_digest,
                state_root,
                proposer,
                timestamp,
            },
            txns,
        }
    }

    /// The genesis block of a chain.
    pub fn genesis(proposer: NodeId) -> Self {
        Block::assemble(0, Hash::ZERO, Vec::new(), proposer, 0, None)
    }

    /// Digest over an ordered transaction batch (binary Merkle-style fold;
    /// order-sensitive, as required for a ledger).
    pub fn digest_txns(txns: &[Transaction]) -> Hash {
        if txns.is_empty() {
            return Hash::ZERO;
        }
        let mut level: Vec<Hash> = txns.iter().map(Transaction::digest).collect();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        Hash::combine(&pair[0], &pair[1])
                    } else {
                        // Odd node is promoted (Bitcoin-style duplication would
                        // also work; promotion keeps proofs slightly smaller).
                        pair[0]
                    }
                })
                .collect();
        }
        level[0]
    }

    /// Hash of the block (header hash).
    pub fn hash(&self) -> Hash {
        self.header.hash()
    }

    /// Number of transactions in the block.
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }

    /// Whether the header's transactions digest matches the body. Validators
    /// check this before committing a block received from the network.
    pub fn verify_txns_digest(&self) -> bool {
        self.header.txns_digest == Self::digest_txns(&self.txns)
    }

    /// Approximate serialized size of the block in bytes: header plus every
    /// transaction envelope. Used for the storage accounting of Figure 12 and
    /// the bandwidth model.
    pub fn wire_bytes(&self) -> usize {
        const HEADER_BYTES: usize = 8 + 32 + 32 + 33 + 8 + 8;
        HEADER_BYTES + self.txns.iter().map(Transaction::wire_bytes).sum::<usize>()
    }
}

impl Encode for BlockHeader {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.height.encode_into(out);
        self.prev_hash.encode_into(out);
        self.txns_digest.encode_into(out);
        self.state_root.encode_into(out);
        self.proposer.encode_into(out);
        self.timestamp.encode_into(out);
    }
}

impl Encode for Block {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.header.encode_into(out);
        self.txns.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Operation;
    use crate::types::{ClientId, Key, TxnId, Value};

    fn sample_txn(seq: u64, payload: usize) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(7), seq),
            vec![Operation::write(
                Key::from_str(&format!("key{seq}")),
                Value::filler(payload),
            )],
        )
    }

    #[test]
    fn genesis_has_height_zero_and_zero_parent() {
        let g = Block::genesis(NodeId(0));
        assert_eq!(g.header.height, 0);
        assert_eq!(g.header.prev_hash, Hash::ZERO);
        assert_eq!(g.txn_count(), 0);
        assert!(g.verify_txns_digest());
    }

    #[test]
    fn chaining_links_by_header_hash() {
        let g = Block::genesis(NodeId(0));
        let b1 = Block::assemble(1, g.hash(), vec![sample_txn(1, 10)], NodeId(0), 100, None);
        assert_eq!(b1.header.prev_hash, g.hash());
        assert_ne!(b1.hash(), g.hash());
    }

    #[test]
    fn txns_digest_is_order_sensitive() {
        let a = sample_txn(1, 10);
        let b = sample_txn(2, 10);
        let d1 = Block::digest_txns(&[a.clone(), b.clone()]);
        let d2 = Block::digest_txns(&[b, a]);
        assert_ne!(d1, d2);
    }

    #[test]
    fn digest_handles_odd_batches() {
        let txns: Vec<_> = (0..5).map(|i| sample_txn(i, 10)).collect();
        let d = Block::digest_txns(&txns);
        assert_ne!(d, Hash::ZERO);
        // Deterministic.
        assert_eq!(d, Block::digest_txns(&txns));
    }

    #[test]
    fn tampered_body_fails_digest_check() {
        let mut b = Block::assemble(
            1,
            Hash::ZERO,
            vec![sample_txn(1, 10), sample_txn(2, 10)],
            NodeId(0),
            0,
            None,
        );
        assert!(b.verify_txns_digest());
        b.txns.pop();
        assert!(!b.verify_txns_digest());
    }

    #[test]
    fn state_root_contributes_to_block_hash() {
        let txns = vec![sample_txn(1, 10)];
        let without = Block::assemble(1, Hash::ZERO, txns.clone(), NodeId(0), 0, None);
        let with = Block::assemble(1, Hash::ZERO, txns, NodeId(0), 0, Some(Hash::of(b"root")));
        assert_ne!(without.hash(), with.hash());
    }

    #[test]
    fn wire_bytes_grows_with_payload() {
        let small = Block::assemble(1, Hash::ZERO, vec![sample_txn(1, 10)], NodeId(0), 0, None);
        let large = Block::assemble(1, Hash::ZERO, vec![sample_txn(1, 5000)], NodeId(0), 0, None);
        assert!(large.wire_bytes() > small.wire_bytes() + 4900);
    }
}
