//! Workspace-wide error vocabulary.

use std::fmt;

/// Errors surfaced by the common substrates. Higher-level crates either wrap
/// these or define their own domain-specific enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommonError {
    /// A key was not found where it was required to exist.
    KeyNotFound(String),
    /// A cryptographic check (signature, digest, proof) failed.
    IntegrityViolation(String),
    /// An argument was outside the accepted range.
    InvalidArgument(String),
    /// The operation conflicts with the component's current state.
    InvalidState(String),
    /// A serialization / encoding problem.
    Codec(String),
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::KeyNotFound(k) => write!(f, "key not found: {k}"),
            CommonError::IntegrityViolation(m) => write!(f, "integrity violation: {m}"),
            CommonError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            CommonError::InvalidState(m) => write!(f, "invalid state: {m}"),
            CommonError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for CommonError {}

/// Result alias using [`CommonError`].
pub type Result<T> = std::result::Result<T, CommonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        assert_eq!(
            CommonError::KeyNotFound("user1".into()).to_string(),
            "key not found: user1"
        );
        assert!(CommonError::IntegrityViolation("bad proof".into())
            .to_string()
            .contains("bad proof"));
        assert!(CommonError::InvalidArgument("x".into())
            .to_string()
            .contains("invalid argument"));
        assert!(CommonError::InvalidState("y".into())
            .to_string()
            .contains("invalid state"));
        assert!(CommonError::Codec("z".into()).to_string().contains("codec"));
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn std::error::Error> = Box::new(CommonError::Codec("trunc".into()));
        assert!(e.to_string().contains("trunc"));
    }
}
