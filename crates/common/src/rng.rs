//! Deterministic randomness helpers.
//!
//! Every stochastic choice in the workspace — workload key selection, PoW
//! "mining", network jitter — flows from a seeded [`StdRng`] so that an
//! experiment re-run with the same seed reproduces the same numbers bit for
//! bit (DESIGN.md, "Determinism").
//!
//! The generator is implemented in-repo (xoshiro256++ seeded through
//! SplitMix64) because the workspace builds offline with no crates.io
//! dependencies. The [`Rng`] and [`SliceRandom`] traits expose the small API
//! surface the call sites need: `gen`, `gen_range`, `gen_bool`, `gen_ratio`
//! and `shuffle`.

/// The workspace-wide default seed used by examples and benches unless the
/// caller supplies one.
pub const DEFAULT_SEED: u64 = 0x51D7_2021;

/// A deterministic pseudo-random generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64. Not cryptographic — it drives simulations.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Construct a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; this is
        // the initialization the xoshiro authors recommend and guarantees a
        // non-zero state for every seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift maps next_u64 onto [0, span).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The generator interface used across the workspace. `next_u64` is the only
/// required method; everything else derives from it deterministically.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }

    /// Bernoulli draw: `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        self.gen_range(0..denominator as u64) < numerator as u64
    }
}

/// In-place random reordering of slices (Fisher–Yates).
pub trait SliceRandom {
    /// Shuffle the slice uniformly at random.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Construct a seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a label, so that independent
/// components (each client, each node) get decorrelated but reproducible
/// streams.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let h = crate::hash::Hash::of_parts(&[&parent.to_be_bytes(), label.as_bytes()]);
    h.prefix_u64()
}

/// Sample an exponentially distributed delay with the given mean, clamped to
/// at least 1 µs. Used for network jitter and client think times.
pub fn exp_delay_us<R: Rng>(rng: &mut R, mean_us: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let d = -mean_us * u.ln();
    d.clamp(1.0, 1e12) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let va: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_are_stable_and_label_sensitive() {
        assert_eq!(derive_seed(7, "client-1"), derive_seed(7, "client-1"));
        assert_ne!(derive_seed(7, "client-1"), derive_seed(7, "client-2"));
        assert_ne!(derive_seed(7, "client-1"), derive_seed(8, "client-1"));
    }

    #[test]
    fn exp_delay_has_roughly_correct_mean() {
        let mut rng = seeded(3);
        let n = 20_000;
        let mean = 500.0;
        let total: u64 = (0..n).map(|_| exp_delay_us(&mut rng, mean)).sum();
        let observed = total as f64 / n as f64;
        assert!((observed - mean).abs() < mean * 0.1, "observed {observed}");
    }

    #[test]
    fn exp_delay_is_at_least_one_microsecond() {
        let mut rng = seeded(4);
        assert!((0..1000).all(|_| exp_delay_us(&mut rng, 0.001) >= 1));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = seeded(5);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = seeded(6);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = seeded(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }

    #[test]
    fn gen_ratio_tracks_probability() {
        let mut rng = seeded(8);
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 4)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = seeded(9);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let shuffled = |seed| {
            let mut v: Vec<u32> = (0..100).collect();
            v.shuffle(&mut seeded(seed));
            v
        };
        let a = shuffled(11);
        assert_eq!(a, shuffled(11));
        assert_ne!(a, shuffled(12));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }
}
