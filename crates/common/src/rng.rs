//! Deterministic randomness helpers.
//!
//! Every stochastic choice in the workspace — workload key selection, PoW
//! "mining", network jitter — flows from a seeded [`rand::rngs::StdRng`] so
//! that an experiment re-run with the same seed reproduces the same numbers
//! bit for bit (DESIGN.md, "Determinism").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The workspace-wide default seed used by examples and benches unless the
/// caller supplies one.
pub const DEFAULT_SEED: u64 = 0x51D7_2021;

/// Construct a seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a label, so that independent
/// components (each client, each node) get decorrelated but reproducible
/// streams.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let h = crate::hash::Hash::of_parts(&[&parent.to_be_bytes(), label.as_bytes()]);
    h.prefix_u64()
}

/// Sample an exponentially distributed delay with the given mean, clamped to
/// at least 1 µs. Used for network jitter and client think times.
pub fn exp_delay_us<R: Rng>(rng: &mut R, mean_us: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let d = -mean_us * u.ln();
    d.max(1.0).min(1e12) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let va: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_are_stable_and_label_sensitive() {
        assert_eq!(derive_seed(7, "client-1"), derive_seed(7, "client-1"));
        assert_ne!(derive_seed(7, "client-1"), derive_seed(7, "client-2"));
        assert_ne!(derive_seed(7, "client-1"), derive_seed(8, "client-1"));
    }

    #[test]
    fn exp_delay_has_roughly_correct_mean() {
        let mut rng = seeded(3);
        let n = 20_000;
        let mean = 500.0;
        let total: u64 = (0..n).map(|_| exp_delay_us(&mut rng, mean)).sum();
        let observed = total as f64 / n as f64;
        assert!((observed - mean).abs() < mean * 0.1, "observed {observed}");
    }

    #[test]
    fn exp_delay_is_at_least_one_microsecond() {
        let mut rng = seeded(4);
        assert!((0..1000).all(|_| exp_delay_us(&mut rng, 0.001) >= 1));
    }
}
