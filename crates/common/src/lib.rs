//! Common foundation types for the *Blockchains vs. Distributed Databases:
//! Dichotomy and Fusion* reproduction.
//!
//! This crate holds everything the substrate crates (storage, consensus,
//! merkle, ledger, ...) and the system models (Quorum, Fabric, TiDB, etcd,
//! ...) share:
//!
//! * [`Hash`] and a from-scratch [`sha256`](hash::sha256) implementation used
//!   for ledger chaining and authenticated data structures,
//! * deterministic, model-level digital [`signatures`](crypto) whose
//!   verification cost is charged by the simulator,
//! * the transactional vocabulary ([`Key`], [`Value`], [`Operation`],
//!   [`Transaction`], [`TxnReceipt`], [`AbortReason`]),
//! * the [`Block`] format shared by all ledger-based systems,
//! * error types and byte-level [`size`] accounting helpers.
//!
//! Everything here is pure data and pure computation: no clocks, no I/O, no
//! threads. Time and cost live in `dichotomy-simnet`.

pub mod block;
pub mod codec;
pub mod crypto;
pub mod diag;
pub mod error;
pub mod hash;
pub mod rng;
pub mod size;
pub mod txn;
pub mod types;

pub use block::{Block, BlockHeader};
pub use codec::{intern, Decode, Encode};
pub use crypto::{KeyPair, PublicKey, Signature};
pub use diag::{Diagnostic, Locus, Severity};
pub use error::{CommonError, Result};
pub use hash::{sha256, Hash, Hasher};
pub use txn::{
    AbortReason, IsolationLevel, Operation, OperationKind, Transaction, TxnReceipt, TxnStatus,
};
pub use types::{ClientId, Key, NodeId, ShardId, Timestamp, TxnId, Value, Version};
