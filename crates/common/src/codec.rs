//! A minimal in-repo wire encoding.
//!
//! The seed of this reproduction derived `serde::{Serialize, Deserialize}` on
//! the shared data types, but nothing ever serialized through serde — the
//! derives existed only to mark "this type crosses a wire or sits on disk".
//! Because the workspace builds offline with no crates.io dependencies, that
//! role is filled by this hand-rolled [`Encode`] trait instead: a canonical,
//! deterministic byte encoding (big-endian fixed-width scalars, u32
//! length-prefixed byte strings, one tag byte per enum variant) whose primary
//! consumers are the byte-level storage accounting in [`crate::size`], the
//! canonical probe-content hashes of the measurement layer, and — through the
//! mirroring [`Decode`] trait — the persistent probe-result cache.

/// Types with a canonical byte encoding.
///
/// The encoding is deterministic — equal values encode to equal bytes — so
/// `encoded_len` is usable for storage and bandwidth accounting, and encoded
/// forms are usable as hashing inputs.
pub trait Encode {
    /// Append the canonical encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Size of the canonical encoding in bytes.
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf.len()
    }

    /// The canonical encoding as an owned buffer.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }
}

macro_rules! impl_encode_scalar {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}
impl_encode_scalar!(u8, u16, u32, u64);

impl Encode for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_be_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Encode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// Byte strings are u32 length-prefixed (4 GiB is far beyond any record the
/// experiments produce).
impl Encode for [u8] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Encode for &str {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

/// `None` is a single 0 tag byte; `Some(v)` is a 1 tag byte plus `v`.
impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

/// Sequences of encodable values are u32 count-prefixed.
impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        for item in self {
            item.encode_into(out);
        }
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl Encode for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_str().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

/// Types that can be reconstructed from their canonical [`Encode`] bytes.
///
/// `decode_from` consumes the value's encoding off the front of `input`
/// (advancing the slice) and returns `None` on truncated or malformed
/// input — a decoder never panics and never trusts lengths it has not
/// bounds-checked, so corrupted cache entries degrade to a miss rather than
/// an abort.
pub trait Decode: Sized {
    /// Decode one value off the front of `input`, advancing it.
    fn decode_from(input: &mut &[u8]) -> Option<Self>;

    /// Decode a value that must consume `bytes` exactly.
    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut input = bytes;
        let value = Self::decode_from(&mut input)?;
        input.is_empty().then_some(value)
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! impl_decode_scalar {
    ($($t:ty),*) => {$(
        impl Decode for $t {
            fn decode_from(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_be_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}
impl_decode_scalar!(u8, u16, u32, u64);

impl Decode for f64 {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::decode_from(input)?))
    }
}

impl Decode for bool {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        match u8::decode_from(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Decode for String {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode_from(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        match u8::decode_from(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode_from(input)?)),
            _ => None,
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let count = u32::decode_from(input)? as usize;
        // Guard the pre-allocation against hostile counts: every element is
        // at least one byte of input, so a count beyond the remaining input
        // is malformed by construction.
        if count > input.len() {
            return None;
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(T::decode_from(input)?);
        }
        Some(items)
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode_from(input)?, B::decode_from(input)?))
    }
}

/// Intern a string, returning a `&'static str` with the same content.
///
/// Several metric types key maps by `&'static str` (phase names, oracle
/// labels, probe extras) — a small fixed vocabulary the models declare as
/// literals. Decoding those types from cached bytes needs a `'static`
/// lifetime back, so novel strings are leaked exactly once into a global
/// table and every later request returns the same allocation. Leakage is
/// bounded by the vocabulary actually decoded, not by the number of decode
/// calls.
pub fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("intern table poisoned");
    if let Some(existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_fixed_width_big_endian() {
        assert_eq!(0x0102u16.encode(), vec![1, 2]);
        assert_eq!(1u64.encode(), vec![0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(1u64.encoded_len(), 8);
        assert_eq!(true.encode(), vec![1]);
        assert_eq!(1.5f64.encode(), 1.5f64.to_bits().to_be_bytes().to_vec());
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let v: Vec<u8> = b"abc".to_vec();
        assert_eq!(v.encode(), vec![0, 0, 0, 3, b'a', b'b', b'c']);
        assert_eq!(v.encoded_len(), 7);
        assert_eq!("xy".encode(), vec![0, 0, 0, 2, b'x', b'y']);
    }

    #[test]
    fn options_carry_a_tag_byte() {
        assert_eq!(Option::<u8>::None.encode(), vec![0]);
        assert_eq!(Some(7u8).encode(), vec![1, 7]);
        assert_eq!(Some(7u8).encoded_len(), 2);
    }

    #[test]
    fn sequences_are_count_prefixed() {
        let v = vec![1u16, 2, 3];
        assert_eq!(v.encode(), vec![0, 0, 0, 3, 0, 1, 0, 2, 0, 3]);
        assert_eq!(v.encoded_len(), v.encode().len());
    }

    #[test]
    fn encoded_len_matches_encode_for_composites() {
        let pair = (42u64, Some(b"payload".to_vec()));
        assert_eq!(pair.encoded_len(), pair.encode().len());
    }

    #[test]
    fn distinct_values_encode_distinctly() {
        // Length prefixes keep (["ab"], ["c"]) apart from (["a"], ["bc"]).
        let a = (b"ab".to_vec(), b"c".to_vec()).encode();
        let b = (b"a".to_vec(), b"bc".to_vec()).encode();
        assert_ne!(a, b);
    }

    #[test]
    fn decode_round_trips_every_base_type() {
        assert_eq!(u8::decode(&7u8.encode()), Some(7));
        assert_eq!(u16::decode(&0x0102u16.encode()), Some(0x0102));
        assert_eq!(u32::decode(&9u32.encode()), Some(9));
        assert_eq!(u64::decode(&u64::MAX.encode()), Some(u64::MAX));
        assert_eq!(bool::decode(&true.encode()), Some(true));
        assert_eq!(f64::decode(&1.5f64.encode()), Some(1.5));
        // NaN round-trips bit-exactly (cache hits must be byte-identical).
        let nan_bits = f64::NAN.to_bits();
        assert_eq!(
            f64::decode(&f64::NAN.encode()).map(f64::to_bits),
            Some(nan_bits)
        );
        assert_eq!(
            String::decode(&"hello".to_string().encode()),
            Some("hello".to_string())
        );
        assert_eq!(Option::<u64>::decode(&Some(4u64).encode()), Some(Some(4)));
        assert_eq!(Option::<u64>::decode(&None::<u64>.encode()), Some(None));
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u64, f64)>::decode(&v.encode()), Some(v));
    }

    #[test]
    fn decode_rejects_truncated_and_malformed_input() {
        assert_eq!(u64::decode(&[0, 0, 0]), None);
        // Trailing garbage after a complete value is malformed too.
        assert_eq!(u8::decode(&[1, 2]), None);
        assert_eq!(bool::decode(&[2]), None);
        assert_eq!(Option::<u8>::decode(&[9]), None);
        // A count prefix larger than the remaining input cannot be honest.
        assert_eq!(Vec::<u64>::decode(&[0xFF, 0xFF, 0xFF, 0xFF]), None);
        // Invalid UTF-8 is a decode failure, not a panic.
        assert_eq!(String::decode(&[0, 0, 0, 1, 0xFF]), None);
    }

    #[test]
    fn intern_returns_one_allocation_per_content() {
        let a = intern("decode-phase-name");
        let b = intern(&String::from("decode-phase-name"));
        assert_eq!(a, "decode-phase-name");
        assert!(std::ptr::eq(a, b));
    }
}
