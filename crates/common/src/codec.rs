//! A minimal in-repo wire encoding.
//!
//! The seed of this reproduction derived `serde::{Serialize, Deserialize}` on
//! the shared data types, but nothing ever serialized through serde — the
//! derives existed only to mark "this type crosses a wire or sits on disk".
//! Because the workspace builds offline with no crates.io dependencies, that
//! role is filled by this hand-rolled [`Encode`] trait instead: a canonical,
//! deterministic byte encoding (big-endian fixed-width scalars, u32
//! length-prefixed byte strings, one tag byte per enum variant) whose primary
//! consumer is the byte-level storage accounting in [`crate::size`].

/// Types with a canonical byte encoding.
///
/// The encoding is deterministic — equal values encode to equal bytes — so
/// `encoded_len` is usable for storage and bandwidth accounting, and encoded
/// forms are usable as hashing inputs.
pub trait Encode {
    /// Append the canonical encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Size of the canonical encoding in bytes.
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf.len()
    }

    /// The canonical encoding as an owned buffer.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }
}

macro_rules! impl_encode_scalar {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}
impl_encode_scalar!(u8, u16, u32, u64);

impl Encode for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_be_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Encode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// Byte strings are u32 length-prefixed (4 GiB is far beyond any record the
/// experiments produce).
impl Encode for [u8] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Encode for &str {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

/// `None` is a single 0 tag byte; `Some(v)` is a 1 tag byte plus `v`.
impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

/// Sequences of encodable values are u32 count-prefixed.
impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        for item in self {
            item.encode_into(out);
        }
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_fixed_width_big_endian() {
        assert_eq!(0x0102u16.encode(), vec![1, 2]);
        assert_eq!(1u64.encode(), vec![0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(1u64.encoded_len(), 8);
        assert_eq!(true.encode(), vec![1]);
        assert_eq!(1.5f64.encode(), 1.5f64.to_bits().to_be_bytes().to_vec());
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let v: Vec<u8> = b"abc".to_vec();
        assert_eq!(v.encode(), vec![0, 0, 0, 3, b'a', b'b', b'c']);
        assert_eq!(v.encoded_len(), 7);
        assert_eq!("xy".encode(), vec![0, 0, 0, 2, b'x', b'y']);
    }

    #[test]
    fn options_carry_a_tag_byte() {
        assert_eq!(Option::<u8>::None.encode(), vec![0]);
        assert_eq!(Some(7u8).encode(), vec![1, 7]);
        assert_eq!(Some(7u8).encoded_len(), 2);
    }

    #[test]
    fn sequences_are_count_prefixed() {
        let v = vec![1u16, 2, 3];
        assert_eq!(v.encode(), vec![0, 0, 0, 3, 0, 1, 0, 2, 0, 3]);
        assert_eq!(v.encoded_len(), v.encode().len());
    }

    #[test]
    fn encoded_len_matches_encode_for_composites() {
        let pair = (42u64, Some(b"payload".to_vec()));
        assert_eq!(pair.encoded_len(), pair.encode().len());
    }

    #[test]
    fn distinct_values_encode_distinctly() {
        // Length prefixes keep (["ab"], ["c"]) apart from (["a"], ["bc"]).
        let a = (b"ab".to_vec(), b"c".to_vec()).encode();
        let b = (b"a".to_vec(), b"bc".to_vec()).encode();
        assert_ne!(a, b);
    }
}
