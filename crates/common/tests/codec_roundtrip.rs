//! Exhaustive Encode⇄Decode round-trip over every `Decode`-bearing type
//! `dichotomy-common` defines: scalars, `f64`, `bool`, `String`,
//! `Option<T>`, `Vec<T>`, tuples, `AbortReason` and `StorageBreakdown`.
//! (The higher-level codec types — metrics, probe results, series — live in
//! `dichotomy-core`; `crates/core/tests/codec_roundtrip.rs` covers those.)
//!
//! Two properties per value: `decode(encode(v)) == v`, and re-encoding the
//! decoded value reproduces the original bytes exactly — the property the
//! content-addressed probe cache depends on.

use dichotomy_common::size::StorageBreakdown;
use dichotomy_common::{AbortReason, Decode, Encode};

/// Round-trip one value and prove byte-stability of the re-encoding.
fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
    let bytes = value.encode();
    let decoded = T::decode(&bytes).expect("decode of a canonical encoding");
    assert_eq!(decoded, value);
    assert_eq!(decoded.encode(), bytes, "re-encoding must be byte-stable");
}

#[test]
fn scalars() {
    for v in [0u8, 1, 127, u8::MAX] {
        roundtrip(v);
    }
    for v in [0u16, 1, 0x1234, u16::MAX] {
        roundtrip(v);
    }
    for v in [0u32, 1, 0xdead_beef, u32::MAX] {
        roundtrip(v);
    }
    for v in [0u64, 1, 1 << 63, u64::MAX] {
        roundtrip(v);
    }
}

#[test]
fn floats() {
    for v in [
        0.0f64,
        -0.0,
        1.5,
        -123.456,
        f64::MIN,
        f64::MAX,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        roundtrip(v);
    }
    // NaN != NaN, so compare the round-trip at the bit level.
    let bytes = f64::NAN.encode();
    let back = f64::decode(&bytes).unwrap();
    assert_eq!(back.to_bits(), f64::NAN.to_bits());
}

#[test]
fn bools_and_strings() {
    roundtrip(true);
    roundtrip(false);
    roundtrip(String::new());
    roundtrip("ascii".to_string());
    roundtrip("μs — micro-seconds, ünïcode".to_string());
}

#[test]
fn options_vecs_tuples() {
    roundtrip(Option::<u64>::None);
    roundtrip(Some(42u64));
    roundtrip(Vec::<u32>::new());
    roundtrip(vec![1u64, 2, 3]);
    roundtrip(("phase".to_string(), 480.5f64));
    // Nesting: the shape `Vec<(String, f64)>` is exactly ProbeResult.extras.
    roundtrip(vec![("a".to_string(), 1.0f64), ("b".to_string(), -2.5)]);
    roundtrip(vec![Some("x".to_string()), None]);
}

/// Every `AbortReason` variant. The `match` makes this list provably
/// exhaustive: adding a variant without extending it fails to compile.
fn all_abort_reasons() -> Vec<AbortReason> {
    let all = vec![
        AbortReason::ReadWriteConflict,
        AbortReason::InconsistentRead,
        AbortReason::WriteWriteConflict,
        AbortReason::LockConflict,
        AbortReason::CrossShardAbort,
        AbortReason::Overload,
        AbortReason::ApplicationConstraint,
    ];
    for reason in &all {
        match reason {
            AbortReason::ReadWriteConflict
            | AbortReason::InconsistentRead
            | AbortReason::WriteWriteConflict
            | AbortReason::LockConflict
            | AbortReason::CrossShardAbort
            | AbortReason::Overload
            | AbortReason::ApplicationConstraint => {}
        }
    }
    all
}

#[test]
fn abort_reason_every_variant() {
    let all = all_abort_reasons();
    for reason in all.clone() {
        roundtrip(reason);
    }
    // Each variant must encode distinctly — the tag byte is the identity.
    let mut encodings: Vec<Vec<u8>> = all.iter().map(Encode::encode).collect();
    encodings.sort();
    encodings.dedup();
    assert_eq!(encodings.len(), all.len());
}

#[test]
fn storage_breakdown() {
    roundtrip(StorageBreakdown::default());
    roundtrip(StorageBreakdown {
        payload_bytes: 1_000_000,
        index_bytes: 250_000,
        history_bytes: u64::MAX / 2,
    });
}

#[test]
fn truncated_input_decodes_to_none() {
    let bytes = ("key".to_string(), 1.25f64).encode();
    for cut in 0..bytes.len() {
        assert_eq!(<(String, f64)>::decode(&bytes[..cut]), None, "cut at {cut}");
    }
}
