//! Property-based tests: every storage engine must behave like a reference
//! `BTreeMap` under arbitrary workloads, and the MVCC store must preserve
//! snapshot semantics under garbage collection.

use proptest::prelude::*;

use dichotomy_common::{Key, Value};
use dichotomy_storage::{BPlusTree, KvEngine, LsmTree, MvccStore, SkipList};

/// Apply a random op sequence to an engine and a reference map, then compare.
fn run_against_reference(engine: &mut dyn KvEngine, ops: &[(u8, u16, u16)]) {
    use std::collections::BTreeMap;
    let mut reference: BTreeMap<Key, Value> = BTreeMap::new();
    for &(op, kn, vn) in ops {
        let key = Key::from_str(&format!("key{:05}", kn % 300));
        match op % 4 {
            0 | 1 | 2 => {
                let value = Value::filler((vn % 128) as usize + 1);
                reference.insert(key.clone(), value.clone());
                engine.put(key, value);
            }
            _ => {
                let expected = reference.remove(&key).is_some();
                assert_eq!(engine.delete(&key), expected);
            }
        }
    }
    assert_eq!(engine.len(), reference.len());
    for (k, v) in &reference {
        assert_eq!(engine.get(k).as_ref(), Some(v));
    }
    let lo = Key::from_str("key00000");
    let hi = Key::from_str("key99999");
    let scanned = engine.scan(&lo, &hi);
    let expected: Vec<(Key, Value)> = reference
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    assert_eq!(scanned, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lsm_matches_reference(ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 0..400)) {
        // A tiny memtable forces flushes and compactions mid-workload.
        let mut t = LsmTree::with_config(dichotomy_storage::lsm::LsmConfig {
            memtable_budget_bytes: 512,
            max_runs: 4,
        });
        run_against_reference(&mut t, &ops);
    }

    #[test]
    fn btree_matches_reference(ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 0..400)) {
        let mut t = BPlusTree::new();
        run_against_reference(&mut t, &ops);
    }

    #[test]
    fn skiplist_matches_reference(ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 0..400)) {
        let mut t = SkipList::new(42);
        run_against_reference(&mut t, &ops);
    }

    #[test]
    fn mvcc_snapshots_are_stable_under_gc(
        writes in prop::collection::vec((0u16..50, 1u16..64), 1..200),
        gc_fraction in 0.0f64..1.0,
    ) {
        let mut store = MvccStore::new();
        let mut commits: Vec<(u64, Key, usize)> = Vec::new();
        for (kn, len) in writes {
            let key = Key::from_str(&format!("k{kn:03}"));
            let v = store.begin_commit();
            store.commit_write(key.clone(), v, Some(Value::filler(len as usize)));
            commits.push((v, key, len as usize));
        }
        let latest = store.latest_version();
        let watermark = (latest as f64 * gc_fraction) as u64;
        // Snapshot visible at the watermark before GC...
        let expectations: Vec<(Key, Option<usize>)> = commits
            .iter()
            .map(|(_, key, _)| {
                (key.clone(), store.get_at(key, watermark.max(1)).map(|v| v.len()))
            })
            .collect();
        store.gc(watermark.max(1));
        // ...must be identical after GC.
        for (key, expected_len) in expectations {
            prop_assert_eq!(store.get_at(&key, watermark.max(1)).map(|v| v.len()), expected_len);
        }
        // And the latest version of each key is always readable.
        for (v, key, len) in commits.iter().rev() {
            if store.latest_key_version(key) == Some(*v) {
                prop_assert_eq!(store.get_latest(key).unwrap().len(), *len);
            }
        }
    }
}
