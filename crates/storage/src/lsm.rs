//! A log-structured merge tree modelled after LevelDB.
//!
//! Writes go to an in-memory **memtable** (and, logically, the WAL); when the
//! memtable exceeds its budget it is frozen into an immutable sorted **run**
//! (an SSTable). Reads probe the memtable first, then runs from newest to
//! oldest. A size-tiered **compaction** merges runs when there are too many,
//! discarding overwritten versions and tombstones of deleted keys.
//!
//! The model keeps everything in memory but preserves the structural
//! properties the experiments rely on: read amplification equals the number
//! of probed runs, storage footprint includes obsolete versions until
//! compaction reclaims them, and tombstones occupy space.

use std::collections::BTreeMap;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, Value};

use crate::engine::{EngineKind, KvEngine};

/// An entry in the tree: a live value or a tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Live(Value),
    Tombstone,
}

impl Slot {
    fn bytes(&self) -> usize {
        match self {
            Slot::Live(v) => v.len(),
            Slot::Tombstone => 1,
        }
    }
}

/// An immutable sorted run (SSTable model).
#[derive(Debug, Clone)]
struct Run {
    entries: Vec<(Key, Slot)>,
}

impl Run {
    fn from_memtable(memtable: &BTreeMap<Key, Slot>) -> Self {
        Run {
            entries: memtable
                .iter()
                .map(|(k, s)| (k.clone(), s.clone()))
                .collect(),
        }
    }

    fn get(&self, key: &Key) -> Option<&Slot> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    fn bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(k, s)| (k.len() + s.bytes()) as u64)
            .sum()
    }

    /// Per-entry index overhead of the SSTable model: block index entry plus
    /// bloom-filter bits (LevelDB defaults ≈ 10 bits/key + restart points).
    fn index_bytes(&self) -> u64 {
        self.entries.len() as u64 * 12
    }
}

/// Tuning knobs of the tree.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Memtable flush threshold in bytes.
    pub memtable_budget_bytes: usize,
    /// Compact when the number of runs exceeds this.
    pub max_runs: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_budget_bytes: 4 * 1024 * 1024,
            max_runs: 8,
        }
    }
}

/// The LSM tree.
#[derive(Debug)]
pub struct LsmTree {
    config: LsmConfig,
    memtable: BTreeMap<Key, Slot>,
    memtable_bytes: usize,
    /// Immutable runs, newest last.
    runs: Vec<Run>,
    live_count: usize,
    /// Counters exposed for tests and ablations.
    flushes: u64,
    compactions: u64,
}

impl Default for LsmTree {
    fn default() -> Self {
        Self::new()
    }
}

impl LsmTree {
    /// A tree with default configuration.
    pub fn new() -> Self {
        Self::with_config(LsmConfig::default())
    }

    /// A tree with explicit configuration (tests use tiny budgets to force
    /// flushes and compactions).
    pub fn with_config(config: LsmConfig) -> Self {
        LsmTree {
            config,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            runs: Vec::new(),
            live_count: 0,
            flushes: 0,
            compactions: 0,
        }
    }

    /// Number of immutable runs currently on "disk".
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// How many memtable flushes have happened.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// How many compactions have happened.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Look up the newest slot for `key` across memtable and runs.
    fn newest_slot(&self, key: &Key) -> Option<&Slot> {
        if let Some(slot) = self.memtable.get(key) {
            return Some(slot);
        }
        for run in self.runs.iter().rev() {
            if let Some(slot) = run.get(key) {
                return Some(slot);
            }
        }
        None
    }

    fn write_slot(&mut self, key: Key, slot: Slot) {
        let was_live = matches!(self.newest_slot(&key), Some(Slot::Live(_)));
        let is_live = matches!(slot, Slot::Live(_));
        match (was_live, is_live) {
            (false, true) => self.live_count += 1,
            (true, false) => self.live_count -= 1,
            _ => {}
        }
        let added = key.len() + slot.bytes();
        if let Some(old) = self.memtable.insert(key, slot) {
            self.memtable_bytes = self.memtable_bytes.saturating_sub(old.bytes());
            // The key bytes were already counted for the replaced entry; the
            // simplest consistent accounting removes and re-adds them.
        } else {
            // New memtable entry: nothing to subtract.
        }
        self.memtable_bytes += added;
        if self.memtable_bytes >= self.config.memtable_budget_bytes {
            self.flush();
        }
    }

    /// Freeze the memtable into a run.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        self.runs.push(Run::from_memtable(&self.memtable));
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.flushes += 1;
        if self.runs.len() > self.config.max_runs {
            self.compact();
        }
    }

    /// Merge all runs into one, dropping shadowed versions and tombstones.
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        let mut merged: BTreeMap<Key, Slot> = BTreeMap::new();
        // Oldest first so newer runs overwrite.
        for run in &self.runs {
            for (k, s) in &run.entries {
                merged.insert(k.clone(), s.clone());
            }
        }
        // Drop tombstones entirely: after a full merge nothing older remains.
        merged.retain(|_, s| matches!(s, Slot::Live(_)));
        self.runs = vec![Run {
            entries: merged.into_iter().collect(),
        }];
        self.compactions += 1;
    }
}

impl StorageFootprint for LsmTree {
    fn footprint(&self) -> StorageBreakdown {
        let memtable_payload: u64 = self
            .memtable
            .iter()
            .map(|(k, s)| (k.len() + s.bytes()) as u64)
            .sum();
        let run_payload: u64 = self.runs.iter().map(Run::bytes).sum();
        let run_index: u64 = self.runs.iter().map(Run::index_bytes).sum();
        // Memtable skiplist/tree node overhead ≈ 32 B per entry.
        let memtable_index = self.memtable.len() as u64 * 32;
        StorageBreakdown {
            payload_bytes: memtable_payload + run_payload,
            index_bytes: memtable_index + run_index,
            history_bytes: 0,
        }
    }
}

impl KvEngine for LsmTree {
    fn put(&mut self, key: Key, value: Value) {
        self.write_slot(key, Slot::Live(value));
    }

    fn get(&self, key: &Key) -> Option<Value> {
        match self.newest_slot(key) {
            Some(Slot::Live(v)) => Some(v.clone()),
            _ => None,
        }
    }

    fn delete(&mut self, key: &Key) -> bool {
        let was_live = matches!(self.newest_slot(key), Some(Slot::Live(_)));
        if was_live {
            self.write_slot(key.clone(), Slot::Tombstone);
        }
        was_live
    }

    fn len(&self) -> usize {
        self.live_count
    }

    fn scan(&self, start: &Key, end: &Key) -> Vec<(Key, Value)> {
        // Merge memtable and runs, newest version wins.
        let mut merged: BTreeMap<Key, Slot> = BTreeMap::new();
        for run in &self.runs {
            for (k, s) in &run.entries {
                if k >= start && k < end {
                    merged.insert(k.clone(), s.clone());
                }
            }
        }
        for (k, s) in self.memtable.range(start.clone()..end.clone()) {
            merged.insert(k.clone(), s.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, s)| match s {
                Slot::Live(v) => Some((k, v)),
                Slot::Tombstone => None,
            })
            .collect()
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Lsm
    }

    fn read_amplification(&self, key: &Key) -> usize {
        // Probe memtable, then runs newest→oldest until found.
        let mut probes = 1;
        if self.memtable.contains_key(key) {
            return probes;
        }
        for run in self.runs.iter().rev() {
            probes += 1;
            if run.get(key).is_some() {
                return probes;
            }
        }
        probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::conformance;

    fn tiny() -> LsmTree {
        LsmTree::with_config(LsmConfig {
            memtable_budget_bytes: 256,
            max_runs: 3,
        })
    }

    #[test]
    fn conformance_basic() {
        conformance::check_basic(&mut LsmTree::new());
    }

    #[test]
    fn conformance_basic_with_tiny_memtable() {
        conformance::check_basic(&mut tiny());
    }

    #[test]
    fn flush_happens_when_budget_exceeded() {
        let mut t = tiny();
        for i in 0..20 {
            t.put(Key::from_str(&format!("k{i:03}")), Value::filler(32));
        }
        assert!(t.flushes() > 0, "expected at least one flush");
        assert!(t.run_count() >= 1);
        // All keys still readable after flushes.
        for i in 0..20 {
            assert!(t.get(&Key::from_str(&format!("k{i:03}"))).is_some());
        }
    }

    #[test]
    fn compaction_caps_run_count_and_reclaims_space() {
        let mut t = tiny();
        // Write the same small key set repeatedly to create shadowed versions.
        for round in 0..30 {
            for i in 0..8 {
                t.put(
                    Key::from_str(&format!("k{i}")),
                    Value::filler(32 + (round % 3)),
                );
            }
        }
        t.flush();
        assert!(t.compactions() > 0);
        assert!(t.run_count() <= 3 + 1);
        assert_eq!(t.len(), 8);
        // After an explicit full compaction only the live versions remain.
        t.compact();
        let fp = t.footprint();
        let live_payload: u64 = (0..8)
            .map(|i| {
                (format!("k{i}").len() + t.get(&Key::from_str(&format!("k{i}"))).unwrap().len())
                    as u64
            })
            .sum();
        assert_eq!(fp.payload_bytes, live_payload);
    }

    #[test]
    fn tombstones_survive_flush_and_die_in_compaction() {
        let mut t = tiny();
        t.put(Key::from_str("gone"), Value::filler(16));
        t.flush();
        assert!(t.delete(&Key::from_str("gone")));
        t.flush();
        // Before compaction the old version and the tombstone both exist.
        assert_eq!(t.get(&Key::from_str("gone")), None);
        assert_eq!(t.len(), 0);
        t.compact();
        assert_eq!(t.get(&Key::from_str("gone")), None);
        assert_eq!(t.footprint().payload_bytes, 0);
    }

    #[test]
    fn read_amplification_grows_with_runs() {
        let mut t = tiny();
        t.put(Key::from_str("old"), Value::filler(200));
        t.flush();
        t.put(Key::from_str("newer"), Value::filler(200));
        t.flush();
        // "old" now requires probing memtable + newest run + older run.
        assert!(t.read_amplification(&Key::from_str("old")) >= 3);
        // A missing key probes everything.
        assert!(t.read_amplification(&Key::from_str("missing")) >= 3);
    }

    #[test]
    fn delete_of_missing_key_is_a_noop() {
        let mut t = LsmTree::new();
        assert!(!t.delete(&Key::from_str("nothing")));
        assert_eq!(t.len(), 0);
        assert_eq!(t.footprint().total(), 0);
    }

    #[test]
    fn scan_merges_memtable_over_runs() {
        let mut t = tiny();
        t.put(Key::from_str("a"), Value::filler(4));
        t.put(Key::from_str("b"), Value::filler(4));
        t.flush();
        t.put(Key::from_str("b"), Value::filler(8)); // newer version in memtable
        t.put(Key::from_str("c"), Value::filler(4));
        let out = t.scan(&Key::from_str("a"), &Key::from_str("z"));
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].1.len(), 8, "memtable version must win");
    }
}
