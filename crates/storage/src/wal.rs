//! A write-ahead log.
//!
//! Section 3.3.1 of the paper contrasts the database storage model — current
//! state plus a WAL that exists only for recovery and is periodically pruned
//! — with the blockchain ledger that keeps all history forever. This module
//! is the database half: an append-only sequence of records with checksums,
//! replay, and truncation (checkpointing), whose footprint counts as
//! `history_bytes`.

use dichotomy_common::codec::Encode;
use dichotomy_common::hash::Hash;
use dichotomy_common::size::{encoded_bytes, StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, Value};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A write of `key` to `value`.
    Put { key: Key, value: Value },
    /// A deletion of `key`.
    Delete { key: Key },
    /// A commit marker for a transaction (sequence number).
    Commit { txn_seq: u64 },
}

/// The on-disk format of a record: a tag byte plus the canonical encoding of
/// the fields. This is what the footprint accounting charges for.
impl Encode for WalRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Put { key, value } => {
                out.push(0);
                key.encode_into(out);
                value.encode_into(out);
            }
            WalRecord::Delete { key } => {
                out.push(1);
                key.encode_into(out);
            }
            WalRecord::Commit { txn_seq } => {
                out.push(2);
                txn_seq.encode_into(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            WalRecord::Put { key, value } => key.encoded_len() + value.encoded_len(),
            WalRecord::Delete { key } => key.encoded_len(),
            WalRecord::Commit { .. } => 8,
        }
    }
}

impl WalRecord {
    fn checksum(&self) -> Hash {
        match self {
            WalRecord::Put { key, value } => {
                Hash::of_parts(&[b"put", key.as_bytes(), value.as_bytes()])
            }
            WalRecord::Delete { key } => Hash::of_parts(&[b"del", key.as_bytes()]),
            WalRecord::Commit { txn_seq } => Hash::of_parts(&[b"commit", &txn_seq.to_be_bytes()]),
        }
    }
}

/// An entry as stored: record + checksum + log sequence number.
#[derive(Debug, Clone)]
struct WalEntry {
    lsn: u64,
    record: WalRecord,
    checksum: Hash,
}

/// The write-ahead log.
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    entries: Vec<WalEntry>,
    next_lsn: u64,
    /// LSN below which entries have been checkpointed away.
    truncated_below: u64,
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Append a record, returning its log sequence number.
    pub fn append(&mut self, record: WalRecord) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let checksum = record.checksum();
        self.entries.push(WalEntry {
            lsn,
            record,
            checksum,
        });
        lsn
    }

    /// Next LSN to be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Number of retained (non-truncated) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the retained log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replay retained records in order, verifying checksums. Corrupt entries
    /// stop the replay (as a real recovery would).
    pub fn replay(&self) -> Vec<&WalRecord> {
        let mut out = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            if e.record.checksum() != e.checksum {
                break;
            }
            out.push(&e.record);
        }
        out
    }

    /// Drop every entry with `lsn < up_to` (checkpoint), reclaiming history
    /// space the way the paper notes WALs are "periodically pruned".
    pub fn truncate(&mut self, up_to: u64) {
        self.entries.retain(|e| e.lsn >= up_to);
        self.truncated_below = self.truncated_below.max(up_to);
    }

    /// LSN below which entries were truncated.
    pub fn truncated_below(&self) -> u64 {
        self.truncated_below
    }

    /// Corrupt the checksum of the entry holding `lsn` (test hook for the
    /// recovery path).
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self, lsn: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.lsn == lsn) {
            e.checksum = Hash::ZERO;
        }
    }
}

impl StorageFootprint for WriteAheadLog {
    fn footprint(&self) -> StorageBreakdown {
        // Per entry: the encoded record plus a 32-byte checksum and an
        // 8-byte LSN.
        let history = encoded_bytes(self.entries.iter().map(|e| &e.record))
            + self.entries.len() as u64 * (32 + 8);
        StorageBreakdown {
            payload_bytes: 0,
            index_bytes: 0,
            history_bytes: history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(k: &str, n: usize) -> WalRecord {
        WalRecord::Put {
            key: Key::from_str(k),
            value: Value::filler(n),
        }
    }

    #[test]
    fn append_assigns_monotonic_lsns() {
        let mut wal = WriteAheadLog::new();
        assert_eq!(wal.append(put("a", 4)), 0);
        assert_eq!(wal.append(put("b", 4)), 1);
        assert_eq!(wal.append(WalRecord::Commit { txn_seq: 1 }), 2);
        assert_eq!(wal.next_lsn(), 3);
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn replay_returns_records_in_order() {
        let mut wal = WriteAheadLog::new();
        wal.append(put("a", 1));
        wal.append(WalRecord::Delete {
            key: Key::from_str("a"),
        });
        wal.append(WalRecord::Commit { txn_seq: 9 });
        let replayed = wal.replay();
        assert_eq!(replayed.len(), 3);
        assert!(matches!(replayed[0], WalRecord::Put { .. }));
        assert!(matches!(replayed[1], WalRecord::Delete { .. }));
        assert!(matches!(replayed[2], WalRecord::Commit { txn_seq: 9 }));
    }

    #[test]
    fn corruption_stops_replay() {
        let mut wal = WriteAheadLog::new();
        wal.append(put("a", 1));
        let bad = wal.append(put("b", 1));
        wal.append(put("c", 1));
        wal.corrupt_for_test(bad);
        assert_eq!(wal.replay().len(), 1);
    }

    #[test]
    fn truncation_prunes_history_bytes() {
        let mut wal = WriteAheadLog::new();
        for i in 0..10 {
            wal.append(put(&format!("k{i}"), 100));
        }
        let before = wal.footprint().history_bytes;
        wal.truncate(5);
        let after = wal.footprint().history_bytes;
        assert_eq!(wal.len(), 5);
        assert!(after < before);
        assert_eq!(wal.truncated_below(), 5);
        // Replay only sees retained entries.
        assert_eq!(wal.replay().len(), 5);
    }

    #[test]
    fn footprint_is_pure_history() {
        let mut wal = WriteAheadLog::new();
        wal.append(put("k", 50));
        let fp = wal.footprint();
        assert_eq!(fp.payload_bytes, 0);
        assert_eq!(fp.index_bytes, 0);
        // The history charge is the canonical encoding plus the 40-byte
        // checksum + LSN overhead.
        assert_eq!(fp.history_bytes, put("k", 50).encoded_len() as u64 + 40);
    }
}
