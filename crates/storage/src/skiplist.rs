//! A probabilistic skip list, the in-memory index Redis uses and therefore
//! the storage engine under the Veritas hybrid (Table 2), also the classic
//! memtable structure inside LevelDB.
//!
//! Towers are built with the usual p = 1/4 coin; the maximum height is capped
//! so footprint accounting stays bounded. Lookup walks from the top list
//! down, which gives the expected `O(log n)` probes that
//! [`read_amplification`](crate::engine::KvEngine::read_amplification)
//! reports.

use dichotomy_common::rng::{self, Rng, StdRng};
use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, Value};

use crate::engine::{EngineKind, KvEngine};

const MAX_LEVEL: usize = 16;
/// Probability numerator of promoting a node one level (1/4).
const P_NUM: u32 = 1;
const P_DEN: u32 = 4;

#[derive(Debug)]
struct SkipNode {
    key: Key,
    value: Value,
    /// `forward[l]` = index of the next node at level `l`, or usize::MAX.
    forward: Vec<usize>,
}

const NIL: usize = usize::MAX;

/// The skip list.
#[derive(Debug)]
pub struct SkipList {
    /// Arena of nodes; index 0 is the head sentinel.
    nodes: Vec<SkipNode>,
    level: usize,
    len: usize,
    rng: StdRng,
}

impl SkipList {
    /// An empty list whose tower heights are drawn from a seeded RNG.
    pub fn new(seed: u64) -> Self {
        SkipList {
            nodes: vec![SkipNode {
                key: Key::new(Vec::new()),
                value: Value::new(Vec::new()),
                forward: vec![NIL; MAX_LEVEL],
            }],
            level: 1,
            len: 0,
            rng: rng::seeded(rng::derive_seed(seed, "skiplist")),
        }
    }

    /// Current number of levels in use.
    pub fn levels(&self) -> usize {
        self.level
    }

    fn random_level(&mut self) -> usize {
        let mut lvl = 1;
        while lvl < MAX_LEVEL && self.rng.gen_ratio(P_NUM, P_DEN) {
            lvl += 1;
        }
        lvl
    }

    /// For each level, the index of the last node whose key is `< key`.
    fn find_predecessors(&self, key: &Key) -> ([usize; MAX_LEVEL], usize) {
        let mut update = [0usize; MAX_LEVEL];
        let mut x = 0usize;
        for l in (0..self.level).rev() {
            loop {
                let next = self.nodes[x].forward[l];
                if next != NIL && self.nodes[next].key < *key {
                    x = next;
                } else {
                    break;
                }
            }
            update[l] = x;
        }
        let candidate = self.nodes[x].forward[0];
        (update, candidate)
    }
}

impl StorageFootprint for SkipList {
    fn footprint(&self) -> StorageBreakdown {
        let mut payload = 0u64;
        let mut index = 0u64;
        for node in self.nodes.iter().skip(1) {
            payload += (node.key.len() + node.value.len()) as u64;
            // Each forward pointer is 8 bytes.
            index += node.forward.len() as u64 * 8;
        }
        index += MAX_LEVEL as u64 * 8; // head sentinel
        StorageBreakdown {
            payload_bytes: payload,
            index_bytes: index,
            history_bytes: 0,
        }
    }
}

impl KvEngine for SkipList {
    fn put(&mut self, key: Key, value: Value) {
        let (update, candidate) = self.find_predecessors(&key);
        if candidate != NIL && self.nodes[candidate].key == key {
            self.nodes[candidate].value = value;
            return;
        }
        let lvl = self.random_level();
        if lvl > self.level {
            self.level = lvl;
        }
        let new_idx = self.nodes.len();
        let mut forward = vec![NIL; lvl];
        #[allow(clippy::needless_range_loop)]
        for l in 0..lvl {
            let pred = if update[l] == 0 && l >= self.level {
                0
            } else {
                update[l]
            };
            forward[l] = self.nodes[pred].forward[l];
            self.nodes[pred].forward[l] = new_idx;
        }
        self.nodes.push(SkipNode {
            key,
            value,
            forward,
        });
        self.len += 1;
    }

    fn get(&self, key: &Key) -> Option<Value> {
        let (_, candidate) = self.find_predecessors(key);
        if candidate != NIL && self.nodes[candidate].key == *key {
            Some(self.nodes[candidate].value.clone())
        } else {
            None
        }
    }

    fn delete(&mut self, key: &Key) -> bool {
        let (update, candidate) = self.find_predecessors(key);
        if candidate == NIL || self.nodes[candidate].key != *key {
            return false;
        }
        for (l, &pred) in update.iter().enumerate().take(self.level) {
            if self.nodes[pred].forward.get(l) == Some(&candidate) {
                self.nodes[pred].forward[l] =
                    self.nodes[candidate].forward.get(l).copied().unwrap_or(NIL);
            }
        }
        // The node stays in the arena (like a freed Redis node awaiting
        // reclamation) but is unreachable; exclude it from the live count.
        self.nodes[candidate].forward.clear();
        self.nodes[candidate].value = Value::new(Vec::new());
        self.nodes[candidate].key = Key::new(Vec::new());
        self.len -= 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn scan(&self, start: &Key, end: &Key) -> Vec<(Key, Value)> {
        let (_, mut x) = self.find_predecessors(start);
        let mut out = Vec::new();
        while x != NIL {
            let node = &self.nodes[x];
            if node.key >= *end {
                break;
            }
            out.push((node.key.clone(), node.value.clone()));
            x = node.forward.first().copied().unwrap_or(NIL);
        }
        out
    }

    fn kind(&self) -> EngineKind {
        EngineKind::SkipList
    }

    fn read_amplification(&self, _key: &Key) -> usize {
        // Expected probes ≈ levels in use.
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::conformance;

    #[test]
    fn conformance_basic() {
        conformance::check_basic(&mut SkipList::new(7));
    }

    #[test]
    fn many_inserts_stay_sorted_and_reachable() {
        let mut s = SkipList::new(3);
        let n = 3000;
        for i in (0..n).rev() {
            s.put(Key::from_str(&format!("k{i:06}")), Value::filler(8));
        }
        assert_eq!(s.len(), n);
        assert!(s.levels() > 3, "levels {}", s.levels());
        let all = s.scan(&Key::from_str("k000000"), &Key::from_str("k999999"));
        assert_eq!(all.len(), n);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn deleted_keys_disappear_from_scans() {
        let mut s = SkipList::new(5);
        for i in 0..100 {
            s.put(Key::from_str(&format!("k{i:03}")), Value::filler(4));
        }
        for i in (0..100).step_by(3) {
            assert!(s.delete(&Key::from_str(&format!("k{i:03}"))));
        }
        let all = s.scan(&Key::from_str("k000"), &Key::from_str("k999"));
        assert_eq!(all.len(), s.len());
        assert!(all.iter().all(|(k, _)| {
            let i: usize = k.to_string()[1..].parse().unwrap();
            i % 3 != 0
        }));
    }

    #[test]
    fn footprint_counts_pointer_overhead() {
        let mut s = SkipList::new(1);
        for i in 0..500 {
            s.put(Key::from_str(&format!("k{i:04}")), Value::filler(10));
        }
        let fp = s.footprint();
        assert_eq!(fp.payload_bytes, 500 * (5 + 10));
        // At least one 8-byte pointer per node.
        assert!(fp.index_bytes >= 500 * 8);
    }

    #[test]
    fn overwrite_keeps_single_copy() {
        let mut s = SkipList::new(2);
        for _ in 0..50 {
            s.put(Key::from_str("dup"), Value::filler(10));
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.scan(&Key::from_str("a"), &Key::from_str("z")).len(), 1);
    }

    #[test]
    fn determinism_under_same_seed() {
        let build = |seed| {
            let mut s = SkipList::new(seed);
            for i in 0..200 {
                s.put(Key::from_str(&format!("k{i}")), Value::filler(4));
            }
            s.levels()
        };
        assert_eq!(build(11), build(11));
    }
}
