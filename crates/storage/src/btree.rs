//! A B+ tree modelled after BoltDB (etcd's storage engine).
//!
//! Keys live in the leaves, which are chained for range scans; interior nodes
//! hold separator keys. Nodes split at a fixed fan-out. Deletion removes the
//! entry from its leaf without rebalancing (BoltDB similarly leaves pages
//! under-full until a rewrite), which keeps the structure simple while
//! preserving ordering, lookup and footprint behaviour.

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, Value};

use crate::engine::{EngineKind, KvEngine};

/// Maximum number of entries in a leaf / children in an interior node before
/// it splits. BoltDB pages hold on the order of tens of small entries.
const FANOUT: usize = 32;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Key, Value)>,
    },
    Interior {
        /// `separators[i]` is the smallest key reachable under `children[i+1]`.
        separators: Vec<Key>,
        children: Vec<usize>,
    },
}

/// The B+ tree. Nodes are stored in an arena (`Vec<Node>`) the way pages live
/// in a page file; `root` indexes into it.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// An empty tree.
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
            }],
            root: 0,
            len: 0,
        }
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return h,
                Node::Interior { children, .. } => {
                    idx = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Walk from the root to the leaf responsible for `key`, returning the
    /// path of node indices (root first, leaf last).
    fn path_to_leaf(&self, key: &Key) -> Vec<usize> {
        let mut path = vec![self.root];
        loop {
            let idx = *path.last().expect("path never empty");
            match &self.nodes[idx] {
                Node::Leaf { .. } => return path,
                Node::Interior {
                    separators,
                    children,
                } => {
                    // First child whose separator exceeds the key.
                    let pos = separators.partition_point(|s| s <= key);
                    path.push(children[pos]);
                }
            }
        }
    }

    /// Split the node at `path.last()` if it is over-full, propagating splits
    /// upwards and growing a new root when necessary.
    fn split_if_needed(&mut self, mut path: Vec<usize>) {
        while let Some(idx) = path.pop() {
            let (split_key, new_node) = match &mut self.nodes[idx] {
                Node::Leaf { entries } if entries.len() > FANOUT => {
                    let right = entries.split_off(entries.len() / 2);
                    let split_key = right[0].0.clone();
                    (split_key, Node::Leaf { entries: right })
                }
                Node::Interior {
                    separators,
                    children,
                } if children.len() > FANOUT => {
                    let mid = separators.len() / 2;
                    let right_seps = separators.split_off(mid + 1);
                    let split_key = separators.pop().expect("mid < len");
                    let right_children = children.split_off(mid + 1);
                    (
                        split_key,
                        Node::Interior {
                            separators: right_seps,
                            children: right_children,
                        },
                    )
                }
                _ => continue,
            };
            let new_idx = self.nodes.len();
            self.nodes.push(new_node);
            if let Some(&parent_idx) = path.last() {
                if let Node::Interior {
                    separators,
                    children,
                } = &mut self.nodes[parent_idx]
                {
                    let pos = separators.partition_point(|s| *s <= split_key);
                    separators.insert(pos, split_key);
                    children.insert(pos + 1, new_idx);
                } else {
                    unreachable!("parent of a split node must be interior");
                }
            } else {
                // The root itself split: grow the tree by one level.
                let new_root = Node::Interior {
                    separators: vec![split_key],
                    children: vec![idx, new_idx],
                };
                self.nodes.push(new_root);
                self.root = self.nodes.len() - 1;
            }
        }
    }

    /// In-order iterator over all live entries.
    fn collect_in_order(&self, idx: usize, out: &mut Vec<(Key, Value)>) {
        match &self.nodes[idx] {
            Node::Leaf { entries } => out.extend(entries.iter().cloned()),
            Node::Interior { children, .. } => {
                for &c in children {
                    self.collect_in_order(c, out);
                }
            }
        }
    }
}

impl StorageFootprint for BPlusTree {
    fn footprint(&self) -> StorageBreakdown {
        let mut payload = 0u64;
        let mut index = 0u64;
        for node in &self.nodes {
            match node {
                Node::Leaf { entries } => {
                    payload += entries
                        .iter()
                        .map(|(k, v)| (k.len() + v.len()) as u64)
                        .sum::<u64>();
                    // Per-entry leaf slot header (BoltDB leafPageElement = 16 B).
                    index += entries.len() as u64 * 16 + 16;
                }
                Node::Interior {
                    separators,
                    children,
                } => {
                    index += separators.iter().map(|s| s.len() as u64).sum::<u64>()
                        + children.len() as u64 * 8
                        + 16;
                }
            }
        }
        StorageBreakdown {
            payload_bytes: payload,
            index_bytes: index,
            history_bytes: 0,
        }
    }
}

impl KvEngine for BPlusTree {
    fn put(&mut self, key: Key, value: Value) {
        let path = self.path_to_leaf(&key);
        let leaf_idx = *path.last().expect("path never empty");
        if let Node::Leaf { entries } = &mut self.nodes[leaf_idx] {
            match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => entries[i].1 = value,
                Err(i) => {
                    entries.insert(i, (key, value));
                    self.len += 1;
                }
            }
        } else {
            unreachable!("path_to_leaf must end at a leaf");
        }
        self.split_if_needed(path);
    }

    fn get(&self, key: &Key) -> Option<Value> {
        let path = self.path_to_leaf(key);
        let leaf_idx = *path.last()?;
        if let Node::Leaf { entries } = &self.nodes[leaf_idx] {
            entries
                .binary_search_by(|(k, _)| k.cmp(key))
                .ok()
                .map(|i| entries[i].1.clone())
        } else {
            None
        }
    }

    fn delete(&mut self, key: &Key) -> bool {
        let path = self.path_to_leaf(key);
        let leaf_idx = *path.last().expect("path never empty");
        if let Node::Leaf { entries } = &mut self.nodes[leaf_idx] {
            if let Ok(i) = entries.binary_search_by(|(k, _)| k.cmp(key)) {
                entries.remove(i);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    fn len(&self) -> usize {
        self.len
    }

    fn scan(&self, start: &Key, end: &Key) -> Vec<(Key, Value)> {
        // A full in-order walk filtered to the range keeps the code simple;
        // the simulator charges scan cost through the cost model, not here.
        let mut all = Vec::new();
        self.collect_in_order(self.root, &mut all);
        all.into_iter()
            .filter(|(k, _)| k >= start && k < end)
            .collect()
    }

    fn kind(&self) -> EngineKind {
        EngineKind::BPlusTree
    }

    fn read_amplification(&self, _key: &Key) -> usize {
        self.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::conformance;

    #[test]
    fn conformance_basic() {
        conformance::check_basic(&mut BPlusTree::new());
    }

    #[test]
    fn splits_keep_all_keys_reachable() {
        let mut t = BPlusTree::new();
        let n = 2000;
        for i in 0..n {
            t.put(Key::from_str(&format!("user{i:06}")), Value::filler(16));
        }
        assert_eq!(t.len(), n);
        assert!(t.height() >= 3, "height {}", t.height());
        for i in 0..n {
            assert!(
                t.get(&Key::from_str(&format!("user{i:06}"))).is_some(),
                "missing key {i}"
            );
        }
    }

    #[test]
    fn reverse_and_random_insert_orders_work() {
        for seed in [1u64, 2, 3] {
            use dichotomy_common::rng::SliceRandom;
            let mut order: Vec<u32> = (0..500).collect();
            let mut rng = dichotomy_common::rng::seeded(seed);
            order.shuffle(&mut rng);
            let mut t = BPlusTree::new();
            for &i in &order {
                t.put(Key::from_str(&format!("k{i:05}")), Value::filler(8));
            }
            let scanned = t.scan(&Key::from_str("k00000"), &Key::from_str("k99999"));
            assert_eq!(scanned.len(), 500);
            // Scan output must be sorted.
            assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn overwrite_does_not_duplicate() {
        let mut t = BPlusTree::new();
        for _ in 0..100 {
            t.put(Key::from_str("same"), Value::filler(10));
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn read_amplification_equals_height() {
        let mut t = BPlusTree::new();
        for i in 0..5000 {
            t.put(Key::from_str(&format!("k{i:06}")), Value::filler(4));
        }
        assert_eq!(t.read_amplification(&Key::from_str("k000000")), t.height());
        assert!(t.height() >= 3);
    }

    #[test]
    fn footprint_separates_payload_and_index() {
        let mut t = BPlusTree::new();
        for i in 0..200 {
            t.put(Key::from_str(&format!("k{i:04}")), Value::filler(100));
        }
        let fp = t.footprint();
        assert_eq!(fp.payload_bytes, 200 * (5 + 100) as u64);
        assert!(fp.index_bytes > 0);
        assert_eq!(fp.history_bytes, 0);
    }

    #[test]
    fn delete_across_splits() {
        let mut t = BPlusTree::new();
        for i in 0..300 {
            t.put(Key::from_str(&format!("k{i:04}")), Value::filler(8));
        }
        for i in (0..300).step_by(2) {
            assert!(t.delete(&Key::from_str(&format!("k{i:04}"))));
        }
        assert_eq!(t.len(), 150);
        for i in 0..300 {
            let present = t.get(&Key::from_str(&format!("k{i:04}"))).is_some();
            assert_eq!(present, i % 2 == 1, "key {i}");
        }
    }
}
