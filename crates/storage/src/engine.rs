//! The common key-value engine interface.

use dichotomy_common::size::StorageFootprint;
use dichotomy_common::{Key, Value};

/// Which concrete engine a system uses; mirrors the "Index (Storage Engine)"
/// column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// LSM tree (LevelDB / RocksDB / TiKV).
    Lsm,
    /// B+ tree (BoltDB / MySQL / PostgreSQL / MongoDB).
    BPlusTree,
    /// Skip list (Redis).
    SkipList,
}

impl EngineKind {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Lsm => "LSM tree",
            EngineKind::BPlusTree => "B+ tree",
            EngineKind::SkipList => "skip list",
        }
    }
}

/// A mutable key-value storage engine.
///
/// `scan` returns live key/value pairs in ascending key order within
/// `[start, end)`; engines that keep tombstones must filter them out.
pub trait KvEngine: StorageFootprint {
    /// Insert or overwrite `key` with `value`.
    fn put(&mut self, key: Key, value: Value);

    /// Read the current value of `key`, if any.
    fn get(&self, key: &Key) -> Option<Value>;

    /// Delete `key`. Returns `true` if the key was live before the call.
    fn delete(&mut self, key: &Key) -> bool;

    /// Number of live records.
    fn len(&self) -> usize;

    /// Whether the engine holds no live records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ordered range scan over live records in `[start, end)`.
    fn scan(&self, start: &Key, end: &Key) -> Vec<(Key, Value)>;

    /// Which kind of engine this is.
    fn kind(&self) -> EngineKind;

    /// Structural depth/levels touched by a point read of `key`: LSM = number
    /// of runs probed, B+ tree = tree height, skip list = expected tower
    /// height. Systems multiply this by the cost model's per-probe constants.
    fn read_amplification(&self, key: &Key) -> usize;
}

/// Construct a boxed engine of the requested kind with default parameters.
pub fn new_engine(kind: EngineKind) -> Box<dyn KvEngine> {
    match kind {
        EngineKind::Lsm => Box::new(crate::lsm::LsmTree::new()),
        EngineKind::BPlusTree => Box::new(crate::btree::BPlusTree::new()),
        EngineKind::SkipList => Box::new(crate::skiplist::SkipList::new(0)),
    }
}

/// Shared conformance test suite run against every engine (used by each
/// engine's test module and the crate's property tests).
#[cfg(test)]
pub mod conformance {
    use super::*;

    /// Basic put/get/delete/scan behaviour every engine must satisfy.
    pub fn check_basic(engine: &mut dyn KvEngine) {
        assert!(engine.is_empty());
        let k = |s: &str| Key::from_str(s);
        let v = |s: &str| Value::new(s.as_bytes().to_vec());

        engine.put(k("b"), v("2"));
        engine.put(k("a"), v("1"));
        engine.put(k("c"), v("3"));
        assert_eq!(engine.len(), 3);
        assert_eq!(engine.get(&k("a")), Some(v("1")));
        assert_eq!(engine.get(&k("zz")), None);

        // Overwrite does not grow the live count.
        engine.put(k("a"), v("1x"));
        assert_eq!(engine.len(), 3);
        assert_eq!(engine.get(&k("a")), Some(v("1x")));

        // Ordered scan, half-open interval.
        let scanned = engine.scan(&k("a"), &k("c"));
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].0, k("a"));
        assert_eq!(scanned[1].0, k("b"));

        // Delete.
        assert!(engine.delete(&k("b")));
        assert!(!engine.delete(&k("b")));
        assert_eq!(engine.get(&k("b")), None);
        assert_eq!(engine.len(), 2);

        // Footprint accounts at least for the live payload.
        let fp = engine.footprint();
        assert!(fp.total() >= ("a".len() + "1x".len() + "c".len() + "3".len()) as u64);

        // Read amplification is at least one probe.
        assert!(engine.read_amplification(&k("a")) >= 1);
    }

    /// Engines must agree with a reference BTreeMap under a random workload.
    pub fn check_against_reference(engine: &mut dyn KvEngine, ops: &[(u8, u16, u16)]) {
        use std::collections::BTreeMap;
        let mut reference: BTreeMap<Key, Value> = BTreeMap::new();
        for &(op, kn, vn) in ops {
            let key = Key::from_str(&format!("key{:05}", kn % 200));
            match op % 3 {
                0 | 1 => {
                    let value = Value::filler((vn % 64) as usize + 1);
                    reference.insert(key.clone(), value.clone());
                    engine.put(key, value);
                }
                _ => {
                    let expected = reference.remove(&key).is_some();
                    assert_eq!(engine.delete(&key), expected);
                }
            }
        }
        assert_eq!(engine.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(engine.get(k).as_ref(), Some(v), "key {k}");
        }
        // Full scan agrees.
        let lo = Key::from_str("key00000");
        let hi = Key::from_str("key99999");
        let scanned = engine.scan(&lo, &hi);
        let expected: Vec<(Key, Value)> = reference
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(scanned, expected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_names() {
        assert_eq!(EngineKind::Lsm.name(), "LSM tree");
        assert_eq!(EngineKind::BPlusTree.name(), "B+ tree");
        assert_eq!(EngineKind::SkipList.name(), "skip list");
    }

    #[test]
    fn factory_builds_each_kind() {
        for kind in [EngineKind::Lsm, EngineKind::BPlusTree, EngineKind::SkipList] {
            let mut e = new_engine(kind);
            assert_eq!(e.kind(), kind);
            conformance::check_basic(e.as_mut());
        }
    }
}
