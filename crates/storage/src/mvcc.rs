//! A multi-version key-value store.
//!
//! Every concurrency-control scheme in `dichotomy-txn` needs versioned
//! state: Fabric's optimistic validation compares the version a transaction
//! read against the currently committed version; TiDB/Percolator reads at a
//! snapshot timestamp; Spanner-style locking also reads snapshots. The MVCC
//! store keeps, per key, the list of committed versions (a commit version
//! number plus the value or a deletion marker), supports reads "as of" a
//! version, and can garbage-collect versions older than a watermark.

use std::collections::BTreeMap;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, Value, Version};

/// One committed version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The commit version (monotonically increasing store-wide).
    pub version: Version,
    /// The value, or `None` for a deletion.
    pub value: Option<Value>,
}

/// The multi-version store.
#[derive(Debug, Default)]
pub struct MvccStore {
    /// Per key: committed versions in ascending version order.
    data: BTreeMap<Key, Vec<VersionedValue>>,
    /// Highest version committed so far.
    latest_version: Version,
}

impl MvccStore {
    /// An empty store at version 0.
    pub fn new() -> Self {
        MvccStore::default()
    }

    /// Highest committed version.
    pub fn latest_version(&self) -> Version {
        self.latest_version
    }

    /// Allocate the next commit version (callers then pass it to
    /// [`commit_write`](Self::commit_write) for each key in the write set).
    pub fn begin_commit(&mut self) -> Version {
        self.latest_version += 1;
        self.latest_version
    }

    /// Record a committed write of `key` at `version`.
    ///
    /// Versions must be appended in non-decreasing order per key; this is
    /// guaranteed when versions come from [`begin_commit`](Self::begin_commit).
    pub fn commit_write(&mut self, key: Key, version: Version, value: Option<Value>) {
        self.latest_version = self.latest_version.max(version);
        let versions = self.data.entry(key).or_default();
        debug_assert!(
            versions.last().map_or(true, |v| v.version <= version),
            "versions must be appended in order"
        );
        versions.push(VersionedValue { version, value });
    }

    /// The latest committed version number of `key`, if the key has ever been
    /// written (deletions still count as versions — Fabric's validation
    /// treats a deleted key's version as its latest write).
    pub fn latest_key_version(&self, key: &Key) -> Option<Version> {
        self.data.get(key).and_then(|v| v.last()).map(|v| v.version)
    }

    /// Read the latest committed value of `key`.
    pub fn get_latest(&self, key: &Key) -> Option<Value> {
        self.data
            .get(key)
            .and_then(|v| v.last())
            .and_then(|v| v.value.clone())
    }

    /// Read the value of `key` as of `snapshot` (the newest version with
    /// `version <= snapshot`).
    pub fn get_at(&self, key: &Key, snapshot: Version) -> Option<Value> {
        let versions = self.data.get(key)?;
        let idx = versions.partition_point(|v| v.version <= snapshot);
        if idx == 0 {
            None
        } else {
            versions[idx - 1].value.clone()
        }
    }

    /// Read the (version, value) pair visible at `snapshot`.
    pub fn read_versioned(&self, key: &Key, snapshot: Version) -> Option<(Version, Option<Value>)> {
        let versions = self.data.get(key)?;
        let idx = versions.partition_point(|v| v.version <= snapshot);
        if idx == 0 {
            None
        } else {
            let v = &versions[idx - 1];
            Some((v.version, v.value.clone()))
        }
    }

    /// Number of keys that have ever been written.
    pub fn key_count(&self) -> usize {
        self.data.len()
    }

    /// Number of live keys (latest version is not a deletion).
    pub fn live_key_count(&self) -> usize {
        self.data
            .values()
            .filter(|v| v.last().is_some_and(|vv| vv.value.is_some()))
            .count()
    }

    /// Total number of stored versions across all keys.
    pub fn version_count(&self) -> usize {
        self.data.values().map(Vec::len).sum()
    }

    /// Drop all versions strictly older than the newest version that is
    /// `<= watermark` for each key (standard MVCC garbage collection: the
    /// snapshot at `watermark` must remain readable).
    pub fn gc(&mut self, watermark: Version) {
        for versions in self.data.values_mut() {
            let keep_from = versions
                .partition_point(|v| v.version <= watermark)
                .saturating_sub(1);
            versions.drain(..keep_from);
        }
        self.data.retain(|_, v| !v.is_empty());
    }
}

impl StorageFootprint for MvccStore {
    fn footprint(&self) -> StorageBreakdown {
        let mut payload = 0u64;
        let mut history = 0u64;
        let mut index = 0u64;
        for (key, versions) in &self.data {
            index += key.len() as u64 + 16;
            for (i, v) in versions.iter().enumerate() {
                let bytes = v.value.as_ref().map_or(1, Value::len) as u64 + 8;
                if i + 1 == versions.len() {
                    payload += bytes;
                } else {
                    history += bytes;
                }
            }
        }
        StorageBreakdown {
            payload_bytes: payload,
            index_bytes: index,
            history_bytes: history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from_str(s)
    }

    #[test]
    fn snapshot_reads_see_only_older_versions() {
        let mut s = MvccStore::new();
        let v1 = s.begin_commit();
        s.commit_write(k("a"), v1, Some(Value::filler(1)));
        let v2 = s.begin_commit();
        s.commit_write(k("a"), v2, Some(Value::filler(2)));

        assert_eq!(s.get_at(&k("a"), v1).unwrap().len(), 1);
        assert_eq!(s.get_at(&k("a"), v2).unwrap().len(), 2);
        assert_eq!(s.get_at(&k("a"), 0), None);
        assert_eq!(s.get_latest(&k("a")).unwrap().len(), 2);
        assert_eq!(s.latest_key_version(&k("a")), Some(v2));
    }

    #[test]
    fn deletions_are_versions() {
        let mut s = MvccStore::new();
        let v1 = s.begin_commit();
        s.commit_write(k("a"), v1, Some(Value::filler(4)));
        let v2 = s.begin_commit();
        s.commit_write(k("a"), v2, None);
        assert_eq!(s.get_latest(&k("a")), None);
        assert_eq!(s.get_at(&k("a"), v1).unwrap().len(), 4);
        assert_eq!(s.latest_key_version(&k("a")), Some(v2));
        assert_eq!(s.live_key_count(), 0);
        assert_eq!(s.key_count(), 1);
    }

    #[test]
    fn read_versioned_returns_the_version_read() {
        let mut s = MvccStore::new();
        let v1 = s.begin_commit();
        s.commit_write(k("x"), v1, Some(Value::filler(8)));
        let (ver, val) = s.read_versioned(&k("x"), v1 + 100).unwrap();
        assert_eq!(ver, v1);
        assert_eq!(val.unwrap().len(), 8);
        assert!(s.read_versioned(&k("missing"), 10).is_none());
    }

    #[test]
    fn gc_keeps_snapshot_at_watermark_readable() {
        let mut s = MvccStore::new();
        for i in 1..=10u64 {
            let v = s.begin_commit();
            s.commit_write(k("hot"), v, Some(Value::filler(i as usize)));
        }
        assert_eq!(s.version_count(), 10);
        s.gc(5);
        // The version visible at 5 must still be readable.
        assert_eq!(s.get_at(&k("hot"), 5).unwrap().len(), 5);
        // Everything older is gone.
        assert!(s.version_count() <= 6);
        // Latest still intact.
        assert_eq!(s.get_latest(&k("hot")).unwrap().len(), 10);
    }

    #[test]
    fn footprint_splits_live_and_history() {
        let mut s = MvccStore::new();
        let v1 = s.begin_commit();
        s.commit_write(k("a"), v1, Some(Value::filler(100)));
        let v2 = s.begin_commit();
        s.commit_write(k("a"), v2, Some(Value::filler(200)));
        let fp = s.footprint();
        assert_eq!(fp.payload_bytes, 200 + 8);
        assert_eq!(fp.history_bytes, 100 + 8);
        assert!(fp.index_bytes > 0);
    }

    #[test]
    fn version_numbers_are_monotone() {
        let mut s = MvccStore::new();
        let a = s.begin_commit();
        let b = s.begin_commit();
        assert!(b > a);
        assert_eq!(s.latest_version(), b);
    }
}
