//! Storage engines for the dichotomy reproduction.
//!
//! The storage dimension of the taxonomy (Section 3.3) contrasts the engines
//! the benchmarked systems sit on: LevelDB/RocksDB-style **LSM trees** under
//! Quorum, Fabric, TiKV and CockroachDB; a BoltDB-style **B+ tree** under
//! etcd; a Redis-style **skip list** under Veritas. This crate implements all
//! three from scratch behind one [`KvEngine`] trait, plus the write-ahead log
//! they share and the **MVCC versioned store** the concurrency-control
//! substrate builds on.
//!
//! All engines are in-memory models of their on-disk counterparts: the byte
//! accounting (`StorageFootprint`) is faithful to the structures' layouts so
//! that Figure 12's storage measurements can be regenerated, while access
//! *cost* is charged by the simulator's [`CostModel`]
//! (`dichotomy_simnet::costs`), not by wall-clock time of this code.

pub mod btree;
pub mod engine;
pub mod lsm;
pub mod mvcc;
pub mod skiplist;
pub mod wal;

pub use btree::BPlusTree;
pub use engine::{EngineKind, KvEngine};
pub use lsm::LsmTree;
pub use mvcc::{MvccStore, VersionedValue};
pub use skiplist::SkipList;
pub use wal::WriteAheadLog;
