//! Differential tests: the timer-wheel [`EventQueue`] must be observationally
//! identical to the reference [`HeapEventQueue`] — same `(time, seq)` pop
//! stream, same clock, same clamp counter — over randomized schedules that
//! mix near-term, far-future, clamped and tied events.

use dichotomy_common::rng::{self, Rng};
use dichotomy_simnet::{EventQueue, HeapEventQueue};

/// Drive both queues through one scripted schedule and assert the pop
/// streams agree event for event. Payloads carry the insertion index, so a
/// mismatch pinpoints the first diverging delivery.
fn differential(seed: u64, ops: usize, horizon: u64) {
    let mut r = rng::seeded(seed);
    let mut wheel: EventQueue<usize> = EventQueue::new();
    let mut heap: HeapEventQueue<usize> = HeapEventQueue::new();
    let mut scheduled = 0usize;

    for step in 0..ops {
        // Mostly schedule; drain in bursts so the queues breathe.
        let burst = r.gen_range(0..10u32);
        if burst < 6 {
            // Bias towards small offsets (ties and near-term events) with an
            // occasional far-future outlier that crosses wheel levels.
            let at = match r.gen_range(0..10u32) {
                0..=5 => wheel.now().saturating_add(r.gen_range(0..50u64)),
                6..=7 => wheel.now().saturating_add(r.gen_range(0..horizon)),
                8 => r.gen_range(0..horizon), // may lie in the past: clamps
                _ => horizon.saturating_add(r.gen_range(0..horizon)),
            };
            wheel.schedule_at(at, scheduled);
            heap.schedule_at(at, scheduled);
            scheduled += 1;
        } else if burst < 8 {
            let delay = r.gen_range(0..horizon);
            wheel.schedule_in(delay, scheduled);
            heap.schedule_in(delay, scheduled);
            scheduled += 1;
        } else {
            for _ in 0..r.gen_range(0..4u32) {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "pop diverged at step {step} (seed {seed})");
            }
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel.now(), heap.now());
        assert_eq!(wheel.peek_time(), heap.peek_time());
        assert_eq!(wheel.clamped(), heap.clamped());
    }
    // Drain both to the end: the full tail must agree too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        assert_eq!(w, h, "tail pop diverged (seed {seed})");
        if w.is_none() {
            break;
        }
    }
    assert_eq!(wheel.delivered(), heap.delivered());
    assert_eq!(wheel.clamped(), heap.clamped());
    assert_eq!(wheel.now(), heap.now());
}

#[test]
fn randomized_schedules_pop_identically_through_wheel_and_heap() {
    for case in 0..20u64 {
        differential(rng::derive_seed(0xD1FF, &format!("case{case}")), 400, 5_000);
    }
}

#[test]
fn dense_tied_timestamps_pop_identically() {
    // A horizon of 8 forces heavy timestamp collisions: the wheel's
    // per-slot seq ordering must reproduce the heap's tie-breaking exactly.
    for case in 0..10u64 {
        differential(rng::derive_seed(0x71E5, &format!("tied{case}")), 300, 8);
    }
}

#[test]
fn far_future_and_rollover_schedules_pop_identically() {
    // Horizons at the top of the u64 range: schedule_in saturates, events
    // land in the wheel's highest level, and cascades cross every level on
    // the way back down.
    for case in 0..10u64 {
        differential(
            rng::derive_seed(0xFA2, &format!("far{case}")),
            200,
            u64::MAX / 2 + 1,
        );
    }
}

#[test]
fn interleaved_advance_to_keeps_queues_in_lockstep() {
    let mut r = rng::seeded(rng::derive_seed(0xADA, "advance"));
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
    for i in 0..500u32 {
        let at = wheel.now() + r.gen_range(1..1_000u64);
        wheel.schedule_at(at, i);
        heap.schedule_at(at, i);
        if r.gen_bool(0.3) {
            // Advance the clock but never past the next pending event (the
            // contract callers uphold; the heap debug-asserts it too).
            let limit = wheel.peek_time().unwrap_or(wheel.now());
            let to = wheel.now() + r.gen_range(0..=limit - wheel.now());
            wheel.advance_to(to);
            heap.advance_to(to);
        }
        if r.gen_bool(0.5) {
            assert_eq!(wheel.pop(), heap.pop());
        }
        assert_eq!(wheel.now(), heap.now());
        assert_eq!(wheel.clamped(), heap.clamped());
    }
    loop {
        let w = wheel.pop();
        assert_eq!(w, heap.pop());
        if w.is_none() {
            break;
        }
    }
}
