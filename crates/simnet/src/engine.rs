//! The discrete-event simulation engine.
//!
//! [`SimEngine`] promotes the bare [`EventQueue`](crate::EventQueue) into the
//! substrate every simulated system runs on: it owns the clock, the event
//! queue, and a set of named [`Process`]es — FIFO service queues built on
//! [`MultiResource`] — that model the serial and multi-server stages of a
//! pipeline (a block validator, a consensus leader, a pool of endorsers).
//!
//! The engine is generic over the event payload `E`; a domain layer picks a
//! concrete event vocabulary (the system models use `SysEvent` from
//! `dichotomy-systems`, the consensus clusters their own message enums) and
//! drives the loop:
//!
//! ```
//! use dichotomy_simnet::engine::SimEngine;
//!
//! let mut engine: SimEngine<&str> = SimEngine::new();
//! let worker = engine.add_process("worker", 1);
//! engine.schedule_at(10, "job");
//! let (now, _job) = engine.pop().unwrap();
//! let (start, finish) = engine.service(worker, now, 25);
//! assert_eq!((start, finish), (10, 35));
//! assert_eq!(engine.now(), 10);
//! ```
//!
//! Determinism: the clock only moves forward, events fire in `(time,
//! insertion seq)` order, and process scheduling is earliest-free-server —
//! nothing consults wall-clock time or an unseeded RNG, so a run is a pure
//! function of its inputs and seed.

use dichotomy_common::Timestamp;

use crate::event::EventQueue;
use crate::resource::MultiResource;

/// Handle to a [`Process`] registered on a [`SimEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize);

/// A named service stage: `k` identical FIFO servers. All queueing and
/// saturation behaviour in the simulation comes from these.
#[derive(Debug, Clone)]
pub struct Process {
    name: &'static str,
    servers: MultiResource,
}

impl Process {
    /// The name the stage was registered under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying multi-server resource (queue-delay and utilization
    /// introspection).
    pub fn servers(&self) -> &MultiResource {
        &self.servers
    }
}

/// A stage event: a pipeline stage firing for some model-private token
/// (a pending-transaction id, a block id, a timer epoch). The engine never
/// interprets either field — systems define their own stage vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEvent {
    /// Which stage fired (model-defined constant).
    pub stage: u32,
    /// Opaque payload token (model-defined meaning).
    pub token: u64,
}

impl StageEvent {
    /// Build a stage event.
    pub fn new(stage: u32, token: u64) -> Self {
        StageEvent { stage, token }
    }
}

/// The simulation engine: one clock, one event queue, many service processes.
#[derive(Debug)]
pub struct SimEngine<E> {
    queue: EventQueue<E>,
    processes: Vec<Process>,
}

impl<E> Default for SimEngine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SimEngine<E> {
    /// An engine at time zero with no processes.
    pub fn new() -> Self {
        SimEngine {
            queue: EventQueue::new(),
            processes: Vec::new(),
        }
    }

    // --- clock and event queue ---------------------------------------------

    /// Current simulated time (µs).
    pub fn now(&self) -> Timestamp {
        self.queue.now()
    }

    /// Schedule `event` at absolute time `at` (clamped to `now()`).
    pub fn schedule_at(&mut self, at: Timestamp, event: E) {
        self.queue.schedule_at(at, event);
    }

    /// Schedule `event` `delay` µs from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.queue.schedule_in(delay, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        self.queue.pop()
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.queue.peek_time()
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.queue.delivered()
    }

    /// Events that were scheduled in the past and clamped to `now()`.
    pub fn clamped(&self) -> u64 {
        self.queue.clamped()
    }

    /// Advance the clock directly (never backwards).
    pub fn advance_to(&mut self, t: Timestamp) {
        self.queue.advance_to(t);
    }

    // --- service processes -------------------------------------------------

    /// Register a service stage with `servers` identical FIFO servers
    /// (clamped to ≥ 1) and return its handle.
    pub fn add_process(&mut self, name: &'static str, servers: usize) -> ProcessId {
        self.processes.push(Process {
            name,
            servers: MultiResource::new(servers),
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Schedule `service_us` of work arriving at `arrival` on process `id`.
    /// Returns `(start, finish)`: the work starts when it has arrived and a
    /// server is free, FIFO per process.
    pub fn service(
        &mut self,
        id: ProcessId,
        arrival: Timestamp,
        service_us: u64,
    ) -> (Timestamp, Timestamp) {
        self.processes[id.0].servers.schedule(arrival, service_us)
    }

    /// Queueing delay work arriving at `arrival` would see on process `id`.
    pub fn queue_delay(&self, id: ProcessId, arrival: Timestamp) -> u64 {
        self.processes[id.0].servers.queue_delay(arrival)
    }

    /// The process behind a handle.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.0]
    }

    /// All registered processes, in registration order.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_clock_follows_popped_events() {
        let mut e: SimEngine<u8> = SimEngine::new();
        e.schedule_at(20, 2);
        e.schedule_at(10, 1);
        e.schedule_in(5, 3); // now == 0, so fires at 5
        let order: Vec<_> = std::iter::from_fn(|| e.pop()).collect();
        assert_eq!(order, vec![(5, 3), (10, 1), (20, 2)]);
        assert_eq!(e.now(), 20);
        assert_eq!(e.delivered(), 3);
        assert!(e.is_empty());
    }

    #[test]
    fn processes_queue_fifo_and_expose_backlog() {
        let mut e: SimEngine<()> = SimEngine::new();
        let serial = e.add_process("validator", 1);
        assert_eq!(e.service(serial, 0, 100), (0, 100));
        // Arrives while busy: queues behind the first item.
        assert_eq!(e.service(serial, 10, 50), (100, 150));
        assert_eq!(e.queue_delay(serial, 120), 30);
        assert_eq!(e.process(serial).name(), "validator");
        assert_eq!(e.process(serial).servers().served(), 2);
    }

    #[test]
    fn multi_server_processes_run_in_parallel() {
        let mut e: SimEngine<()> = SimEngine::new();
        let pool = e.add_process("endorsers", 2);
        let (s1, _) = e.service(pool, 0, 100);
        let (s2, _) = e.service(pool, 0, 100);
        let (s3, _) = e.service(pool, 0, 100);
        assert_eq!((s1, s2, s3), (0, 0, 100));
        assert_eq!(e.processes().len(), 1);
    }

    #[test]
    fn stage_events_round_trip_through_the_queue() {
        let mut e: SimEngine<StageEvent> = SimEngine::new();
        e.schedule_at(42, StageEvent::new(3, 7));
        let (t, ev) = e.pop().unwrap();
        assert_eq!((t, ev.stage, ev.token), (42, 3, 7));
    }

    #[test]
    fn clamp_counting_surfaces_through_the_engine() {
        let mut e: SimEngine<u8> = SimEngine::new();
        e.schedule_at(100, 1);
        e.pop();
        e.schedule_at(10, 2);
        assert_eq!(e.clamped(), 1);
        assert_eq!(e.pop(), Some((100, 2)));
    }
}
