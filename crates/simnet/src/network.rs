//! The cluster network model.
//!
//! The paper's testbed is a 96-node cluster on 1 Gb Ethernet. We model the
//! network as a full mesh with a per-message base latency (propagation +
//! kernel/stack overhead) plus a serialization term proportional to message
//! size at the configured bandwidth, and optional random jitter. Crashed
//! nodes and partitions (from [`crate::fault`]) make delivery fail, which the
//! consensus protocols must tolerate.

use dichotomy_common::codec::Encode;
use dichotomy_common::rng::{self, Rng, StdRng};
use dichotomy_common::{NodeId, Timestamp};

use crate::fault::FaultPlan;

/// Static description of the cluster network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// One-way base latency between two distinct nodes, in µs. LAN default
    /// reflects the paper's in-house 1 Gb Ethernet cluster.
    pub base_latency_us: u64,
    /// Additional uniform jitter bound in µs (actual jitter ∈ [0, bound]).
    pub jitter_us: u64,
    /// Link bandwidth in bytes per microsecond (125 B/µs = 1 Gb/s).
    pub bandwidth_bytes_per_us: f64,
    /// Latency of a node messaging itself (loopback), in µs.
    pub loopback_latency_us: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan_1gbps()
    }
}

impl NetworkConfig {
    /// The paper's evaluation network: 1 Gb Ethernet LAN, ~250 µs one-way
    /// application-to-application latency.
    pub fn lan_1gbps() -> Self {
        NetworkConfig {
            base_latency_us: 250,
            jitter_us: 50,
            bandwidth_bytes_per_us: 125.0,
            loopback_latency_us: 5,
        }
    }

    /// A wide-area configuration (used by ablations; not needed for the
    /// paper's figures but useful for exploring the design space).
    pub fn wan() -> Self {
        NetworkConfig {
            base_latency_us: 25_000,
            jitter_us: 5_000,
            bandwidth_bytes_per_us: 12.5,
            loopback_latency_us: 5,
        }
    }
}

impl Encode for NetworkConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.base_latency_us.encode_into(out);
        self.jitter_us.encode_into(out);
        self.bandwidth_bytes_per_us.encode_into(out);
        self.loopback_latency_us.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

/// The dynamic network: configuration + RNG for jitter + fault plan.
#[derive(Debug)]
pub struct NetworkModel {
    config: NetworkConfig,
    rng: StdRng,
    faults: FaultPlan,
    /// Total bytes handed to the network, for traffic accounting.
    bytes_sent: u64,
    /// Total messages handed to the network.
    messages_sent: u64,
}

impl NetworkModel {
    /// Build a network with the given config and RNG seed.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        NetworkModel {
            config,
            rng: rng::seeded(rng::derive_seed(seed, "network")),
            faults: FaultPlan::none(),
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    /// Install a fault plan (crashes, partitions).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Read access to the fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access to the fault plan (tests inject faults mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// One-way delivery delay for a `bytes`-sized message from `from` to
    /// `to`, sent at time `now`. Returns `None` if the message is lost
    /// (receiver crashed or the pair is partitioned at `now`).
    pub fn delay(&mut self, from: NodeId, to: NodeId, bytes: usize, now: Timestamp) -> Option<u64> {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        if !self.faults.can_deliver(from, to, now) {
            return None;
        }
        if from == to {
            return Some(self.config.loopback_latency_us);
        }
        let serialization = (bytes as f64 / self.config.bandwidth_bytes_per_us) as u64;
        let jitter = if self.config.jitter_us == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.config.jitter_us)
        };
        Some(self.config.base_latency_us + serialization + jitter)
    }

    /// Delay for broadcasting `bytes` from `from` to every node in `peers`
    /// (excluding itself), returning per-peer delays. Lost messages are
    /// `None`. The sender serializes the copies one after another on its
    /// uplink, which is what makes large blocks expensive to disseminate.
    pub fn broadcast(
        &mut self,
        from: NodeId,
        peers: &[NodeId],
        bytes: usize,
        now: Timestamp,
    ) -> Vec<(NodeId, Option<u64>)> {
        let mut out = Vec::with_capacity(peers.len());
        let mut uplink_occupancy = 0u64;
        for &peer in peers {
            if peer == from {
                continue;
            }
            let d = self.delay(from, peer, bytes, now);
            let serialization = (bytes as f64 / self.config.bandwidth_bytes_per_us) as u64;
            uplink_occupancy += serialization;
            out.push((
                peer,
                d.map(|d| d + uplink_occupancy.saturating_sub(serialization)),
            ));
        }
        out
    }

    /// Expected (jitter-free) one-way delay for planning purposes.
    pub fn expected_delay(&self, bytes: usize) -> u64 {
        self.config.base_latency_us
            + (bytes as f64 / self.config.bandwidth_bytes_per_us) as u64
            + self.config.jitter_us / 2
    }

    /// Total bytes offered to the network so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages offered to the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::NodeFault;

    fn net() -> NetworkModel {
        NetworkModel::new(NetworkConfig::lan_1gbps(), 1)
    }

    #[test]
    fn small_message_delay_is_about_base_latency() {
        let mut n = net();
        let d = n.delay(NodeId(0), NodeId(1), 100, 0).unwrap();
        assert!(d >= 250 && d <= 250 + 50 + 1, "delay {d}");
    }

    #[test]
    fn loopback_is_cheap() {
        let mut n = net();
        assert_eq!(n.delay(NodeId(2), NodeId(2), 10_000, 0), Some(5));
    }

    #[test]
    fn large_messages_pay_serialization() {
        let mut n = net();
        // 1 MB at 125 B/µs = 8000 µs of serialization.
        let d = n.delay(NodeId(0), NodeId(1), 1_000_000, 0).unwrap();
        assert!(d >= 8000 + 250, "delay {d}");
    }

    #[test]
    fn crashed_receiver_drops_messages() {
        let mut n = net();
        n.faults_mut().add(NodeFault::crash(NodeId(1), 100));
        assert!(n.delay(NodeId(0), NodeId(1), 10, 50).is_some());
        assert!(n.delay(NodeId(0), NodeId(1), 10, 150).is_none());
        // Other destinations unaffected.
        assert!(n.delay(NodeId(0), NodeId(2), 10, 150).is_some());
    }

    #[test]
    fn broadcast_skips_self_and_accounts_uplink() {
        let mut n = net();
        let peers = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let out = n.broadcast(NodeId(0), &peers, 125_000, 0);
        assert_eq!(out.len(), 3);
        // Later recipients see strictly larger delays because the sender's
        // uplink serializes the copies (125 kB = 1000 µs per copy).
        let delays: Vec<u64> = out.iter().map(|(_, d)| d.unwrap()).collect();
        assert!(delays[1] > delays[0]);
        assert!(delays[2] > delays[1]);
    }

    #[test]
    fn traffic_accounting_accumulates() {
        let mut n = net();
        n.delay(NodeId(0), NodeId(1), 100, 0);
        n.delay(NodeId(0), NodeId(1), 400, 0);
        assert_eq!(n.bytes_sent(), 500);
        assert_eq!(n.messages_sent(), 2);
    }

    #[test]
    fn expected_delay_is_deterministic() {
        let n = net();
        assert_eq!(n.expected_delay(0), 250 + 25);
        assert_eq!(n.expected_delay(12_500), 250 + 100 + 25);
    }

    #[test]
    fn same_seed_gives_same_jitter_sequence() {
        let mut a = NetworkModel::new(NetworkConfig::lan_1gbps(), 99);
        let mut b = NetworkModel::new(NetworkConfig::lan_1gbps(), 99);
        for _ in 0..20 {
            assert_eq!(
                a.delay(NodeId(0), NodeId(1), 64, 0),
                b.delay(NodeId(0), NodeId(1), 64, 0)
            );
        }
    }
}
