//! Deterministic discrete-event cluster simulation kernel.
//!
//! The paper's evaluation runs real systems on a 96-node cluster; this crate
//! is the substitute substrate (see DESIGN.md §2). It provides the four
//! building blocks every simulated system is made of:
//!
//! * an [`EventQueue`] and simulated clock (microsecond granularity),
//! * a [`NetworkModel`] with per-link latency, bandwidth and fault injection,
//! * FIFO [`Resource`]s that model serial and multi-server processing stages
//!   (the source of all queueing / saturation behaviour), and
//! * a [`CostModel`] holding the CPU-cost constants (hashing, signatures,
//!   SQL parsing, storage access) calibrated against the latency breakdowns
//!   the paper reports in Figures 8 and 11.
//!
//! Nothing in this crate knows about blockchains or databases; the consensus
//! protocols and system models are built on top of it.

pub mod costs;
pub mod event;
pub mod fault;
pub mod network;
pub mod resource;

pub use costs::CostModel;
pub use event::{EventQueue, ScheduledEvent};
pub use fault::{FaultPlan, NodeFault};
pub use network::{NetworkConfig, NetworkModel};
pub use resource::{MultiResource, Resource};

/// Simulated time in microseconds (re-exported for convenience).
pub use dichotomy_common::Timestamp;
