//! Deterministic discrete-event cluster simulation kernel.
//!
//! The paper's evaluation runs real systems on a 96-node cluster; this crate
//! is the substitute substrate (see DESIGN.md §2). It provides the four
//! building blocks every simulated system is made of:
//!
//! * a [`SimEngine`] — the discrete-event core: an [`EventQueue`] with a
//!   simulated clock (microsecond granularity) plus named [`Process`]
//!   service queues every pipeline stage is built on,
//! * a [`NetworkModel`] with per-link latency, bandwidth and fault injection,
//! * FIFO [`Resource`]s that model serial and multi-server processing stages
//!   (the source of all queueing / saturation behaviour), and
//! * a [`CostModel`] holding the CPU-cost constants (hashing, signatures,
//!   SQL parsing, storage access) calibrated against the latency breakdowns
//!   the paper reports in Figures 8 and 11.
//!
//! Nothing in this crate knows about blockchains or databases; the consensus
//! protocols and system models are built on top of it.

pub mod costs;
pub mod engine;
pub mod event;
pub mod fault;
pub mod network;
pub mod resource;

pub use costs::CostModel;
pub use engine::{Process, ProcessId, SimEngine, StageEvent};
pub use event::{EventQueue, HeapEventQueue, ScheduledEvent};
pub use fault::{Failover, FaultPlan, NodeFault, Partition, Reconfiguration};
pub use network::{NetworkConfig, NetworkModel};
pub use resource::{MultiResource, Resource};

/// Simulated time in microseconds (re-exported for convenience).
pub use dichotomy_common::Timestamp;
