//! FIFO processing resources.
//!
//! A [`Resource`] models a stage that can process one item at a time (a
//! single CPU core doing serial block validation, a consensus leader
//! assembling batches, a WAL writer). A [`MultiResource`] models a stage with
//! `k` identical servers (e.g. concurrent transaction executors). These two
//! primitives are the source of every queueing and saturation effect in the
//! system models: when the offered load exceeds a stage's capacity the
//! stage's queue grows and latency climbs, exactly the unsaturated/saturated
//! distinction the paper draws in Section 5.2.1.

use dichotomy_common::Timestamp;

/// A single-server FIFO resource.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    /// Time at which the server becomes free.
    free_at: Timestamp,
    /// Total busy time accumulated, for utilization accounting.
    busy_us: u64,
    /// Number of items served.
    served: u64,
}

impl Resource {
    /// A resource that is free immediately.
    pub fn new() -> Self {
        Resource::default()
    }

    /// Schedule an item that arrives at `arrival` and needs `service_us` of
    /// work. Returns `(start, finish)`: the item starts when both it has
    /// arrived and the server is free, and finishes `service_us` later.
    pub fn schedule(&mut self, arrival: Timestamp, service_us: u64) -> (Timestamp, Timestamp) {
        let start = arrival.max(self.free_at);
        let finish = start.saturating_add(service_us);
        self.free_at = finish;
        self.busy_us += service_us;
        self.served += 1;
        (start, finish)
    }

    /// Time at which the server next becomes free.
    pub fn free_at(&self) -> Timestamp {
        self.free_at
    }

    /// Queueing delay an item arriving at `arrival` would experience before
    /// starting service.
    pub fn queue_delay(&self, arrival: Timestamp) -> u64 {
        self.free_at.saturating_sub(arrival)
    }

    /// Total busy microseconds accumulated.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Number of items served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over the interval `[0, horizon]`.
    pub fn utilization(&self, horizon: Timestamp) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy_us as f64 / horizon as f64).min(1.0)
        }
    }

    /// Reset to the initial idle state.
    pub fn reset(&mut self) {
        *self = Resource::default();
    }
}

/// A `k`-server FIFO resource: an arriving item is served by the earliest
/// available server.
#[derive(Debug, Clone)]
pub struct MultiResource {
    servers: Vec<Timestamp>,
    busy_us: u64,
    served: u64,
}

impl MultiResource {
    /// A resource with `k` identical servers (k ≥ 1 enforced).
    pub fn new(k: usize) -> Self {
        MultiResource {
            servers: vec![0; k.max(1)],
            busy_us: 0,
            served: 0,
        }
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.servers.len()
    }

    /// Schedule an item arriving at `arrival` needing `service_us` of work on
    /// the earliest-free server. Returns `(start, finish)`.
    pub fn schedule(&mut self, arrival: Timestamp, service_us: u64) -> (Timestamp, Timestamp) {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, _)| i)
            .expect("at least one server");
        let start = arrival.max(self.servers[idx]);
        let finish = start.saturating_add(service_us);
        self.servers[idx] = finish;
        self.busy_us += service_us;
        self.served += 1;
        (start, finish)
    }

    /// The earliest time at which any server is free.
    pub fn earliest_free(&self) -> Timestamp {
        self.servers.iter().copied().min().unwrap_or(0)
    }

    /// Queueing delay an item arriving at `arrival` would experience before
    /// any server could start it.
    pub fn queue_delay(&self, arrival: Timestamp) -> u64 {
        self.earliest_free().saturating_sub(arrival)
    }

    /// Total busy microseconds accumulated across all servers.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Number of items served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Aggregate utilization over `[0, horizon]` (1.0 = all servers busy the
    /// whole time).
    pub fn utilization(&self, horizon: Timestamp) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy_us as f64 / (horizon as f64 * self.servers.len() as f64)).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.schedule(100, 50), (100, 150));
        assert_eq!(r.free_at(), 150);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = Resource::new();
        r.schedule(0, 100);
        // Arrives at 10 but must wait until 100.
        assert_eq!(r.schedule(10, 20), (100, 120));
        assert_eq!(r.queue_delay(110), 10);
        assert_eq!(r.served(), 2);
        assert_eq!(r.busy_us(), 120);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut r = Resource::new();
        r.schedule(0, 500);
        assert!((r.utilization(1000) - 0.5).abs() < 1e-9);
        assert_eq!(r.utilization(0), 0.0);
        r.schedule(0, 10_000);
        assert_eq!(r.utilization(100), 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new();
        r.schedule(0, 100);
        r.reset();
        assert_eq!(r.free_at(), 0);
        assert_eq!(r.served(), 0);
    }

    #[test]
    fn multi_resource_uses_idle_servers_in_parallel() {
        let mut m = MultiResource::new(2);
        let (s1, f1) = m.schedule(0, 100);
        let (s2, f2) = m.schedule(0, 100);
        // Both start immediately on distinct servers.
        assert_eq!((s1, s2), (0, 0));
        assert_eq!((f1, f2), (100, 100));
        // Third item waits for the earliest finisher.
        let (s3, _) = m.schedule(0, 50);
        assert_eq!(s3, 100);
        assert_eq!(m.capacity(), 2);
    }

    #[test]
    fn multi_resource_with_zero_servers_clamps_to_one() {
        let m = MultiResource::new(0);
        assert_eq!(m.capacity(), 1);
    }

    #[test]
    fn multi_resource_utilization() {
        let mut m = MultiResource::new(4);
        for _ in 0..4 {
            m.schedule(0, 100);
        }
        assert!((m.utilization(100) - 1.0).abs() < 1e-9);
        assert!((m.utilization(200) - 0.5).abs() < 1e-9);
        assert_eq!(m.earliest_free(), 100);
    }

    #[test]
    fn single_and_multi_agree_for_k_equals_one() {
        let mut r = Resource::new();
        let mut m = MultiResource::new(1);
        for (arrival, service) in [(0, 10), (3, 20), (100, 5)] {
            assert_eq!(r.schedule(arrival, service), m.schedule(arrival, service));
        }
    }
}
