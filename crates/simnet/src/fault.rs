//! Fault injection: node crashes, recoveries, Byzantine marking, network
//! partitions, coordinator failovers and epoch reconfigurations.
//!
//! The replication dimension of the taxonomy (Section 3.1.3) is about which
//! failures a protocol tolerates. The consensus substrate is exercised under
//! these fault plans in its property tests: Raft must stay safe (no two
//! divergent commits) under crash faults, PBFT under Byzantine faults up to
//! `f`, and both must make progress again once faults heal.
//!
//! A [`FaultPlan`] is a declarative *fault algebra* consumed by every system
//! model. The addressing convention is role-based: `NodeId(0)` is the
//! model's primary (Raft leader, Fabric lead orderer, Quorum proposer, the
//! 2PC coordinator of the sharded models), and `NodeId(1 + s)` is shard
//! `s`'s replication leader in the sharded models. [`FaultPlan::release_at`]
//! is the one query models ask on their injection path: "given work that
//! wants to start at `t` on `node`, when may it actually start?" — chaining
//! crash heals (+ failover pause) and declarative [`Failover`] windows until
//! the node is clear, failing closed on unresolvable chains.

use std::collections::BTreeSet;

use dichotomy_common::{Diagnostic, Encode, NodeId, Severity, Timestamp};

/// A single fault with a start time and an optional end time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFault {
    /// The affected node.
    pub node: NodeId,
    /// When the fault begins.
    pub from: Timestamp,
    /// When the fault heals (`None` = permanent).
    pub until: Option<Timestamp>,
    /// What kind of fault.
    pub kind: FaultKind,
}

/// The kinds of faults the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node stops participating entirely (crash-stop, possibly healing).
    Crash,
    /// The node is Byzantine: it stays up but the protocol models it as
    /// sending arbitrary/conflicting messages. The consensus implementations
    /// consult this to decide which nodes equivocate.
    Byzantine,
}

impl NodeFault {
    /// A crash starting at `from` and lasting forever.
    pub fn crash(node: NodeId, from: Timestamp) -> Self {
        NodeFault {
            node,
            from,
            until: None,
            kind: FaultKind::Crash,
        }
    }

    /// A crash that heals at `until`.
    pub fn crash_until(node: NodeId, from: Timestamp, until: Timestamp) -> Self {
        NodeFault {
            node,
            from,
            until: Some(until),
            kind: FaultKind::Crash,
        }
    }

    /// Mark a node Byzantine from `from` onwards.
    pub fn byzantine(node: NodeId, from: Timestamp) -> Self {
        NodeFault {
            node,
            from,
            until: None,
            kind: FaultKind::Byzantine,
        }
    }

    /// Whether the fault is active at time `t`.
    pub fn active_at(&self, t: Timestamp) -> bool {
        t >= self.from && self.until.map_or(true, |u| t < u)
    }
}

/// A network partition separating two groups of nodes for a time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the partition; every node not in `group_a` is implicitly
    /// on the other side.
    pub group_a: BTreeSet<NodeId>,
    /// When the partition begins.
    pub from: Timestamp,
    /// When it heals (`None` = permanent).
    pub until: Option<Timestamp>,
}

impl Partition {
    /// Whether the partition is active at time `t`.
    pub fn active_at(&self, t: Timestamp) -> bool {
        t >= self.from && self.until.map_or(true, |u| t < u)
    }

    /// Whether the partition separates `a` from `b` at time `t`.
    pub fn separates(&self, a: NodeId, b: NodeId, t: Timestamp) -> bool {
        self.active_at(t) && (self.group_a.contains(&a) != self.group_a.contains(&b))
    }
}

/// A declarative coordinator/primary handover: the role addressed by
/// `NodeId(0)` is unavailable for `[at, at + duration_us)` while leadership
/// moves (a planned leader election, an orderer handover, a 2PC coordinator
/// failover). Unlike a crash there is no extra failover pause on top — the
/// window *is* the handover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failover {
    /// When the handover begins.
    pub at: Timestamp,
    /// How long the role is unavailable (µs).
    pub duration_us: u64,
}

impl Failover {
    /// When the handover completes and the role is serviceable again.
    pub fn until(&self) -> Timestamp {
        self.at.saturating_add(self.duration_us)
    }

    /// Whether the handover is in progress at `t`.
    pub fn active_at(&self, t: Timestamp) -> bool {
        t >= self.at && t < self.until()
    }
}

/// A declarative membership reconfiguration: at `at`, every shard pipeline
/// pauses for `pause_us` while the epoch rolls over (AHL's periodic shard
/// re-formation made schedulable). `churn: true` additionally reshuffles
/// shard membership at the boundary, so key→shard placement changes across
/// the epoch; models without membership to churn treat it as a pure pause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reconfiguration {
    /// The epoch boundary.
    pub at: Timestamp,
    /// How long the shard pipelines stall (µs).
    pub pause_us: u64,
    /// Whether shard membership is reshuffled at the boundary.
    pub churn: bool,
}

/// The complete fault schedule for a run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<NodeFault>,
    partitions: Vec<Partition>,
    failovers: Vec<Failover>,
    reconfigurations: Vec<Reconfiguration>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a node fault.
    pub fn add(&mut self, fault: NodeFault) -> &mut Self {
        self.faults.push(fault);
        self
    }

    /// Add a partition between `group_a` and the rest of the cluster.
    pub fn add_partition(
        &mut self,
        group_a: impl IntoIterator<Item = NodeId>,
        from: Timestamp,
        until: Option<Timestamp>,
    ) -> &mut Self {
        self.partitions.push(Partition {
            group_a: group_a.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// Whether `node` is crashed at `t`.
    pub fn is_crashed(&self, node: NodeId, t: Timestamp) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.kind == FaultKind::Crash && f.active_at(t))
    }

    /// If `node` is crashed at `t`, when the crash heals: `Some(Some(u))`
    /// for a crash healing at `u` (the latest, if several overlap),
    /// `Some(None)` for a permanent crash, `None` when the node is up.
    pub fn crashed_until(&self, node: NodeId, t: Timestamp) -> Option<Option<Timestamp>> {
        let mut hit = None;
        for f in self
            .faults
            .iter()
            .filter(|f| f.node == node && f.kind == FaultKind::Crash && f.active_at(t))
        {
            hit = Some(match (hit, f.until) {
                (Some(None), _) | (_, None) => None,
                (Some(Some(prev)), Some(u)) => Some(u.max(prev)),
                (None, Some(u)) => Some(u),
            });
        }
        hit
    }

    /// Whether `node` is marked Byzantine at `t`.
    pub fn is_byzantine(&self, node: NodeId, t: Timestamp) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.kind == FaultKind::Byzantine && f.active_at(t))
    }

    /// Whether a message from `from` can be delivered to `to` at `t`:
    /// both endpoints must be up and no active partition may separate them.
    pub fn can_deliver(&self, from: NodeId, to: NodeId, t: Timestamp) -> bool {
        if self.is_crashed(from, t) || self.is_crashed(to, t) {
            return false;
        }
        !self.partitions.iter().any(|p| p.separates(from, to, t))
    }

    /// Nodes that are marked Byzantine at `t` out of `nodes`.
    pub fn byzantine_nodes(&self, nodes: &[NodeId], t: Timestamp) -> Vec<NodeId> {
        nodes
            .iter()
            .copied()
            .filter(|&n| self.is_byzantine(n, t))
            .collect()
    }

    /// Schedule a primary handover (see [`Failover`]).
    pub fn add_failover(&mut self, at: Timestamp, duration_us: u64) -> &mut Self {
        self.failovers.push(Failover { at, duration_us });
        self
    }

    /// Schedule a membership reconfiguration (see [`Reconfiguration`]).
    pub fn add_reconfiguration(&mut self, at: Timestamp, pause_us: u64, churn: bool) -> &mut Self {
        self.reconfigurations.push(Reconfiguration {
            at,
            pause_us,
            churn,
        });
        self
    }

    /// The node faults, in insertion order.
    pub fn faults(&self) -> &[NodeFault] {
        &self.faults
    }

    /// The partitions, in insertion order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The failover windows, in insertion order.
    pub fn failovers(&self) -> &[Failover] {
        &self.failovers
    }

    /// The reconfiguration events, in insertion order.
    pub fn reconfigurations(&self) -> &[Reconfiguration] {
        &self.reconfigurations
    }

    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
            && self.partitions.is_empty()
            && self.failovers.is_empty()
            && self.reconfigurations.is_empty()
    }

    /// The latest timestamp the plan mentions (fault start/heal, partition
    /// window, failover end, reconfiguration end), or 0 for an empty plan.
    /// Permanent faults/partitions count only their start.
    pub fn max_time(&self) -> Timestamp {
        let fault_edge = |from: Timestamp, until: Option<Timestamp>| until.unwrap_or(from);
        self.faults
            .iter()
            .map(|f| fault_edge(f.from, f.until))
            .chain(self.partitions.iter().map(|p| fault_edge(p.from, p.until)))
            .chain(self.failovers.iter().map(Failover::until))
            .chain(
                self.reconfigurations
                    .iter()
                    .map(|r| r.at.saturating_add(r.pause_us)),
            )
            .max()
            .unwrap_or(0)
    }

    /// When work wanting to start at `at` on `node` may actually start:
    /// `Some(at)` if the node is clear, a later time once overlapping crash
    /// windows (each adding `failover_us` of re-election pause on heal) and
    /// [`Failover`] windows have elapsed, or `None` if the node is down for
    /// good (a permanent crash, or a chain of faults too deep to resolve —
    /// the query fails *closed* rather than committing inside an unresolved
    /// window).
    pub fn release_at(&self, node: NodeId, at: Timestamp, failover_us: u64) -> Option<Timestamp> {
        let mut t = at;
        // Bounded chaining: back-to-back faults are legitimate (a crash heals
        // into a scheduled failover), unbounded chains are a mis-specified
        // plan.
        for _ in 0..16 {
            if let Some(heal) = self.crashed_until(node, t) {
                match heal {
                    Some(heal) => t = heal.saturating_add(failover_us),
                    None => return None,
                }
                continue;
            }
            if let Some(until) = self
                .failovers
                .iter()
                .filter(|f| f.active_at(t))
                .map(Failover::until)
                .max()
            {
                t = until;
                continue;
            }
            return Some(t);
        }
        None
    }

    /// When a message between `a` and `b` wanting to leave at `t` may
    /// actually be delivered: `Some(t)` if no active partition separates
    /// them, the latest heal time of the separating partitions otherwise,
    /// `None` if a permanent partition (or an unresolvable chain of
    /// partitions) keeps them apart. Crash state is *not* consulted — pair
    /// with [`release_at`](Self::release_at) for that.
    pub fn partition_release(&self, a: NodeId, b: NodeId, t: Timestamp) -> Option<Timestamp> {
        let mut t = t;
        for _ in 0..16 {
            let mut heal: Option<Option<Timestamp>> = None;
            for p in self.partitions.iter().filter(|p| p.separates(a, b, t)) {
                heal = Some(match (heal, p.until) {
                    (Some(None), _) | (_, None) => None,
                    (Some(Some(prev)), Some(u)) => Some(u.max(prev)),
                    (None, Some(u)) => Some(u),
                });
            }
            match heal {
                None => return Some(t),
                Some(None) => return None,
                Some(Some(u)) => t = u,
            }
        }
        None
    }

    /// The combined primary-role query the pipeline models ask: when may
    /// work wanting to start at `at` on the primary (`NodeId(0)`, per the
    /// role-addressing convention) actually start, considering crash windows
    /// (+ `failover_us` re-election pause per heal), [`Failover`] windows,
    /// *and* partitions cutting the primary off from the rest of the cluster
    /// (represented by `NodeId(1)`)? Iterated to a fixed point; `None` means
    /// the primary is unreachable for good.
    pub fn primary_release(&self, at: Timestamp, failover_us: u64) -> Option<Timestamp> {
        let mut t = at;
        for _ in 0..8 {
            let clear = self.release_at(NodeId(0), t, failover_us)?;
            let reachable = self.partition_release(NodeId(0), NodeId(1), clear)?;
            if reachable == t {
                return Some(t);
            }
            t = reachable;
        }
        None
    }

    /// Validate the plan against a run horizon (satellite of the chaos
    /// engine): returns a sanitized plan plus structured diagnostics
    /// (`S001`/`S002`, [`Locus::None`](dichotomy_common::Locus::None) — the
    /// caller knows the experiment/row/probe and attaches the plan locus).
    ///
    /// * `S001` — events scheduled at or past `horizon` (they could never
    ///   influence the run) are dropped. `None` skips the horizon check.
    /// * `S002` — overlapping (or touching) crash windows on the same node
    ///   are merged into one window healing at the latest end — the
    ///   semantics [`crashed_until`](Self::crashed_until) already applies,
    ///   made explicit in the plan.
    pub fn validate(&self, horizon: Option<Timestamp>) -> (FaultPlan, Vec<Diagnostic>) {
        let mut diags = Vec::new();
        let mut plan = self.clone();

        if let Some(h) = horizon {
            let mut drop_past = |what: &str, from: Timestamp| {
                let keep = from < h;
                if !keep {
                    diags.push(
                        Diagnostic::new(
                            "S001",
                            Severity::Warn,
                            format!(
                                "{what} scheduled at {from} µs starts at/after the run horizon \
                                 ({h} µs) and was dropped"
                            ),
                        )
                        .with_help("move the event inside the arrival horizon or extend the run"),
                    );
                }
                keep
            };
            plan.faults.retain(|f| drop_past("node fault", f.from));
            plan.partitions.retain(|p| drop_past("partition", p.from));
            plan.failovers.retain(|f| drop_past("failover", f.at));
            plan.reconfigurations
                .retain(|r| drop_past("reconfiguration", r.at));
        }

        // Merge overlapping same-node crash windows (stable: merged windows
        // replace the first member in place, later members are removed).
        let mut merged: Vec<NodeFault> = Vec::with_capacity(plan.faults.len());
        for fault in plan.faults.drain(..) {
            if fault.kind != FaultKind::Crash {
                merged.push(fault);
                continue;
            }
            let overlap = merged.iter_mut().find(|m| {
                m.kind == FaultKind::Crash
                    && m.node == fault.node
                    && m.from <= fault.until.unwrap_or(Timestamp::MAX)
                    && fault.from <= m.until.unwrap_or(Timestamp::MAX)
            });
            match overlap {
                Some(m) => {
                    diags.push(
                        Diagnostic::new(
                            "S002",
                            Severity::Warn,
                            format!(
                                "overlapping crash windows on node {} merged into one \
                                 ([{}, {:?}) ∪ [{}, {:?}))",
                                fault.node.0, m.from, m.until, fault.from, fault.until
                            ),
                        )
                        .with_help("declare one crash window per node interval"),
                    );
                    m.from = m.from.min(fault.from);
                    m.until = match (m.until, fault.until) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                }
                None => merged.push(fault),
            }
        }
        plan.faults = merged;
        (plan, diags)
    }
}

// Canonical encodings: a fault schedule is part of a probe's identity (two
// measurements differing only in their fault plans are different
// measurements), so every fault type feeds the measurement layer's canonical
// content hash through `Encode`.

impl Encode for FaultKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            FaultKind::Crash => 0,
            FaultKind::Byzantine => 1,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Encode for NodeFault {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.node.encode_into(out);
        self.from.encode_into(out);
        self.until.encode_into(out);
        self.kind.encode_into(out);
    }
}

impl Encode for Partition {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.group_a.len() as u32).to_be_bytes());
        for node in &self.group_a {
            node.encode_into(out);
        }
        self.from.encode_into(out);
        self.until.encode_into(out);
    }
}

impl Encode for Failover {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.at.encode_into(out);
        self.duration_us.encode_into(out);
    }
}

impl Encode for Reconfiguration {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.at.encode_into(out);
        self.pause_us.encode_into(out);
        self.churn.encode_into(out);
    }
}

impl Encode for FaultPlan {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.faults.encode_into(out);
        self.partitions.encode_into(out);
        self.failovers.encode_into(out);
        self.reconfigurations.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_window_semantics() {
        let f = NodeFault::crash_until(NodeId(1), 100, 200);
        assert!(!f.active_at(99));
        assert!(f.active_at(100));
        assert!(f.active_at(199));
        assert!(!f.active_at(200));
    }

    #[test]
    fn permanent_crash_never_heals() {
        let f = NodeFault::crash(NodeId(1), 10);
        assert!(f.active_at(u64::MAX));
    }

    #[test]
    fn crashed_until_reports_the_heal_time() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash_until(NodeId(1), 100, 200));
        plan.add(NodeFault::crash_until(NodeId(1), 150, 400));
        plan.add(NodeFault::crash(NodeId(2), 50));
        assert_eq!(plan.crashed_until(NodeId(1), 99), None);
        // Overlapping crashes heal at the latest end.
        assert_eq!(plan.crashed_until(NodeId(1), 160), Some(Some(400)));
        assert_eq!(plan.crashed_until(NodeId(1), 399), Some(Some(400)));
        assert_eq!(plan.crashed_until(NodeId(1), 400), None);
        assert_eq!(plan.crashed_until(NodeId(2), 60), Some(None));
    }

    #[test]
    fn plan_blocks_messages_to_and_from_crashed_nodes() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash_until(NodeId(2), 50, 150));
        assert!(plan.can_deliver(NodeId(0), NodeId(2), 0));
        assert!(!plan.can_deliver(NodeId(0), NodeId(2), 100));
        assert!(!plan.can_deliver(NodeId(2), NodeId(0), 100));
        assert!(plan.can_deliver(NodeId(0), NodeId(2), 150));
    }

    #[test]
    fn partitions_separate_only_across_the_cut() {
        let mut plan = FaultPlan::none();
        plan.add_partition([NodeId(0), NodeId(1)], 10, Some(20));
        // Across the cut: blocked while active.
        assert!(!plan.can_deliver(NodeId(0), NodeId(3), 15));
        assert!(!plan.can_deliver(NodeId(3), NodeId(1), 15));
        // Same side: fine.
        assert!(plan.can_deliver(NodeId(0), NodeId(1), 15));
        assert!(plan.can_deliver(NodeId(3), NodeId(4), 15));
        // Healed.
        assert!(plan.can_deliver(NodeId(0), NodeId(3), 25));
    }

    #[test]
    fn release_at_passes_a_clear_node_through_unchanged() {
        let plan = FaultPlan::none();
        assert_eq!(plan.release_at(NodeId(0), 123, 5_000), Some(123));
        assert!(plan.is_empty());
        assert_eq!(plan.max_time(), 0);
    }

    #[test]
    fn release_at_chains_crash_heal_failover_pause_and_failover_windows() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash_until(NodeId(0), 100, 200));
        // A failover window that starts exactly where the crash's failover
        // pause lands: the chain must ride through both.
        plan.add_failover(250, 100);
        // Before the crash: clear.
        assert_eq!(plan.release_at(NodeId(0), 50, 50), Some(50));
        // Inside the crash: heal (200) + failover pause (50) = 250, which is
        // inside the failover window [250, 350) → released at 350.
        assert_eq!(plan.release_at(NodeId(0), 150, 50), Some(350));
        // Inside the failover window alone: released at its end.
        assert_eq!(plan.release_at(NodeId(0), 300, 50), Some(350));
        // Other nodes are untouched by failovers of the same plan? No —
        // failover windows model the *role*, not a node, so they apply to
        // whatever node is queried. Crash faults stay per-node.
        assert_eq!(plan.release_at(NodeId(3), 150, 50), Some(150));
        assert_eq!(plan.max_time(), 350);
    }

    #[test]
    fn release_at_fails_closed_on_permanent_crashes() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash(NodeId(1), 10));
        assert_eq!(plan.release_at(NodeId(1), 50, 1_000), None);
        assert_eq!(plan.release_at(NodeId(1), 5, 1_000), Some(5));
    }

    #[test]
    fn partition_release_reports_the_heal_time_across_the_cut() {
        let mut plan = FaultPlan::none();
        plan.add_partition([NodeId(0)], 100, Some(300));
        // Same side or inactive: immediate.
        assert_eq!(plan.partition_release(NodeId(1), NodeId(2), 150), Some(150));
        assert_eq!(plan.partition_release(NodeId(0), NodeId(1), 50), Some(50));
        // Across the cut while active: released at the heal.
        assert_eq!(plan.partition_release(NodeId(0), NodeId(1), 150), Some(300));
        // A permanent partition never releases.
        plan.add_partition([NodeId(0)], 400, None);
        assert_eq!(plan.partition_release(NodeId(0), NodeId(1), 450), None);
        // ... and a windowed one that heals into it chains to None too.
        assert_eq!(plan.partition_release(NodeId(0), NodeId(1), 150), Some(300));
    }

    #[test]
    fn validate_merges_overlapping_crash_windows_with_a_warning() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash_until(NodeId(1), 100, 200));
        plan.add(NodeFault::crash_until(NodeId(1), 150, 400));
        plan.add(NodeFault::crash_until(NodeId(2), 120, 180)); // other node: kept
        plan.add(NodeFault::byzantine(NodeId(1), 0)); // non-crash: kept
        let (sane, diags) = plan.validate(None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "S002");
        assert_eq!(diags[0].severity, Severity::Warn);
        assert!(diags[0]
            .message
            .contains("overlapping crash windows on node 1"));
        let crashes: Vec<_> = sane
            .faults()
            .iter()
            .filter(|f| f.kind == FaultKind::Crash)
            .collect();
        assert_eq!(crashes.len(), 2);
        assert_eq!((crashes[0].from, crashes[0].until), (100, Some(400)));
        assert_eq!(crashes[1].node, NodeId(2));
        assert!(sane.faults().iter().any(|f| f.kind == FaultKind::Byzantine));
        // Merged semantics match the query the models actually ask.
        assert_eq!(
            sane.crashed_until(NodeId(1), 160),
            plan.crashed_until(NodeId(1), 160)
        );
    }

    #[test]
    fn validate_drops_events_past_the_horizon_with_a_warning() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash_until(NodeId(0), 100, 200));
        plan.add(NodeFault::crash_until(NodeId(0), 5_000, 6_000));
        plan.add_partition([NodeId(0)], 7_000, Some(8_000));
        plan.add_failover(9_000, 10);
        plan.add_reconfiguration(500, 50, true);
        let (sane, diags) = plan.validate(Some(1_000));
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == "S001"));
        assert_eq!(sane.faults().len(), 1);
        assert!(sane.partitions().is_empty());
        assert!(sane.failovers().is_empty());
        assert_eq!(sane.reconfigurations().len(), 1);
        // Without a horizon nothing is dropped.
        let (all, no_diags) = plan.validate(None);
        assert_eq!(all.faults().len(), 2);
        assert!(no_diags.is_empty());
    }

    #[test]
    fn reconfigurations_and_failovers_are_plain_inspectable_data() {
        let mut plan = FaultPlan::none();
        plan.add_reconfiguration(1_000, 250, false);
        plan.add_reconfiguration(2_000, 250, true);
        assert_eq!(plan.reconfigurations().len(), 2);
        assert!(!plan.reconfigurations()[0].churn);
        assert!(plan.reconfigurations()[1].churn);
        assert_eq!(plan.max_time(), 2_250);
        assert!(!plan.is_empty());
        let f = Failover {
            at: 10,
            duration_us: 5,
        };
        assert!(f.active_at(10) && f.active_at(14) && !f.active_at(15));
    }

    #[test]
    fn byzantine_marking_does_not_block_delivery() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::byzantine(NodeId(1), 0));
        assert!(plan.can_deliver(NodeId(1), NodeId(2), 100));
        assert!(plan.is_byzantine(NodeId(1), 100));
        assert!(!plan.is_byzantine(NodeId(2), 100));
        assert_eq!(
            plan.byzantine_nodes(&[NodeId(0), NodeId(1), NodeId(2)], 5),
            vec![NodeId(1)]
        );
    }
}
