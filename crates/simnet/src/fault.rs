//! Fault injection: node crashes, recoveries, Byzantine marking and network
//! partitions.
//!
//! The replication dimension of the taxonomy (Section 3.1.3) is about which
//! failures a protocol tolerates. The consensus substrate is exercised under
//! these fault plans in its property tests: Raft must stay safe (no two
//! divergent commits) under crash faults, PBFT under Byzantine faults up to
//! `f`, and both must make progress again once faults heal.

use std::collections::BTreeSet;

use dichotomy_common::{NodeId, Timestamp};

/// A single fault with a start time and an optional end time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFault {
    /// The affected node.
    pub node: NodeId,
    /// When the fault begins.
    pub from: Timestamp,
    /// When the fault heals (`None` = permanent).
    pub until: Option<Timestamp>,
    /// What kind of fault.
    pub kind: FaultKind,
}

/// The kinds of faults the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node stops participating entirely (crash-stop, possibly healing).
    Crash,
    /// The node is Byzantine: it stays up but the protocol models it as
    /// sending arbitrary/conflicting messages. The consensus implementations
    /// consult this to decide which nodes equivocate.
    Byzantine,
}

impl NodeFault {
    /// A crash starting at `from` and lasting forever.
    pub fn crash(node: NodeId, from: Timestamp) -> Self {
        NodeFault {
            node,
            from,
            until: None,
            kind: FaultKind::Crash,
        }
    }

    /// A crash that heals at `until`.
    pub fn crash_until(node: NodeId, from: Timestamp, until: Timestamp) -> Self {
        NodeFault {
            node,
            from,
            until: Some(until),
            kind: FaultKind::Crash,
        }
    }

    /// Mark a node Byzantine from `from` onwards.
    pub fn byzantine(node: NodeId, from: Timestamp) -> Self {
        NodeFault {
            node,
            from,
            until: None,
            kind: FaultKind::Byzantine,
        }
    }

    /// Whether the fault is active at time `t`.
    pub fn active_at(&self, t: Timestamp) -> bool {
        t >= self.from && self.until.map_or(true, |u| t < u)
    }
}

/// A network partition separating two groups of nodes for a time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the partition; every node not in `group_a` is implicitly
    /// on the other side.
    pub group_a: BTreeSet<NodeId>,
    /// When the partition begins.
    pub from: Timestamp,
    /// When it heals (`None` = permanent).
    pub until: Option<Timestamp>,
}

impl Partition {
    /// Whether the partition is active at time `t`.
    pub fn active_at(&self, t: Timestamp) -> bool {
        t >= self.from && self.until.map_or(true, |u| t < u)
    }

    /// Whether the partition separates `a` from `b` at time `t`.
    pub fn separates(&self, a: NodeId, b: NodeId, t: Timestamp) -> bool {
        self.active_at(t) && (self.group_a.contains(&a) != self.group_a.contains(&b))
    }
}

/// The complete fault schedule for a run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<NodeFault>,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a node fault.
    pub fn add(&mut self, fault: NodeFault) -> &mut Self {
        self.faults.push(fault);
        self
    }

    /// Add a partition between `group_a` and the rest of the cluster.
    pub fn add_partition(
        &mut self,
        group_a: impl IntoIterator<Item = NodeId>,
        from: Timestamp,
        until: Option<Timestamp>,
    ) -> &mut Self {
        self.partitions.push(Partition {
            group_a: group_a.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// Whether `node` is crashed at `t`.
    pub fn is_crashed(&self, node: NodeId, t: Timestamp) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.kind == FaultKind::Crash && f.active_at(t))
    }

    /// If `node` is crashed at `t`, when the crash heals: `Some(Some(u))`
    /// for a crash healing at `u` (the latest, if several overlap),
    /// `Some(None)` for a permanent crash, `None` when the node is up.
    pub fn crashed_until(&self, node: NodeId, t: Timestamp) -> Option<Option<Timestamp>> {
        let mut hit = None;
        for f in self
            .faults
            .iter()
            .filter(|f| f.node == node && f.kind == FaultKind::Crash && f.active_at(t))
        {
            hit = Some(match (hit, f.until) {
                (Some(None), _) | (_, None) => None,
                (Some(Some(prev)), Some(u)) => Some(u.max(prev)),
                (None, Some(u)) => Some(u),
            });
        }
        hit
    }

    /// Whether `node` is marked Byzantine at `t`.
    pub fn is_byzantine(&self, node: NodeId, t: Timestamp) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && f.kind == FaultKind::Byzantine && f.active_at(t))
    }

    /// Whether a message from `from` can be delivered to `to` at `t`:
    /// both endpoints must be up and no active partition may separate them.
    pub fn can_deliver(&self, from: NodeId, to: NodeId, t: Timestamp) -> bool {
        if self.is_crashed(from, t) || self.is_crashed(to, t) {
            return false;
        }
        !self.partitions.iter().any(|p| p.separates(from, to, t))
    }

    /// Nodes that are marked Byzantine at `t` out of `nodes`.
    pub fn byzantine_nodes(&self, nodes: &[NodeId], t: Timestamp) -> Vec<NodeId> {
        nodes
            .iter()
            .copied()
            .filter(|&n| self.is_byzantine(n, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_window_semantics() {
        let f = NodeFault::crash_until(NodeId(1), 100, 200);
        assert!(!f.active_at(99));
        assert!(f.active_at(100));
        assert!(f.active_at(199));
        assert!(!f.active_at(200));
    }

    #[test]
    fn permanent_crash_never_heals() {
        let f = NodeFault::crash(NodeId(1), 10);
        assert!(f.active_at(u64::MAX));
    }

    #[test]
    fn crashed_until_reports_the_heal_time() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash_until(NodeId(1), 100, 200));
        plan.add(NodeFault::crash_until(NodeId(1), 150, 400));
        plan.add(NodeFault::crash(NodeId(2), 50));
        assert_eq!(plan.crashed_until(NodeId(1), 99), None);
        // Overlapping crashes heal at the latest end.
        assert_eq!(plan.crashed_until(NodeId(1), 160), Some(Some(400)));
        assert_eq!(plan.crashed_until(NodeId(1), 399), Some(Some(400)));
        assert_eq!(plan.crashed_until(NodeId(1), 400), None);
        assert_eq!(plan.crashed_until(NodeId(2), 60), Some(None));
    }

    #[test]
    fn plan_blocks_messages_to_and_from_crashed_nodes() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::crash_until(NodeId(2), 50, 150));
        assert!(plan.can_deliver(NodeId(0), NodeId(2), 0));
        assert!(!plan.can_deliver(NodeId(0), NodeId(2), 100));
        assert!(!plan.can_deliver(NodeId(2), NodeId(0), 100));
        assert!(plan.can_deliver(NodeId(0), NodeId(2), 150));
    }

    #[test]
    fn partitions_separate_only_across_the_cut() {
        let mut plan = FaultPlan::none();
        plan.add_partition([NodeId(0), NodeId(1)], 10, Some(20));
        // Across the cut: blocked while active.
        assert!(!plan.can_deliver(NodeId(0), NodeId(3), 15));
        assert!(!plan.can_deliver(NodeId(3), NodeId(1), 15));
        // Same side: fine.
        assert!(plan.can_deliver(NodeId(0), NodeId(1), 15));
        assert!(plan.can_deliver(NodeId(3), NodeId(4), 15));
        // Healed.
        assert!(plan.can_deliver(NodeId(0), NodeId(3), 25));
    }

    #[test]
    fn byzantine_marking_does_not_block_delivery() {
        let mut plan = FaultPlan::none();
        plan.add(NodeFault::byzantine(NodeId(1), 0));
        assert!(plan.can_deliver(NodeId(1), NodeId(2), 100));
        assert!(plan.is_byzantine(NodeId(1), 100));
        assert!(!plan.is_byzantine(NodeId(2), 100));
        assert_eq!(
            plan.byzantine_nodes(&[NodeId(0), NodeId(1), NodeId(2)], 5),
            vec![NodeId(1)]
        );
    }
}
