//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties on simulated time
//! are broken by insertion order, which makes every run reproducible
//! regardless of the payload type.
//!
//! Two implementations share the same contract:
//!
//! * [`EventQueue`] — a hierarchical timer wheel (calendar queue). Scheduling
//!   and popping are O(1) amortized: an event is filed into one of 11 levels
//!   of 64 slots by the highest 6-bit group in which its time differs from
//!   the wheel's base, and cascades down at most once per level as the clock
//!   reaches it. This is the queue the engine runs on.
//! * [`HeapEventQueue`] — the original `BinaryHeap` implementation, O(log n)
//!   per operation. Kept as the reference baseline: the differential tests
//!   pop identical randomized schedules through both and assert identical
//!   `(time, seq)` streams, and `microbench` pins the wheel-vs-heap
//!   events/sec ratio.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dichotomy_common::Timestamp;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: Timestamp,
    /// Tie-breaking sequence number assigned at insertion.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Mask extracting a slot index from a shifted timestamp.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Levels needed to cover a full 64-bit microsecond timeline (⌈64/6⌉).
const LEVELS: usize = 11;

/// A discrete-event queue with a built-in simulated clock, implemented as a
/// hierarchical timer wheel.
///
/// The clock only moves forward: popping an event advances `now()` to the
/// event's timestamp. Scheduling an event in the past is clamped to `now()`
/// (this can only happen through arithmetic underflow in a caller and would
/// otherwise silently reorder causality).
///
/// Wheel invariants: `start` (the indexing base) never exceeds any pending
/// event's time; an event is filed at the level of the highest 6-bit group
/// in which its time differs from `start` (level 0 when equal). A level-0
/// slot therefore holds events of exactly one microsecond tick, so popping
/// the minimum-`seq` entry of the earliest occupied slot reproduces the
/// `(time, seq)` total order exactly. Popping from a higher level first
/// cascades that slot's events down (each event re-files at a strictly
/// lower level), which is where the O(1)-amortized bound comes from: an
/// event cascades at most `LEVELS − 1` times in its lifetime.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` buckets, flattened (`level * SLOTS + slot`).
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// Per-level occupancy bitmaps (bit `s` set ⇔ `slots[l*SLOTS+s]` nonempty).
    occupied: [u64; LEVELS],
    /// Indexing base: ≤ every pending event's time.
    start: Timestamp,
    /// Number of events waiting.
    pending: usize,
    now: Timestamp,
    next_seq: u64,
    popped: u64,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            start: 0,
            pending: 0,
            now: 0,
            next_seq: 0,
            popped: 0,
            clamped: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events that were scheduled in the past and silently clamped
    /// to `now()`. A nonzero count usually points at arithmetic underflow in
    /// a caller; assertions on this keep causality bugs from hiding.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Level of the highest 6-bit group in which `time` differs from the
    /// wheel base (0 when equal: the event is due on the current tick group).
    fn level_of(&self, time: Timestamp) -> usize {
        let differing = time ^ self.start;
        if differing == 0 {
            0
        } else {
            ((63 - differing.leading_zeros()) / LEVEL_BITS) as usize
        }
    }

    fn file(&mut self, ev: ScheduledEvent<E>) {
        let level = self.level_of(ev.time);
        let slot = ((ev.time >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push(ev);
        self.occupied[level] |= 1 << slot;
    }

    /// Schedule `event` to fire at absolute time `at` (clamped to `now()`;
    /// clamps are counted, see [`clamped`](Self::clamped)).
    pub fn schedule_at(&mut self, at: Timestamp, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.file(ScheduledEvent { time, seq, event });
        self.pending += 1;
    }

    /// Schedule `event` to fire `delay` microseconds from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// The earliest occupied `(level, slot)`, or `None` when empty. Lower
    /// levels strictly precede higher ones (their events share more leading
    /// groups with `start`), and within a level the smallest occupied slot
    /// is earliest, so two `trailing_zeros` scans find the global minimum.
    fn earliest_bucket(&self) -> Option<(usize, usize)> {
        (0..LEVELS)
            .find(|&l| self.occupied[l] != 0)
            .map(|l| (l, self.occupied[l].trailing_zeros() as usize))
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        if self.pending == 0 {
            return None;
        }
        loop {
            let (level, slot) = self.earliest_bucket().expect("pending > 0");
            if level == 0 {
                // A level-0 slot holds exactly one tick: deliver its events
                // in seq order (they may have arrived out of order through
                // direct filing and cascades).
                let bucket = &mut self.slots[slot];
                let at = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.seq)
                    .map(|(i, _)| i)
                    .expect("occupied bit set on an empty slot");
                let ev = bucket.swap_remove(at);
                if bucket.is_empty() {
                    self.occupied[0] &= !(1 << slot);
                }
                self.pending -= 1;
                debug_assert!(ev.time >= self.now, "event queue moved backwards");
                self.now = ev.time;
                self.start = ev.time;
                self.popped += 1;
                return Some((ev.time, ev.event));
            }
            // Cascade: advance the base to this slot's group boundary and
            // re-file its events; each lands at a strictly lower level.
            let shift = LEVEL_BITS * level as u32;
            let above = match shift + LEVEL_BITS {
                64.. => 0,
                bits => !0u64 << bits,
            };
            self.start = (self.start & above) | ((slot as u64) << shift);
            self.occupied[level] &= !(1 << slot);
            let bucket = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            for ev in bucket {
                debug_assert!(self.level_of(ev.time) < level, "cascade must descend");
                self.file(ev);
            }
        }
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        let (level, slot) = self.earliest_bucket()?;
        if level == 0 {
            Some((self.start & !SLOT_MASK) | slot as u64)
        } else {
            // The earliest bucket of a higher level spans a time range; its
            // earliest member is the global minimum.
            self.slots[level * SLOTS + slot]
                .iter()
                .map(|e| e.time)
                .min()
        }
    }

    /// Advance the clock directly (used by drivers that mix event-driven and
    /// batch processing). Never moves backwards.
    pub fn advance_to(&mut self, t: Timestamp) {
        self.now = self.now.max(t);
    }
}

/// The original `BinaryHeap`-backed queue: same contract as [`EventQueue`],
/// O(log n) per operation. Retained as the reference implementation for the
/// wheel's differential tests and as the microbench baseline — production
/// code should use [`EventQueue`].
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: Timestamp,
    next_seq: u64,
    popped: u64,
    clamped: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            popped: 0,
            clamped: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of clamped (scheduled-in-the-past) events.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Schedule `event` at absolute time `at` (clamped to `now()`).
    pub fn schedule_at(&mut self, at: Timestamp, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedule `event` to fire `delay` microseconds from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "event queue moved backwards");
        self.now = ev.time;
        self.popped += 1;
        Some((ev.time, ev.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.time)
    }

    /// Advance the clock directly (never backwards).
    pub fn advance_to(&mut self, t: Timestamp) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(q.now(), 30);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        assert_eq!(q.pop(), Some((150, "second")));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_at(10, "late");
        assert_eq!(q.pop(), Some((100, "late")));
    }

    #[test]
    fn clamps_are_counted() {
        let mut q = EventQueue::new();
        assert_eq!(q.clamped(), 0);
        q.schedule_at(100, "a");
        q.pop();
        // Exactly at `now` is not a clamp; strictly before it is.
        q.schedule_at(100, "on-time");
        assert_eq!(q.clamped(), 0);
        q.schedule_at(99, "late");
        q.schedule_at(0, "very late");
        assert_eq!(q.clamped(), 2);
        // Clamped events still fire, at `now`.
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(100, "on-time"), (100, "late"), (100, "very late")]
        );
    }

    #[test]
    fn clamped_events_tie_break_by_insertion_seq_behind_on_time_events() {
        // Three events land on the same timestamp through different routes:
        // an on-time schedule, then two clamps. Delivery follows insertion
        // order — the (time, seq) tie-break — regardless of the requested
        // (pre-clamp) times.
        let mut q = EventQueue::new();
        q.schedule_at(50, 0u8);
        q.pop();
        q.schedule_at(50, 1u8);
        q.schedule_at(7, 2u8); // clamped to 50, seq after event 1
        q.schedule_at(49, 3u8); // clamped to 50, seq after event 2
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.clamped(), 2);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(500);
        q.advance_to(100);
        assert_eq!(q.now(), 500);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_reports_the_minimum_inside_a_coarse_wheel_bucket() {
        // Two events land in the same high-level slot (times 1_000_000 and
        // 1_000_005 share every 6-bit group above level 0 relative to base
        // 0 except the top differing one); peek must still report the
        // smaller time, not the bucket's lower bound.
        let mut q = EventQueue::new();
        q.schedule_at(1_000_005, "later");
        q.schedule_at(1_000_000, "sooner");
        assert_eq!(q.peek_time(), Some(1_000_000));
        assert_eq!(q.pop(), Some((1_000_000, "sooner")));
        assert_eq!(q.peek_time(), Some(1_000_005));
    }

    #[test]
    fn far_future_events_survive_every_wheel_level() {
        let mut q = EventQueue::new();
        q.schedule_at(u64::MAX, "heat death");
        q.schedule_at(u64::MAX - 1, "almost");
        q.schedule_at(1, "tomorrow");
        assert_eq!(q.pop(), Some((1, "tomorrow")));
        assert_eq!(q.peek_time(), Some(u64::MAX - 1));
        assert_eq!(q.pop(), Some((u64::MAX - 1, "almost")));
        assert_eq!(q.pop(), Some((u64::MAX, "heat death")));
        // Saturating relative scheduling at the end of time still fires.
        q.schedule_in(u64::MAX, "beyond");
        assert_eq!(q.pop(), Some((u64::MAX, "beyond")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heap_reference_queue_matches_the_contract() {
        let mut q = HeapEventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!((q.now(), q.delivered(), q.clamped()), (30, 3, 0));
        q.schedule_at(5, "late");
        assert_eq!(q.clamped(), 1);
        assert_eq!(q.pop(), Some((30, "late")));
    }
}
