//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties on simulated time
//! are broken by insertion order, which makes every run reproducible
//! regardless of the payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dichotomy_common::Timestamp;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: Timestamp,
    /// Tie-breaking sequence number assigned at insertion.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with a built-in simulated clock.
///
/// The clock only moves forward: popping an event advances `now()` to the
/// event's timestamp. Scheduling an event in the past is clamped to `now()`
/// (this can only happen through arithmetic underflow in a caller and would
/// otherwise silently reorder causality).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: Timestamp,
    next_seq: u64,
    popped: u64,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            popped: 0,
            clamped: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events that were scheduled in the past and silently clamped
    /// to `now()`. A nonzero count usually points at arithmetic underflow in
    /// a caller; assertions on this keep causality bugs from hiding.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Schedule `event` to fire at absolute time `at` (clamped to `now()`;
    /// clamps are counted, see [`clamped`](Self::clamped)).
    pub fn schedule_at(&mut self, at: Timestamp, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedule `event` to fire `delay` microseconds from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "event queue moved backwards");
        self.now = ev.time;
        self.popped += 1;
        Some((ev.time, ev.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.time)
    }

    /// Advance the clock directly (used by drivers that mix event-driven and
    /// batch processing). Never moves backwards.
    pub fn advance_to(&mut self, t: Timestamp) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(q.now(), 30);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        assert_eq!(q.pop(), Some((150, "second")));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_at(10, "late");
        assert_eq!(q.pop(), Some((100, "late")));
    }

    #[test]
    fn clamps_are_counted() {
        let mut q = EventQueue::new();
        assert_eq!(q.clamped(), 0);
        q.schedule_at(100, "a");
        q.pop();
        // Exactly at `now` is not a clamp; strictly before it is.
        q.schedule_at(100, "on-time");
        assert_eq!(q.clamped(), 0);
        q.schedule_at(99, "late");
        q.schedule_at(0, "very late");
        assert_eq!(q.clamped(), 2);
        // Clamped events still fire, at `now`.
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(100, "on-time"), (100, "late"), (100, "very late")]
        );
    }

    #[test]
    fn clamped_events_tie_break_by_insertion_seq_behind_on_time_events() {
        // Three events land on the same timestamp through different routes:
        // an on-time schedule, then two clamps. Delivery follows insertion
        // order — the (time, seq) tie-break — regardless of the requested
        // (pre-clamp) times.
        let mut q = EventQueue::new();
        q.schedule_at(50, 0u8);
        q.pop();
        q.schedule_at(50, 1u8);
        q.schedule_at(7, 2u8); // clamped to 50, seq after event 1
        q.schedule_at(49, 3u8); // clamped to 50, seq after event 2
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.clamped(), 2);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(500);
        q.advance_to(100);
        assert_eq!(q.now(), 500);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
