//! The CPU cost model.
//!
//! Every unit of computation a simulated node performs — hashing a node of an
//! authenticated index, verifying an endorsement signature, parsing a SQL
//! statement, reading a record out of the storage engine — is charged in
//! simulated microseconds through this table. The default values are
//! calibrated against the per-phase latency breakdowns the paper reports:
//!
//! * Figure 8b: Fabric query path = client authentication 4 294 µs +
//!   chaincode simulation 406 µs + endorsement signing 59 µs; TiDB query path
//!   = SQL parse 16 µs + compile 15 µs + storage get 275 µs.
//! * Figure 11b / Section 5.3.3: the cost of reconstructing Quorum's Merkle
//!   Patricia Trie for one record update grows from 56 µs for 10-byte records
//!   to ≈2.5 ms for 5 000-byte records; the structural node count comes from
//!   the real MPT in `dichotomy-merkle`, and the per-node / per-byte terms
//!   here supply the time.
//! * Section 5.2.1: a saturated Fabric peer spends ≈42 % of block validation
//!   verifying signatures, which pins the ratio between signature
//!   verification and the rest of the commit path.
//!
//! Keeping every constant in one struct makes the calibration auditable and
//! lets ablation benches ask "what if signatures were free?" by zeroing a
//! single field.

use dichotomy_common::codec::Encode;

/// CPU cost constants, all in microseconds (`_us`) or microseconds per byte
/// (`_per_byte_us`).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // --- cryptography ---------------------------------------------------
    /// Fixed cost of one hash invocation (setup + finalization).
    pub hash_base_us: f64,
    /// Per-byte cost of hashing.
    pub hash_per_byte_us: f64,
    /// Creating one digital signature (Fabric endorsement ≈ 59 µs).
    pub sig_sign_us: f64,
    /// Verifying one digital signature (ECDSA verify on the testbed CPU).
    pub sig_verify_us: f64,
    /// Authenticating a client request end-to-end (certificate chain checks,
    /// MSP lookup); dominates Fabric's read path (Figure 8b: 4 294 µs).
    pub client_auth_us: f64,

    // --- smart-contract execution ----------------------------------------
    /// Fixed cost of simulating/executing one chaincode invocation against
    /// the state DB (Fabric "simulation" ≈ 406 µs).
    pub chaincode_exec_base_us: f64,
    /// Fixed cost of executing one EVM contract invocation.
    pub evm_exec_base_us: f64,
    /// Per-payload-byte cost of EVM execution (copying calldata, SSTORE
    /// costs grow with value size).
    pub evm_exec_per_byte_us: f64,

    // --- SQL layer --------------------------------------------------------
    /// Parsing one SQL statement (TiDB ≈ 16 µs).
    pub sql_parse_us: f64,
    /// Compiling/planning one SQL statement (TiDB ≈ 15 µs).
    pub sql_compile_us: f64,
    /// Transaction-coordinator bookkeeping per statement: TSO round trip,
    /// gRPC marshalling, plan-cache and latch management on the TiDB server.
    /// This, not parsing, is what separates TiDB's ≈5 K tps from raw TiKV's
    /// ≈13 K tps in Figure 4a.
    pub sql_coordinate_us: f64,

    // --- storage engine ---------------------------------------------------
    /// Fixed cost of one point read from the replicated storage engine
    /// through its full stack (TiKV/LevelDB get ≈ 275 µs in Figure 8b).
    pub storage_get_base_us: f64,
    /// Per-byte cost of a read.
    pub storage_get_per_byte_us: f64,
    /// Fixed cost of one write into the storage engine (memtable + WAL).
    pub storage_put_base_us: f64,
    /// Per-byte cost of a write.
    pub storage_put_per_byte_us: f64,
    /// Per-node bookkeeping cost when updating an authenticated index
    /// (allocating/encoding a trie node, hashing it and writing it to the
    /// node store); covers the fixed-size interior nodes.
    pub adr_node_update_us: f64,
    /// Per-byte cost of re-encoding, re-hashing and persisting the leaf
    /// payload of an authenticated index update.
    pub adr_leaf_per_byte_us: f64,

    // --- consensus node-local work ----------------------------------------
    /// Leader CPU per entry appended to a replicated log (marshalling,
    /// follower bookkeeping).
    pub log_append_us: f64,
    /// CPU to validate one block header + chain linkage on receipt.
    pub block_header_check_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

impl CostModel {
    /// The default calibration described in the module documentation.
    pub fn calibrated() -> Self {
        CostModel {
            hash_base_us: 0.5,
            hash_per_byte_us: 0.003,
            sig_sign_us: 59.0,
            sig_verify_us: 210.0,
            client_auth_us: 4294.0,
            chaincode_exec_base_us: 406.0,
            evm_exec_base_us: 45.0,
            evm_exec_per_byte_us: 0.02,
            sql_parse_us: 16.0,
            sql_compile_us: 15.0,
            sql_coordinate_us: 550.0,
            storage_get_base_us: 275.0,
            storage_get_per_byte_us: 0.002,
            storage_put_base_us: 25.0,
            storage_put_per_byte_us: 0.01,
            adr_node_update_us: 5.5,
            adr_leaf_per_byte_us: 0.45,
            log_append_us: 8.0,
            block_header_check_us: 15.0,
        }
    }

    /// A cost model with all cryptography zeroed; used by ablation benches to
    /// quantify the "security overhead" the paper attributes to blockchains.
    pub fn without_crypto(mut self) -> Self {
        self.hash_base_us = 0.0;
        self.hash_per_byte_us = 0.0;
        self.sig_sign_us = 0.0;
        self.sig_verify_us = 0.0;
        self.client_auth_us = 0.0;
        self
    }

    /// Cost of hashing `bytes` bytes.
    pub fn hash_us(&self, bytes: usize) -> u64 {
        (self.hash_base_us + self.hash_per_byte_us * bytes as f64).ceil() as u64
    }

    /// Cost of verifying `count` signatures.
    pub fn verify_signatures_us(&self, count: usize) -> u64 {
        (self.sig_verify_us * count as f64).ceil() as u64
    }

    /// Cost of producing one signature.
    pub fn sign_us(&self) -> u64 {
        self.sig_sign_us.ceil() as u64
    }

    /// Cost of authenticating one client request.
    pub fn client_auth(&self) -> u64 {
        self.client_auth_us.ceil() as u64
    }

    /// Cost of simulating one chaincode invocation that touches
    /// `ops` keys with a total payload of `payload_bytes`.
    pub fn chaincode_exec_us(&self, ops: usize, payload_bytes: usize) -> u64 {
        (self.chaincode_exec_base_us
            + ops as f64 * self.storage_get_base_us * 0.2
            + payload_bytes as f64 * self.evm_exec_per_byte_us)
            .ceil() as u64
    }

    /// Cost of executing one EVM transaction with the given payload size.
    pub fn evm_exec_us(&self, payload_bytes: usize) -> u64 {
        (self.evm_exec_base_us + self.evm_exec_per_byte_us * payload_bytes as f64).ceil() as u64
    }

    /// Cost of parsing + planning one SQL statement.
    pub fn sql_frontend_us(&self) -> u64 {
        (self.sql_parse_us + self.sql_compile_us).ceil() as u64
    }

    /// Cost of one point read of `bytes` bytes from the storage engine.
    pub fn storage_get_us(&self, bytes: usize) -> u64 {
        (self.storage_get_base_us + self.storage_get_per_byte_us * bytes as f64).ceil() as u64
    }

    /// Cost of one write of `bytes` bytes into the storage engine.
    pub fn storage_put_us(&self, bytes: usize) -> u64 {
        (self.storage_put_base_us + self.storage_put_per_byte_us * bytes as f64).ceil() as u64
    }

    /// Cost of updating an authenticated data structure along a path of
    /// `nodes` interior/extension nodes whose leaf payload is `leaf_bytes`
    /// bytes: each interior node is re-encoded, re-hashed and written back at
    /// a fixed per-node cost, and the leaf pays a per-byte cost.
    ///
    /// With the default calibration and the real MPT's node counts this
    /// reproduces the 56 µs → 2.5 ms growth of Section 5.3.3.
    pub fn adr_update_us(&self, nodes: usize, leaf_bytes: usize) -> u64 {
        (nodes as f64 * self.adr_node_update_us + leaf_bytes as f64 * self.adr_leaf_per_byte_us)
            .ceil() as u64
    }

    /// Leader-side CPU for appending `entries` entries to a replicated log.
    pub fn log_append_us(&self, entries: usize) -> u64 {
        (self.log_append_us * entries as f64).ceil() as u64
    }

    /// CPU to check a received block header.
    pub fn block_header_check(&self) -> u64 {
        self.block_header_check_us.ceil() as u64
    }
}

impl Encode for CostModel {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.hash_base_us.encode_into(out);
        self.hash_per_byte_us.encode_into(out);
        self.sig_sign_us.encode_into(out);
        self.sig_verify_us.encode_into(out);
        self.client_auth_us.encode_into(out);
        self.chaincode_exec_base_us.encode_into(out);
        self.evm_exec_base_us.encode_into(out);
        self.evm_exec_per_byte_us.encode_into(out);
        self.sql_parse_us.encode_into(out);
        self.sql_compile_us.encode_into(out);
        self.sql_coordinate_us.encode_into(out);
        self.storage_get_base_us.encode_into(out);
        self.storage_get_per_byte_us.encode_into(out);
        self.storage_put_base_us.encode_into(out);
        self.storage_put_per_byte_us.encode_into(out);
        self.adr_node_update_us.encode_into(out);
        self.adr_leaf_per_byte_us.encode_into(out);
        self.log_append_us.encode_into(out);
        self.block_header_check_us.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        19 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_query_path_matches_figure_8b() {
        let c = CostModel::calibrated();
        // Authentication + simulation + endorsement ≈ 4.3 ms + 0.4 ms + 59 µs.
        let total = c.client_auth() + c.chaincode_exec_us(1, 1000) + c.sign_us();
        assert!(total > 4_600 && total < 5_600, "total {total}");
    }

    #[test]
    fn tidb_query_path_matches_figure_8b() {
        let c = CostModel::calibrated();
        let total = c.sql_frontend_us() + c.storage_get_us(1000);
        assert!(total > 280 && total < 360, "total {total}");
    }

    #[test]
    fn mpt_update_cost_scales_like_section_5_3_3() {
        let c = CostModel::calibrated();
        // ~9 trie nodes touched for a single-record update; the leaf payload
        // is the record value.
        let small = c.adr_update_us(9, 10);
        let large = c.adr_update_us(9, 5000);
        assert!(small >= 40 && small <= 120, "small {small}");
        assert!(large >= 1_800 && large <= 3_500, "large {large}");
        assert!(large > small * 15);
    }

    #[test]
    fn crypto_free_model_zeroes_only_crypto() {
        let c = CostModel::calibrated().without_crypto();
        assert_eq!(c.client_auth(), 0);
        assert_eq!(c.sign_us(), 0);
        assert_eq!(c.verify_signatures_us(10), 0);
        assert_eq!(c.hash_us(1_000_000), 0);
        // Non-crypto costs untouched.
        assert!(c.storage_get_us(100) > 0);
        assert!(c.sql_frontend_us() > 0);
    }

    #[test]
    fn costs_are_monotone_in_size() {
        let c = CostModel::calibrated();
        assert!(c.hash_us(10_000) > c.hash_us(10));
        assert!(c.storage_put_us(5_000) > c.storage_put_us(10));
        assert!(c.storage_get_us(5_000) >= c.storage_get_us(10));
        assert!(c.evm_exec_us(5_000) > c.evm_exec_us(10));
        assert!(c.adr_update_us(20, 100) > c.adr_update_us(2, 100));
    }

    #[test]
    fn signature_batch_cost_is_linear() {
        let c = CostModel::calibrated();
        assert_eq!(c.verify_signatures_us(10), 10 * c.verify_signatures_us(1));
        assert_eq!(c.log_append_us(5), 5 * c.log_append_us(1));
    }
}
