//! Smoke coverage of the full experiment dispatch table: every id in
//! `EXPERIMENTS` must produce a non-empty report in quick mode (the quick
//! path scales the heavyweight sweeps down), seeded runs must be bit-for-bit
//! reproducible, and the `--json` document must be valid JSON covering every
//! experiment.

use dichotomy_bench::{json, run_experiment, run_report, run_report_with, RunOptions, EXPERIMENTS};
use dichotomy_core::scenario::ExecOptions;

#[test]
fn every_experiment_produces_a_nonempty_quick_report() {
    for id in EXPERIMENTS {
        let out = run_experiment(id, true)
            .unwrap_or_else(|| panic!("experiment '{id}' missing from the dispatch table"));
        assert!(
            !out.trim().is_empty(),
            "experiment '{id}' produced an empty report"
        );
    }
}

#[test]
fn quick_reports_are_reproducible() {
    // Everything is seeded; two runs of the same experiment must agree
    // byte for byte. One cheap simulation-backed id suffices here — the full
    // table is covered above and a repro invocation is checked in CI.
    assert_eq!(run_experiment("tab05", true), run_experiment("tab05", true));
}

#[test]
fn seeded_reports_differ_across_seeds_but_not_within_one() {
    let at_seed = |seed: u64| {
        run_report(
            "tab05",
            &RunOptions {
                seed,
                ..RunOptions::quick()
            },
        )
        .unwrap()
    };
    assert_eq!(at_seed(5).rows, at_seed(5).rows);
    assert_ne!(at_seed(5).rows, at_seed(6).rows);
}

#[test]
fn unknown_ids_are_rejected() {
    assert!(run_experiment("fig99", true).is_none());
}

#[test]
fn worker_count_does_not_change_a_seeded_report() {
    // The harness-level view of the determinism guarantee: one simulation-
    // backed experiment and the fault scenario, byte-for-byte across worker
    // counts (the exhaustive per-system-kind check lives in dichotomy-core).
    let opts = RunOptions::quick();
    for id in ["tab05", "fault01"] {
        let sequential = run_report_with(id, &opts, &ExecOptions::with_jobs(1)).unwrap();
        let parallel = run_report_with(id, &opts, &ExecOptions::with_jobs(8)).unwrap();
        assert_eq!(sequential, parallel, "{id}");
        assert_eq!(
            json::report(id, &sequential),
            json::report(id, &parallel),
            "{id}"
        );
    }
}

#[test]
fn a_zero_row_plan_serializes_to_a_valid_empty_document() {
    // Regression: an empty sweep expands to a zero-row plan; run_plan must
    // return an empty report and `repro --json` must still emit a document
    // that parses.
    use dichotomy_core::scenario::{run_plan, ExperimentPlan};
    let plan = ExperimentPlan {
        id: "Empty",
        title: "zero rows",
        rows: Vec::new(),
        text: None,
        diagnostics: Vec::new(),
    };
    let report = run_plan(&plan);
    assert!(report.rows.is_empty() && report.failures.is_empty());
    let doc = json::document(true, None, 7, &[("empty".to_string(), report)]);
    let value = parse_json(&doc).expect("zero-row reports must serialize to valid JSON");
    let experiments = value.get("experiments").and_then(Json::as_array).unwrap();
    assert_eq!(experiments.len(), 1);
    assert!(experiments[0]
        .get("rows")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());
}

#[test]
fn the_json_document_is_valid_and_covers_every_experiment() {
    // Keep the runtime in check: the cheap ids exercise rows, NaN → null
    // (fig15's missing reported numbers) and preformatted text (tab02).
    let opts = RunOptions::quick();
    let reports: Vec<_> = ["fig13", "fig15", "tab02", "fault01"]
        .iter()
        .map(|id| (id.to_string(), run_report(id, &opts).unwrap()))
        .collect();
    let doc = json::document(true, None, opts.seed, &reports);
    let value = parse_json(&doc).expect("repro --json output must parse as JSON");

    let experiments = value
        .get("experiments")
        .and_then(Json::as_array)
        .expect("document has an experiments array");
    assert_eq!(experiments.len(), 4);
    // fault01 drives a workload: its row carries a windowed time series.
    let fault01 = &experiments[3];
    let fault_rows = fault01.get("rows").and_then(Json::as_array).unwrap();
    let series = fault_rows[0]
        .get("series")
        .and_then(Json::as_array)
        .expect("driving rows carry a series array");
    assert_eq!(series.len(), 1);
    let windows = series[0]
        .get("windows")
        .and_then(Json::as_array)
        .expect("series has windows");
    assert!(!windows.is_empty());
    assert!(windows[0].get("tps").is_some() && windows[0].get("p95_us").is_some());
    // fig13 carries rows with finite values.
    let fig13 = &experiments[0];
    let rows = fig13.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 4);
    // fig15's missing reported numbers serialize as null, not NaN.
    assert!(!doc.contains("NaN"));
    // tab02 is qualitative: empty rows, non-null text.
    let tab02 = &experiments[2];
    assert!(tab02
        .get("rows")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());
    assert!(matches!(tab02.get("text"), Some(Json::String(s)) if s.contains("Quorum")));
}

// --- A minimal JSON parser, test-only, to validate the writer without an
// --- external crate.

#[derive(Debug)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let bytes: Vec<char> = s.chars().collect();
    let mut pos = 0;
    let value = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at {pos}"));
    }
    Ok(value)
}

fn skip_ws(s: &[char], pos: &mut usize) {
    while *pos < s.len() && s[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(s: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if s.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{c}' at {pos}"))
    }
}

fn parse_value(s: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(s, pos);
    match s.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(s, pos);
            if s.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(s, pos);
                let key = match parse_value(s, pos)? {
                    Json::String(k) => k,
                    other => return Err(format!("non-string key {other:?}")),
                };
                skip_ws(s, pos);
                expect(s, pos, ':')?;
                fields.push((key, parse_value(s, pos)?));
                skip_ws(s, pos);
                match s.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(s, pos);
            if s.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(s, pos)?);
                skip_ws(s, pos);
                match s.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match s.get(*pos) {
                    Some('"') => {
                        *pos += 1;
                        return Ok(Json::String(out));
                    }
                    Some('\\') => {
                        *pos += 1;
                        match s.get(*pos) {
                            Some('"') => out.push('"'),
                            Some('\\') => out.push('\\'),
                            Some('/') => out.push('/'),
                            Some('n') => out.push('\n'),
                            Some('r') => out.push('\r'),
                            Some('t') => out.push('\t'),
                            Some('u') => {
                                let hex: String = s[*pos + 1..*pos + 5].iter().collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                out.push(char::from_u32(code).ok_or("bad codepoint")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(c) if (*c as u32) >= 0x20 => {
                        out.push(*c);
                        *pos += 1;
                    }
                    other => return Err(format!("bad string char {other:?}")),
                }
            }
        }
        Some('t') if s[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if s[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if s[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while *pos < s.len() && (s[*pos].is_ascii_digit() || "+-.eE".contains(s[*pos])) {
                *pos += 1;
            }
            let text: String = s[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Number)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
        other => Err(format!("unexpected {other:?} at {pos}")),
    }
}
