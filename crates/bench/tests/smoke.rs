//! Smoke coverage of the full experiment dispatch table: every id in
//! `EXPERIMENTS` must produce a non-empty report in quick mode (the quick
//! path scales the heavyweight sweeps down), and seeded runs must be
//! bit-for-bit reproducible.

use dichotomy_bench::{run_experiment, EXPERIMENTS};

#[test]
fn every_experiment_produces_a_nonempty_quick_report() {
    for id in EXPERIMENTS {
        let out = run_experiment(id, true)
            .unwrap_or_else(|| panic!("experiment '{id}' missing from the dispatch table"));
        assert!(!out.trim().is_empty(), "experiment '{id}' produced an empty report");
    }
}

#[test]
fn quick_reports_are_reproducible() {
    // Everything is seeded; two runs of the same experiment must agree
    // byte for byte. One cheap simulation-backed id suffices here — the full
    // table is covered above and a repro invocation is checked in CI.
    assert_eq!(run_experiment("tab05", true), run_experiment("tab05", true));
}

#[test]
fn unknown_ids_are_rejected() {
    assert!(run_experiment("fig99", true).is_none());
}
