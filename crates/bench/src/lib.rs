//! The benchmark harness crate.
//!
//! * `cargo run -p dichotomy-bench --release --bin repro -- <experiment>`
//!   regenerates a single table/figure (`fig04` … `fig15`, `tab02`, `tab04`,
//!   `tab05`) or `all` of them, printing the same rows the paper reports.
//! * `cargo bench -p dichotomy-bench` runs the Criterion microbenchmarks over
//!   the substrates (hashing, MPT/MBT updates, OCC validation, consensus
//!   profiles) that the system models are built from.
//!
//! The experiment implementations live in
//! [`dichotomy_core::experiments`]; this crate only provides entry points.

use dichotomy_core::experiments as exp;

/// Every experiment the harness can run, with its identifier.
pub const EXPERIMENTS: &[&str] = &[
    "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "tab02", "tab04", "tab05",
];

/// Run one experiment by id and return its printable report. `quick` scales
/// the transaction counts down for smoke runs.
pub fn run_experiment(id: &str, quick: bool) -> Option<String> {
    let n: u64 = if quick { 300 } else { 2_000 };
    let report = match id {
        "fig04" => exp::fig04_peak_throughput(n).render(),
        "fig05" => exp::fig05_latency(n / 4).render(),
        "fig06" => exp::fig06_smallbank(n).render(),
        "fig07" => exp::fig07_cft_vs_bft(n).render(),
        "fig08" => exp::fig08_latency_breakdown(n).render(),
        "fig09" => exp::fig09_skew(n, &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]).render(),
        "fig10" => exp::fig10_opcount(n, &[1, 2, 4, 6, 8, 10]).render(),
        "fig11" => exp::fig11_record_size(n, &[10, 100, 1000, 5000]).render(),
        "fig12" => exp::fig12_storage(if quick { 500 } else { 2_000 }, &[10, 100, 1000, 5000]).render(),
        "fig13" => exp::fig13_adr_overhead(if quick { 2_000 } else { 10_000 }, &[10, 100, 1000, 5000]).render(),
        "fig14" => exp::fig14_sharding(n, &[1, 4, 8, 16]).render(),
        "fig15" => exp::fig15_hybrid_forecast().render(),
        "tab02" => exp::tab02_taxonomy(),
        "tab04" => exp::tab04_scaling(n, &[3, 7, 11, 15, 19]).render(),
        "tab05" => exp::tab05_tidb_matrix(n / 2, &[3, 7, 11]).render(),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs_in_quick_mode() {
        // The heavyweight sweeps are exercised by the bin and by
        // dichotomy-core's tests; here we check the dispatch table for the
        // cheap ones so `cargo test` stays fast.
        for id in ["fig13", "fig15", "tab02"] {
            let out = run_experiment(id, true).expect("known experiment");
            assert!(!out.is_empty());
        }
        assert!(run_experiment("nope", true).is_none());
        assert_eq!(EXPERIMENTS.len(), 15);
    }
}
