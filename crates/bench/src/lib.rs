//! The benchmark harness crate.
//!
//! * `cargo run -p dichotomy-bench --release --bin repro -- <experiment>`
//!   regenerates a single table/figure (`fig04` … `fig15`, `tab02`, `tab04`,
//!   `tab05`), the fault scenario (`fault01`), or `all` of them, printing
//!   the same rows the paper reports.
//!   `--list` enumerates the experiments, `--txns`/`--seed` rescale and
//!   reseed the runs, and `--json PATH` writes every report as a
//!   machine-readable document (see [`json`]).
//! * `cargo run -p dichotomy-bench --release --bin microbench` runs the
//!   dependency-free microbenchmarks over the substrates (hashing, MPT/MBT
//!   updates, OCC validation, consensus profiles).
//!
//! The experiment *plans* live in [`dichotomy_core::experiments`]; this
//! crate scales them (quick vs full), executes them through the generic
//! `run_plan` engine and serializes the reports.

pub mod cache;
pub mod json;

use dichotomy_core::driver::ArrivalSpec;
use dichotomy_core::experiments::{self as exp, ExperimentReport};
use dichotomy_core::metrics::MetricsMode;
use dichotomy_core::scenario::{run_plan, run_plan_with, ExecOptions, ExperimentPlan, Probe};
use dichotomy_core::systems::SystemRegistry;

/// Every experiment the harness can run, with its identifier.
pub const EXPERIMENTS: &[&str] = &[
    "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "tab02", "tab04", "tab05", "fault01", "closed01", "ramp01", "scale01",
    "chaos01",
];

/// A repro-level override of the arrival process of every driving probe in
/// a plan (`repro --arrival/--think-us/--outstanding`): probe any existing
/// experiment under a different client model without writing a new plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalOverride {
    /// Force the open-loop default at each probe's configured offered rate.
    Open,
    /// Force a closed loop: the client count comes from each probe's driver
    /// config (`clients`), think time and outstanding cap from the flags.
    Closed {
        /// Mean think time (µs).
        think_time_us: u64,
        /// Per-client outstanding-request cap.
        max_outstanding: u64,
    },
}

/// How to scale and seed a run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Scale the transaction counts down for smoke runs.
    pub quick: bool,
    /// Override the per-experiment transaction/record count.
    pub txns: Option<u64>,
    /// RNG seed threaded through systems, workloads and the driver.
    pub seed: u64,
    /// Replace the arrival process of every driving probe.
    pub arrival: Option<ArrivalOverride>,
    /// Replace the metrics mode of every driving probe
    /// (`repro --metrics exact|streaming`). `None` keeps each plan's own
    /// choice: Exact everywhere except `scale01`.
    pub metrics: Option<MetricsMode>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            quick: false,
            txns: None,
            seed: dichotomy_core::common::rng::DEFAULT_SEED,
            arrival: None,
            metrics: None,
        }
    }
}

impl RunOptions {
    /// Quick-mode options.
    pub fn quick() -> Self {
        RunOptions {
            quick: true,
            ..RunOptions::default()
        }
    }

    /// The driven transaction count: the override, or the mode default.
    fn txns(&self) -> u64 {
        self.txns.unwrap_or(if self.quick { 300 } else { 2_000 })
    }

    /// The record count for the storage experiment (fig12).
    fn storage_records(&self) -> u64 {
        self.txns.unwrap_or(if self.quick { 500 } else { 2_000 })
    }

    /// The record count for the authenticated-index experiment (fig13).
    fn adr_records(&self) -> u64 {
        self.txns.unwrap_or(if self.quick { 2_000 } else { 10_000 })
    }

    /// The per-row transaction budget of the engine-scale experiment
    /// (scale01): large enough in full mode that every one of the million
    /// top-row clients issues at least one transaction.
    fn scale_txns(&self) -> u64 {
        self.txns
            .unwrap_or(if self.quick { 4_000 } else { 1_200_000 })
    }

    /// The client populations scale01 sweeps: the full million-client ladder,
    /// or a three-row miniature with the same knee shape for smoke runs.
    fn scale_clients(&self) -> Vec<u64> {
        if self.quick {
            vec![8, 64, 2_000]
        } else {
            exp::SCALE01_CLIENTS.to_vec()
        }
    }
}

/// Build the plan for one experiment id under the given options. Returns
/// `None` for unknown ids.
pub fn plan_for(id: &str, opts: &RunOptions) -> Option<ExperimentPlan> {
    let n = opts.txns();
    let seed = opts.seed;
    let plan = match id {
        "fig04" => exp::fig04_plan(n, seed),
        "fig05" => exp::fig05_plan(n / 4, seed),
        "fig06" => exp::fig06_plan(n, seed),
        "fig07" => exp::fig07_plan(n, seed),
        "fig08" => exp::fig08_plan(n, seed),
        "fig09" => exp::fig09_plan(n, &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0], seed),
        "fig10" => exp::fig10_plan(n, &[1, 2, 4, 6, 8, 10], seed),
        "fig11" => exp::fig11_plan(n, &[10, 100, 1000, 5000], seed),
        "fig12" => exp::fig12_plan(opts.storage_records(), &[10, 100, 1000, 5000], seed),
        "fig13" => exp::fig13_plan(opts.adr_records(), &[10, 100, 1000, 5000]),
        "fig14" => exp::fig14_plan(n, &[1, 4, 8, 16], seed),
        "fig15" => exp::fig15_plan(),
        "tab02" => exp::tab02_plan(),
        "tab04" => exp::tab04_plan(n, &[3, 7, 11, 15, 19], seed),
        "tab05" => exp::tab05_plan(n / 2, &[3, 7, 11], seed),
        "fault01" => exp::fault01_plan(n, seed),
        "closed01" => exp::closed01_plan(n, seed),
        "ramp01" => exp::ramp01_plan(n, seed),
        "scale01" => exp::scale01_plan(opts.scale_txns(), &opts.scale_clients(), seed),
        // The fault schedules derive from the plan's arrival span, which
        // derives from `n` — so `--quick` (and `--txns`) rescale the fault
        // timestamps together with the shortened run.
        "chaos01" => exp::chaos01_plan(n, seed),
        _ => return None,
    };
    let plan = apply_arrival_override(plan, opts.arrival);
    Some(apply_metrics_override(plan, opts.metrics))
}

/// Rewrite every driving probe's arrival spec per the override (no-op
/// without one).
fn apply_arrival_override(
    mut plan: ExperimentPlan,
    over: Option<ArrivalOverride>,
) -> ExperimentPlan {
    let Some(over) = over else { return plan };
    for row in &mut plan.rows {
        for run in &mut row.runs {
            if let Probe::Drive { driver, .. } = &mut run.probe {
                driver.arrival = match over {
                    ArrivalOverride::Open => None,
                    ArrivalOverride::Closed {
                        think_time_us,
                        max_outstanding,
                    } => Some(ArrivalSpec::ClosedLoop {
                        clients: driver.clients,
                        think_time_us,
                        max_outstanding,
                    }),
                };
            }
        }
    }
    plan
}

/// Rewrite every driving probe's metrics mode per the override (no-op
/// without one).
fn apply_metrics_override(mut plan: ExperimentPlan, over: Option<MetricsMode>) -> ExperimentPlan {
    let Some(mode) = over else { return plan };
    for row in &mut plan.rows {
        for run in &mut row.runs {
            if let Probe::Drive { driver, .. } = &mut run.probe {
                driver.metrics = mode;
            }
        }
    }
    plan
}

/// Run one experiment by id and return its structured report.
pub fn run_report(id: &str, opts: &RunOptions) -> Option<ExperimentReport> {
    plan_for(id, opts).map(|plan| run_plan(&plan))
}

/// Run one experiment by id under explicit execution options (worker count,
/// progress callback) — what `repro --jobs/--progress` goes through.
pub fn run_report_with(
    id: &str,
    opts: &RunOptions,
    exec: &ExecOptions,
) -> Option<ExperimentReport> {
    plan_for(id, opts).map(|plan| run_plan_with(&plan, &SystemRegistry::with_builtins(), exec))
}

/// Run one experiment by id and return its printable report. `quick` scales
/// the transaction counts down for smoke runs.
pub fn run_experiment(id: &str, quick: bool) -> Option<String> {
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    run_report(id, &opts).map(|report| report.render())
}

/// Whether any driving probe of the plan carries a non-empty fault schedule
/// (the `repro --list` `[faults]` marker).
pub fn plan_has_faults(plan: &ExperimentPlan) -> bool {
    plan.rows.iter().any(|row| {
        row.runs.iter().any(|run| match &run.probe {
            Probe::Drive { system, .. } => system.faults.as_ref().is_some_and(|f| !f.is_empty()),
            _ => false,
        })
    })
}

/// (id, report id, title, carries faults) for every experiment, for
/// `repro --list`.
pub fn list_experiments() -> Vec<(&'static str, &'static str, &'static str, bool)> {
    let opts = RunOptions::quick();
    EXPERIMENTS
        .iter()
        .filter_map(|id| {
            plan_for(id, &opts).map(|plan| (*id, plan.id, plan.title, plan_has_faults(&plan)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs_in_quick_mode() {
        // The heavyweight sweeps are exercised by the bin and by
        // dichotomy-core's tests; here we check the dispatch table for the
        // cheap ones so `cargo test` stays fast.
        for id in ["fig13", "fig15", "tab02"] {
            let out = run_experiment(id, true).expect("known experiment");
            assert!(!out.is_empty());
        }
        assert!(run_experiment("nope", true).is_none());
        assert_eq!(EXPERIMENTS.len(), 20);
    }

    #[test]
    fn repro_all_contains_duplicate_probes_the_engine_dedups() {
        // `repro all` runs every plan on one pool; probes are deduplicated
        // by content key across ALL of them. The suite genuinely contains
        // duplicates (e.g. fig04/fig11 share baseline cells), so the
        // distinct-key count must come in strictly below the probe count —
        // if this ever fails the dedup layer has nothing to dedup and the
        // `dedup_saved_ms` accounting is vacuous.
        use dichotomy_core::scenario::probe_key_bytes;
        use std::collections::HashSet;
        let opts = RunOptions::quick();
        let mut total = 0usize;
        let mut distinct: HashSet<Vec<u8>> = HashSet::new();
        for id in EXPERIMENTS {
            let plan = plan_for(id, &opts).expect("known experiment");
            if *id == "tab02" {
                // The only text-only plan: zero probes, excluded from bench
                // timings by `repro` (the 0-row/0-ms history-noise fix).
                assert_eq!(plan.probe_count(), 0);
            }
            for row in &plan.rows {
                for run in &row.runs {
                    total += 1;
                    distinct.insert(probe_key_bytes(&run.probe));
                }
            }
        }
        assert!(
            distinct.len() < total,
            "expected duplicate probes across `repro all`: {total} probes, {} distinct",
            distinct.len()
        );
        assert!(total > 0 && !distinct.is_empty());
    }

    #[test]
    fn scale01_quick_run_shows_the_littles_law_knee() {
        // The miniature ladder (8 / 64 / 2000 clients at one-second think
        // times): the unsaturated rows track Little's law — tps scales with
        // the population — and the top row saturates, so throughput stops
        // scaling linearly while latency inflects upward.
        let report = run_report("scale01", &RunOptions::quick()).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert!(report.failures.is_empty());
        let tps: Vec<f64> = [8u64, 64, 2_000]
            .iter()
            .map(|c| report.value(&format!("{c} clients"), "tps").unwrap())
            .collect();
        assert!(
            tps[1] > tps[0] * 4.0,
            "unsaturated rows scale with clients: {tps:?}"
        );
        assert!(
            tps[2] > tps[1],
            "the top row still adds throughput: {tps:?}"
        );
        assert!(
            tps[2] < tps[1] * (2_000.0 / 64.0) * 0.8,
            "the top row is past the knee, well off linear scaling: {tps:?}"
        );
    }

    #[test]
    fn arrival_override_rewrites_every_driving_probe() {
        let closed = RunOptions {
            arrival: Some(ArrivalOverride::Closed {
                think_time_us: 750,
                max_outstanding: 2,
            }),
            ..RunOptions::quick()
        };
        let plan = plan_for("fig06", &closed).unwrap();
        for row in &plan.rows {
            for run in &row.runs {
                match &run.probe {
                    Probe::Drive { driver, .. } => {
                        assert_eq!(
                            driver.arrival,
                            Some(ArrivalSpec::ClosedLoop {
                                clients: driver.clients,
                                think_time_us: 750,
                                max_outstanding: 2,
                            })
                        );
                    }
                    _ => panic!("fig06 only drives"),
                }
            }
        }
        // `--arrival open` strips even an experiment's own closed-loop spec.
        let open = RunOptions {
            arrival: Some(ArrivalOverride::Open),
            ..RunOptions::quick()
        };
        let plan = plan_for("closed01", &open).unwrap();
        match &plan.rows[0].runs[0].probe {
            Probe::Drive { driver, .. } => assert_eq!(driver.arrival, None),
            _ => panic!("closed01 drives"),
        }
        // A closed-loop override still runs end to end.
        let report = run_report("fig13", &closed).expect("non-driving plans are untouched");
        assert!(!report.rows.is_empty());
    }

    #[test]
    fn closed01_and_ramp01_are_dispatchable_and_windowed() {
        let closed = run_report("closed01", &RunOptions::quick()).unwrap();
        assert_eq!(closed.rows.len(), 7);
        assert!(closed.failures.is_empty());
        let ramp = run_report("ramp01", &RunOptions::quick()).unwrap();
        assert_eq!(ramp.rows.len(), 1);
        assert!(ramp.failures.is_empty());
        let series = &ramp.rows[0].series[0].series;
        assert!(!series.is_empty());
        // The offered side of the windows carries the ramp.
        assert!(series.windows.iter().any(|w| w.submitted > 0));
    }

    #[test]
    fn fault01_smoke_run_reports_a_windowed_series() {
        let report = run_report("fault01", &RunOptions::quick()).expect("known experiment");
        assert_eq!(report.rows.len(), 1);
        let series = &report.rows[0].series;
        assert_eq!(series.len(), 1);
        assert!(!series[0].series.is_empty());
        // The crash dip: at least one interior window with zero commits.
        assert!(series[0].series.windows.iter().any(|w| w.committed == 0));
    }

    #[test]
    fn every_experiment_has_a_plan_and_a_listing() {
        let listed = list_experiments();
        assert_eq!(listed.len(), EXPERIMENTS.len());
        for (key, id, title, _) in &listed {
            assert!(EXPERIMENTS.contains(key));
            assert!(!id.is_empty() && !title.is_empty());
        }
        // The fault marker: schedules-carrying experiments flag it, the
        // fault-free grids don't.
        let has_faults = |key: &str| {
            listed
                .iter()
                .find(|(k, ..)| *k == key)
                .map(|&(.., f)| f)
                .unwrap()
        };
        assert!(has_faults("fault01"));
        assert!(has_faults("chaos01"));
        assert!(!has_faults("fig04"));
        assert!(!has_faults("scale01"));
    }

    #[test]
    fn chaos01_quick_mode_scales_the_fault_timestamps_with_the_run() {
        // Satellite check: under --quick the arrival span shrinks, and the
        // crash window must shrink with it instead of outrunning the run.
        let quick = plan_for("chaos01", &RunOptions::quick()).unwrap();
        let span = dichotomy_core::experiments::chaos01_span_us(RunOptions::quick().txns());
        let crash_row = quick
            .rows
            .iter()
            .find(|r| r.label == "primary-crash")
            .unwrap();
        for run in &crash_row.runs {
            let Probe::Drive { system, .. } = &run.probe else {
                panic!("chaos01 drives");
            };
            let faults = system.faults.as_ref().unwrap();
            assert_eq!(faults.faults().len(), 1);
            assert_eq!(faults.faults()[0].from, span / 3);
            assert!(faults.max_time() <= span);
        }
        // A txns override rescales the schedule the same way.
        let opts = RunOptions {
            txns: Some(60),
            ..RunOptions::quick()
        };
        let tiny = plan_for("chaos01", &opts).unwrap();
        let tiny_span = dichotomy_core::experiments::chaos01_span_us(60);
        let row = tiny
            .rows
            .iter()
            .find(|r| r.label == "primary-crash")
            .unwrap();
        let Probe::Drive { system, .. } = &row.runs[0].probe else {
            panic!("chaos01 drives");
        };
        assert_eq!(
            system.faults.as_ref().unwrap().faults()[0].from,
            tiny_span / 3
        );
    }

    #[test]
    fn txns_override_rescales_the_plans() {
        let opts = RunOptions {
            txns: Some(42),
            ..RunOptions::quick()
        };
        let plan = plan_for("fig13", &opts).unwrap();
        // fig13 drives `records` inserts per row; the override reaches it.
        match &plan.rows[0].runs[0].probe {
            dichotomy_core::scenario::Probe::AdrOverhead { records, .. } => {
                assert_eq!(*records, 42)
            }
            _ => panic!("expected the ADR probe"),
        }
    }

    #[test]
    fn seed_threads_from_options_into_the_plan() {
        let opts = RunOptions {
            seed: 777,
            ..RunOptions::quick()
        };
        let plan = plan_for("fig06", &opts).unwrap();
        match &plan.rows[0].runs[0].probe {
            dichotomy_core::scenario::Probe::Drive { driver, .. } => assert_eq!(driver.seed, 777),
            _ => panic!("expected a drive probe"),
        }
    }
}
