//! A minimal JSON writer for experiment reports.
//!
//! The workspace builds offline with zero crates.io dependencies, so instead
//! of `serde_json` this module hand-writes the (small, fixed) document shape
//! `repro --json` emits. Output is deterministic: key order is fixed, floats
//! use Rust's shortest round-trip formatting, and non-finite values (the
//! `NaN` a missing reported throughput produces) become `null`, keeping the
//! document standard-conforming.
//!
//! Each row additionally carries `series`: one windowed time series per
//! driving probe (`{"name", "events_clamped", "oracles", "window_us",
//! "warmup_us", "windows": [{"start_us", "end_us", "submitted", "committed",
//! "aborted", "offered_tps", "tps", "abort_pct", "p50_us", "p95_us",
//! "p99_us"}]}`) — empty for non-driving probes. `submitted`/`offered_tps`
//! are the offered side of the window (bucketed by submit time);
//! `committed`/`tps` the achieved side. `oracles` is the invariant-oracle
//! report for the probe's run: `[{"name", "violation"}]` with `violation`
//! `null` on a pass (probes reaching the report always pass — a violation
//! becomes a labelled entry in `failures` instead).

use dichotomy_core::experiments::{ExperimentReport, RowSeries};
use dichotomy_core::scenario::ProbeCalibration;
use dichotomy_explore::ExploreOutcome;

/// One experiment's wall-clock timing, for the `repro --bench` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTiming {
    /// Experiment key (`fig04`, ...).
    pub key: String,
    /// Wall-clock milliseconds spent running the experiment.
    pub wall_ms: f64,
    /// Rows the report produced (0 when the whole experiment failed).
    pub rows: usize,
    /// Probes that panicked inside the run.
    pub failed_probes: usize,
    /// Whether the experiment completed (false: it panicked outright or was
    /// missing from the dispatch table).
    pub ok: bool,
    /// Probe slots the plan scheduled.
    pub probes: usize,
    /// Distinct probe keys actually executed (or loaded) — the rest were
    /// deduplicated onto these.
    pub distinct_probes: usize,
    /// Distinct probes answered from the result cache.
    pub cache_hits: usize,
    /// Worker milliseconds the probe deduplication saved this experiment
    /// (the representative's wall, once per avoided duplicate).
    pub dedup_saved_ms: f64,
    /// Predicted-vs-actual wall per executed probe, in execution order —
    /// the calibration record of the cost-predicted scheduler.
    pub calibration: Vec<ProbeCalibration>,
}

impl BenchTiming {
    /// A timing entry with the given headline numbers and no probe
    /// accounting (used for plans that failed to expand).
    pub fn empty(key: String, ok: bool) -> Self {
        BenchTiming {
            key,
            wall_ms: 0.0,
            rows: 0,
            failed_probes: 0,
            ok,
            probes: 0,
            distinct_probes: 0,
            cache_hits: 0,
            dedup_saved_ms: 0.0,
            calibration: Vec::new(),
        }
    }
}

/// Escape a string for a JSON string literal (quotes, backslashes, control
/// characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a JSON number, mapping non-finite values to `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize one report: id, title, rows (label + named values) and the
/// preformatted text for qualitative reports.
pub fn report(key: &str, report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"key\":\"{}\",\"id\":\"{}\",\"title\":\"{}\",\"rows\":[",
        escape(key),
        escape(report.id),
        escape(report.title)
    ));
    for (i, row) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"values\":[",
            escape(&row.label)
        ));
        for (j, (column, value)) in row.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"column\":\"{}\",\"value\":{}}}",
                escape(column),
                number(*value)
            ));
        }
        out.push_str("],\"series\":[");
        for (j, s) in row.series.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&row_series(s));
        }
        out.push_str("]}");
    }
    out.push_str("],\"failures\":[");
    for (i, f) in report.failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"row\":\"{}\",\"probe\":\"{}\",\"index\":{},\"message\":\"{}\"}}",
            escape(&f.row),
            escape(&f.probe),
            f.index,
            escape(&f.message)
        ));
    }
    out.push_str("],\"text\":");
    match &report.text {
        Some(text) => out.push_str(&format!("\"{}\"", escape(text))),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Serialize one windowed time series attached to a row.
fn row_series(s: &RowSeries) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"events_clamped\":{},\"oracles\":[",
        escape(&s.name),
        s.events_clamped,
    ));
    for (i, o) in s.oracles.outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"violation\":{}}}",
            escape(o.name),
            match &o.violation {
                Some(v) => format!("\"{}\"", escape(v)),
                None => "null".to_string(),
            }
        ));
    }
    out.push_str(&format!(
        "],\"window_us\":{},\"warmup_us\":{},\"windows\":[",
        s.series.window_us, s.series.warmup_us
    ));
    for (i, w) in s.series.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"start_us\":{},\"end_us\":{},\"submitted\":{},\"committed\":{},\"aborted\":{},\
             \"offered_tps\":{},\"tps\":{},\"abort_pct\":{},\"p50_us\":{},\"p95_us\":{},\
             \"p99_us\":{}}}",
            w.start_us,
            w.end_us,
            w.submitted,
            w.committed,
            w.aborted,
            number(w.offered_tps),
            number(w.throughput_tps),
            number(w.abort_rate_percent),
            w.latency.p50_us,
            w.latency.p95_us,
            w.latency.p99_us
        ));
    }
    out.push_str("]}");
    out
}

/// Serialize a full `repro` run: the options used plus every report.
pub fn document(
    quick: bool,
    txns: Option<u64>,
    seed: u64,
    reports: &[(String, ExperimentReport)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"generator\":\"repro\",\"quick\":{quick},\"txns\":{},\"seed\":{seed},\"experiments\":[",
        match txns {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        }
    ));
    for (i, (key, rep)) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report(key, rep));
    }
    out.push_str("]}");
    out
}

/// Serialize one `repro --bench` run: the label (`--bench-key`, typically a
/// `git describe`/date tag so the trajectory is keyed per PR), the options
/// and worker count used, the total worker time, and one timing entry per
/// experiment. Entries accumulate in a history document (see
/// [`append_history`]) — `scripts/ci.sh` appends a `--jobs 1` / `--jobs N`
/// pair to `BENCH_history.json` on every run.
pub fn bench_document(
    label: &str,
    quick: bool,
    txns: Option<u64>,
    seed: u64,
    jobs: usize,
    timings: &[BenchTiming],
) -> String {
    let total_wall_ms: f64 = timings.iter().map(|t| t.wall_ms).sum();
    // The scheduling regime is part of the run configuration: with more
    // than one worker the deduped queue runs longest-predicted-first, which
    // changes which probes contend on oversubscribed hosts — per-experiment
    // worker time is only comparable within one regime, so `bench_gate`
    // folds `sched` into the trajectory lane (absent = the historical
    // "fifo").
    let sched = if jobs > 1 { "lpt" } else { "fifo" };
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"generator\":\"repro-bench\",\"label\":\"{}\",\"quick\":{quick},\"txns\":{},\
         \"seed\":{seed},\"jobs\":{jobs},\"sched\":\"{sched}\",\"total_wall_ms\":{},\
         \"experiments\":[",
        escape(label),
        match txns {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        },
        number(total_wall_ms)
    ));
    for (i, t) in timings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Scalars first, nested objects last: `bench_gate` reads the FIRST
        // `"wall_ms":` in each entry and splits entries on `{"key":`, so the
        // experiment-level scalars must precede the calibration array and
        // its objects must be keyed `"probe"`, never `"key"`.
        out.push_str(&format!(
            "{{\"key\":\"{}\",\"wall_ms\":{},\"rows\":{},\"failed_probes\":{},\"ok\":{},\
             \"probes\":{},\"distinct_probes\":{},\"cache_hits\":{},\"dedup_saved_ms\":{},\
             \"calibration\":[",
            escape(&t.key),
            number(t.wall_ms),
            t.rows,
            t.failed_probes,
            t.ok,
            t.probes,
            t.distinct_probes,
            t.cache_hits,
            number(t.dedup_saved_ms)
        ));
        for (j, c) in t.calibration.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"probe\":\"{}\",\"predicted\":{},\"wall_ms\":{}}}",
                escape(&c.probe),
                number(c.predicted),
                number(c.wall_ms)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Serialize one `repro explore` run.
///
/// The document is deterministic for a given spec: the grid funnel, every
/// pruned candidate (the cut is logged, never silent), every measured
/// design with its Pareto-front flag, and the calibration section —
/// Kendall's τ rank agreement, per-taxonomy-cell forecast error with the
/// fitted correction, and the scheduler's per-probe cost predictions.
/// `scheduling` carries `(probe, predicted, wall_ms)` triples in plan
/// order; `wall_ms` is `None` (→ `null`) unless the caller opted into
/// actual walls (`--sched-walls`), which trades byte-identical output for
/// the predicted-vs-actual feed.
pub fn explore_document(
    quick: bool,
    txns: u64,
    seed: u64,
    outcome: &ExploreOutcome,
    scheduling: &[(String, f64, Option<f64>)],
) -> String {
    // No worker count in the header: the document is byte-compared across
    // `--jobs` values, so only inputs that determine results may appear.
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"generator\":\"repro-explore\",\"quick\":{quick},\"txns\":{txns},\"seed\":{seed},\
         \"grid\":{{\"points\":{},\"sampled_out\":{},\"pruned\":{},\
         \"measured\":{}}},\"pruned\":[",
        outcome.grid_points,
        outcome.sampled_out,
        outcome.cut.len(),
        outcome.designs.len()
    ));
    for (i, c) in outcome.cut.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"forecast_tps\":{},\"group_best_tps\":{}}}",
            escape(&c.name),
            number(c.forecast_tps),
            number(c.group_best_tps)
        ));
    }
    out.push_str("],\"designs\":[");
    for (i, d) in outcome.designs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cell\":\"{}\",\"forecast_tps\":{},\"tps\":{},\"p99_ms\":{},\
             \"recovery_ms\":{},\"pareto\":{}}}",
            escape(&d.name),
            escape(&d.cell),
            number(d.forecast_tps),
            number(d.measured_tps),
            number(d.p99_ms),
            number(d.recovery_ms),
            d.on_front
        ));
    }
    out.push_str("],\"pareto_front\":[");
    for (i, d) in outcome.designs.iter().filter(|d| d.on_front).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", escape(&d.name)));
    }
    out.push_str(&format!(
        "],\"calibration\":{{\"kendall_tau\":{},\"cells\":[",
        number(outcome.kendall_tau)
    ));
    for (i, c) in outcome.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"cell\":\"{}\",\"designs\":{},\"mean_abs_rel_err\":{},\"correction\":{}}}",
            escape(&c.cell),
            c.designs,
            number(c.mean_abs_rel_err),
            number(c.correction)
        ));
    }
    out.push_str("],\"scheduling\":[");
    for (i, (probe, predicted, wall_ms)) in scheduling.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"probe\":\"{}\",\"predicted\":{},\"wall_ms\":{}}}",
            escape(probe),
            number(*predicted),
            match wall_ms {
                Some(w) => number(*w),
                None => "null".to_string(),
            }
        ));
    }
    // Probe accounting stops at the deterministic counters: wall clocks and
    // cache hits vary run to run and would break the byte-identical
    // cold/warm and jobs-1/jobs-N comparisons this document is under.
    out.push_str(&format!(
        "]}},\"probes\":{{\"scheduled\":{},\"distinct\":{}}}}}",
        outcome.plan.probes, outcome.plan.distinct_probes
    ));
    out
}

/// The fixed head of a bench-history document.
const HISTORY_PREFIX: &str = "{\"generator\":\"repro-bench-history\",\"entries\":[";

/// A stable fallback `--bench-key`: a digest of the run's own parameters,
/// for environments where `git describe` has nothing to say (tarball
/// checkouts, shallow CI clones). Identical run configurations map to the
/// same key, so trailing-entry comparisons in the trajectory still line up;
/// the wall clock is never consulted.
pub fn stable_bench_key(quick: bool, txns: Option<u64>, seed: u64, jobs: usize) -> String {
    // FNV-1a over the canonical parameter string: tiny, stable, no deps.
    let params = format!(
        "quick={quick};txns={};seed={seed};jobs={jobs}",
        match txns {
            Some(n) => n.to_string(),
            None => "default".to_string(),
        }
    );
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in params.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!(
        "run-{}{}-j{jobs}-{hash:08x}",
        if quick { "quick" } else { "full" },
        match txns {
            Some(n) => format!("-t{n}"),
            None => String::new(),
        }
    )
}

/// Append one [`bench_document`] entry to a bench-history document,
/// returning the new document. `existing` is the current file content
/// (`None` or empty starts a fresh history). The history format is fixed —
/// `{"generator":"repro-bench-history","entries":[…]}` — and a file that
/// does not match it is refused rather than silently overwritten. An entry
/// that is byte-identical to one already recorded (same key *and* payload —
/// e.g. a re-run script appending the same document twice) leaves the
/// history unchanged instead of duplicating it.
pub fn append_history(existing: Option<&str>, entry: &str) -> Result<String, String> {
    let fresh = || format!("{HISTORY_PREFIX}{entry}]}}");
    match existing.map(str::trim) {
        None | Some("") => Ok(fresh()),
        Some(doc) => {
            let entries = doc
                .strip_prefix(HISTORY_PREFIX)
                .and_then(|body| body.strip_suffix("]}"))
                .ok_or_else(|| {
                    "not a repro-bench-history document (refusing to overwrite)".to_string()
                })?;
            if entries.is_empty() {
                Ok(fresh())
            } else if entries == entry
                || entries.starts_with(&format!("{entry},"))
                || entries.ends_with(&format!(",{entry}"))
                || entries.contains(&format!(",{entry},"))
            {
                // Exact duplicate (key and payload): keep the history as-is.
                Ok(doc.to_string())
            } else {
                Ok(format!("{HISTORY_PREFIX}{entries},{entry}]}}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_core::chaos::{OracleOutcome, OracleReport};
    use dichotomy_core::experiments::Row;
    use dichotomy_core::metrics::{LatencySummary, TimeSeries, TimeWindow};

    fn sample() -> ExperimentReport {
        ExperimentReport {
            id: "Figure 0",
            title: "sample \"quoted\"",
            rows: vec![Row {
                label: "θ=1".into(),
                values: vec![("tps".into(), 12.5), ("missing".into(), f64::NAN)],
                series: Vec::new(),
            }],
            failures: Vec::new(),
            text: None,
        }
    }

    fn sample_with_series() -> ExperimentReport {
        let mut report = sample();
        report.rows[0].series.push(RowSeries {
            name: "etcd".into(),
            events_clamped: 0,
            oracles: OracleReport {
                outcomes: vec![
                    OracleOutcome {
                        name: "receipt-conservation",
                        violation: None,
                    },
                    OracleOutcome {
                        name: "no-duplicate-receipt",
                        violation: Some("transaction receipted \"twice\"".into()),
                    },
                ],
            },
            series: TimeSeries {
                window_us: 1_000,
                warmup_us: 0,
                windows: vec![TimeWindow {
                    start_us: 0,
                    end_us: 1_000,
                    submitted: 4,
                    committed: 3,
                    aborted: 1,
                    offered_tps: 4_000.0,
                    throughput_tps: 3_000.0,
                    abort_rate_percent: 25.0,
                    latency: LatencySummary {
                        mean_us: 10.0,
                        p50_us: 10,
                        p95_us: 12,
                        p99_us: 12,
                        max_us: 12,
                    },
                }],
            },
        });
        report
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn report_serialization_contains_rows_and_nan_as_null() {
        let json = report("fig00", &sample());
        assert!(json.starts_with("{\"key\":\"fig00\",\"id\":\"Figure 0\""));
        assert!(json.contains("\"label\":\"θ=1\""));
        assert!(json.contains("{\"column\":\"tps\",\"value\":12.5}"));
        assert!(json.contains("{\"column\":\"missing\",\"value\":null}"));
        assert!(json.contains("\"series\":[]"));
        assert!(json.contains("\"failures\":[]"));
        assert!(json.ends_with("\"text\":null}"));
    }

    #[test]
    fn probe_failures_serialize_with_their_labels() {
        let mut rep = sample();
        rep.failures
            .push(dichotomy_core::experiments::ProbeFailure {
                row: "θ=1".into(),
                probe: "TiKV".into(),
                index: 1,
                message: "cannot build \"TiKV\"".into(),
            });
        let json = report("fig00", &rep);
        assert!(json.contains(
            "\"failures\":[{\"row\":\"θ=1\",\"probe\":\"TiKV\",\"index\":1,\
             \"message\":\"cannot build \\\"TiKV\\\"\"}]"
        ));
    }

    #[test]
    fn time_series_serialize_per_row() {
        let json = report("fig00", &sample_with_series());
        assert!(json.contains(
            "\"series\":[{\"name\":\"etcd\",\"events_clamped\":0,\"oracles\":[\
             {\"name\":\"receipt-conservation\",\"violation\":null},\
             {\"name\":\"no-duplicate-receipt\",\"violation\":\
             \"transaction receipted \\\"twice\\\"\"}],\"window_us\":1000,\
             \"warmup_us\":0,\"windows\":["
        ));
        assert!(json.contains(
            "{\"start_us\":0,\"end_us\":1000,\"submitted\":4,\"committed\":3,\"aborted\":1,\
             \"offered_tps\":4000,\"tps\":3000,\"abort_pct\":25,\"p50_us\":10,\"p95_us\":12,\
             \"p99_us\":12}"
        ));
    }

    #[test]
    fn document_wraps_options_and_reports() {
        let doc = document(true, Some(300), 7, &[("fig00".to_string(), sample())]);
        assert!(doc.starts_with(
            "{\"generator\":\"repro\",\"quick\":true,\"txns\":300,\"seed\":7,\"experiments\":["
        ));
        assert!(doc.ends_with("]}"));
        let doc_default = document(false, None, 7, &[]);
        assert!(doc_default.contains("\"txns\":null"));
        assert!(doc_default.contains("\"experiments\":[]"));
    }

    #[test]
    fn bench_documents_carry_jobs_and_per_experiment_wall_clock() {
        let timings = vec![
            BenchTiming {
                key: "fig04".into(),
                wall_ms: 12.5,
                rows: 5,
                failed_probes: 0,
                ok: true,
                probes: 8,
                distinct_probes: 7,
                cache_hits: 2,
                dedup_saved_ms: 3.5,
                calibration: vec![ProbeCalibration {
                    probe: "etcd".into(),
                    predicted: 1200.0,
                    wall_ms: 11.5,
                }],
            },
            BenchTiming {
                key: "fig09".into(),
                wall_ms: 7.5,
                rows: 0,
                failed_probes: 1,
                ok: false,
                probes: 0,
                distinct_probes: 0,
                cache_hits: 0,
                dedup_saved_ms: 0.0,
                calibration: Vec::new(),
            },
        ];
        let doc = bench_document("pr5-jobs4", true, None, 7, 4, &timings);
        assert!(doc.starts_with(
            "{\"generator\":\"repro-bench\",\"label\":\"pr5-jobs4\",\"quick\":true,\
             \"txns\":null,\"seed\":7,\"jobs\":4,\"sched\":\"lpt\",\"total_wall_ms\":20,\
             \"experiments\":["
        ));
        assert!(doc.contains(
            "{\"key\":\"fig04\",\"wall_ms\":12.5,\"rows\":5,\"failed_probes\":0,\"ok\":true,\
             \"probes\":8,\"distinct_probes\":7,\"cache_hits\":2,\"dedup_saved_ms\":3.5,\
             \"calibration\":[{\"probe\":\"etcd\",\"predicted\":1200,\"wall_ms\":11.5}]}"
        ));
        assert!(doc.contains(
            "{\"key\":\"fig09\",\"wall_ms\":7.5,\"rows\":0,\"failed_probes\":1,\"ok\":false,\
             \"probes\":0,\"distinct_probes\":0,\"cache_hits\":0,\"dedup_saved_ms\":0,\
             \"calibration\":[]}"
        ));
        assert!(doc.ends_with("]}"));
        let empty = bench_document("x", false, Some(42), 1, 1, &[]);
        assert!(empty.contains("\"txns\":42") && empty.contains("\"experiments\":[]"));
        assert!(
            empty.contains("\"sched\":\"fifo\""),
            "one worker keeps first-occurrence order"
        );
    }

    #[test]
    fn calibration_objects_never_collide_with_the_entry_scanner() {
        // `bench_gate` splits entries on `{"key":` and reads the first
        // `"wall_ms":` of each chunk — the calibration array must not defeat
        // either convention.
        let timings = vec![BenchTiming {
            key: "fig04".into(),
            wall_ms: 99.0,
            rows: 1,
            failed_probes: 0,
            ok: true,
            probes: 2,
            distinct_probes: 2,
            cache_hits: 0,
            dedup_saved_ms: 0.0,
            calibration: vec![
                ProbeCalibration {
                    probe: "a".into(),
                    predicted: 1.0,
                    wall_ms: 1.0,
                },
                ProbeCalibration {
                    probe: "b".into(),
                    predicted: f64::NAN,
                    wall_ms: 2.0,
                },
            ],
        }];
        let doc = bench_document("k", true, None, 7, 1, &timings);
        assert_eq!(doc.matches("{\"key\":").count(), 1, "one entry, one key");
        let entry = doc.split("{\"key\":").nth(1).unwrap();
        let first_wall = entry.split("\"wall_ms\":").nth(1).unwrap();
        assert!(
            first_wall.starts_with("99"),
            "experiment wall_ms precedes calibration walls: {first_wall}"
        );
        assert!(doc.contains("{\"probe\":\"b\",\"predicted\":null,\"wall_ms\":2}"));
    }

    #[test]
    fn explore_documents_hold_the_funnel_front_and_calibration() {
        use dichotomy_core::scenario::PlanOutcome;
        use dichotomy_explore::{CellCalibration, CutDesign, Design, ExploreOutcome};
        let design = |name: &str, tps: f64, on_front: bool| Design {
            name: name.into(),
            cell: "StorageBased|Raft|Serial".into(),
            forecast_tps: 100.0,
            measured_tps: tps,
            p99_ms: 2.5,
            recovery_ms: 0.0,
            on_front,
        };
        let outcome = ExploreOutcome {
            grid_points: 14,
            sampled_out: 2,
            cut: vec![CutDesign {
                name: "quorum/n4".into(),
                forecast_tps: 10.0,
                group_best_tps: 100.0,
            }],
            designs: vec![
                design("etcd/n4", 90.0, true),
                design("failed", f64::NAN, false),
            ],
            kendall_tau: f64::NAN,
            cells: vec![CellCalibration {
                cell: "StorageBased|Raft|Serial".into(),
                designs: 1,
                mean_abs_rel_err: 0.1,
                correction: 1.25,
            }],
            scheduling: Vec::new(),
            plan: PlanOutcome {
                report: ExperimentReport {
                    id: "Explore 1",
                    title: "t",
                    rows: Vec::new(),
                    failures: Vec::new(),
                    text: None,
                },
                probe_wall_ms: 123.0,
                probes: 4,
                distinct_probes: 3,
                cache_hits: 1,
                dedup_saved_ms: 0.5,
                calibration: Vec::new(),
            },
        };
        let sched = vec![
            ("etcd/n4".to_string(), 120.0, None),
            ("etcd/n4#chaos".to_string(), 50.0, Some(3.25)),
        ];
        let doc = explore_document(true, 300, 7, &outcome, &sched);
        assert!(doc.starts_with(
            "{\"generator\":\"repro-explore\",\"quick\":true,\"txns\":300,\"seed\":7,\
             \"grid\":{\"points\":14,\"sampled_out\":2,\"pruned\":1,\"measured\":2}"
        ));
        assert!(doc.contains(
            "\"pruned\":[{\"name\":\"quorum/n4\",\"forecast_tps\":10,\"group_best_tps\":100}]"
        ));
        assert!(doc.contains("\"tps\":90") && doc.contains("\"pareto\":true"));
        assert!(doc.contains("\"tps\":null"), "failed design's NaN → null");
        assert!(doc.contains("\"pareto_front\":[\"etcd/n4\"]"));
        assert!(doc.contains("\"calibration\":{\"kendall_tau\":null,\"cells\":["));
        assert!(doc.contains("\"correction\":1.25"));
        assert!(doc.contains("{\"probe\":\"etcd/n4\",\"predicted\":120,\"wall_ms\":null}"));
        assert!(doc.contains("{\"probe\":\"etcd/n4#chaos\",\"predicted\":50,\"wall_ms\":3.25}"));
        assert!(doc.ends_with("\"probes\":{\"scheduled\":4,\"distinct\":3}}"));
        // Wall clocks and cache hits are nondeterministic: they must never
        // reach this document (cold/warm runs are compared byte-for-byte).
        assert!(!doc.contains("cache_hits") && !doc.contains("123"));
    }

    #[test]
    fn bench_history_accumulates_entries_across_appends() {
        let entry = |label: &str| bench_document(label, true, None, 7, 1, &[]);
        // A fresh history wraps the first entry.
        let first = append_history(None, &entry("pr5-jobs1")).unwrap();
        assert!(first.starts_with("{\"generator\":\"repro-bench-history\",\"entries\":["));
        assert!(first.ends_with("]}"));
        assert_eq!(first.matches("\"generator\":\"repro-bench\"").count(), 1);
        // Appending keeps earlier entries; whitespace around the document is
        // tolerated (editors add trailing newlines).
        let second = append_history(Some(&format!("{first}\n")), &entry("pr6-jobs1")).unwrap();
        assert_eq!(second.matches("\"generator\":\"repro-bench\"").count(), 2);
        assert!(second.contains("\"label\":\"pr5-jobs1\""));
        assert!(second.contains("\"label\":\"pr6-jobs1\""));
        let third = append_history(Some(&second), &entry("pr7-jobs4")).unwrap();
        assert_eq!(third.matches("\"label\":").count(), 3);
        // An empty file behaves like a missing one; an alien document is
        // refused, never clobbered.
        assert_eq!(append_history(Some("  \n"), &entry("a")).unwrap(), {
            append_history(None, &entry("a")).unwrap()
        });
        assert!(append_history(Some("{\"generator\":\"repro\"}"), &entry("a")).is_err());
        assert!(append_history(Some("garbage"), &entry("a")).is_err());
    }

    #[test]
    fn bench_history_dedupes_byte_identical_entries() {
        let entry = bench_document("same", true, None, 7, 1, &[]);
        let other = bench_document("other", true, None, 7, 1, &[]);
        // Re-appending the identical entry leaves the history unchanged,
        // wherever in the entry list it already sits.
        let first = append_history(None, &entry).unwrap();
        assert_eq!(append_history(Some(&first), &entry).unwrap(), first);
        let two = append_history(Some(&first), &other).unwrap();
        assert_eq!(append_history(Some(&two), &entry).unwrap(), two);
        assert_eq!(append_history(Some(&two), &other).unwrap(), two);
        // A same-key entry with a *different* payload still appends: re-runs
        // with new numbers are trajectory, not duplication.
        let rerun = bench_document("same", true, None, 9, 1, &[]);
        let three = append_history(Some(&two), &rerun).unwrap();
        assert_eq!(three.matches("\"label\":\"same\"").count(), 2);
    }

    #[test]
    fn stable_bench_key_is_deterministic_and_parameter_sensitive() {
        let key = stable_bench_key(true, None, 7, 1);
        assert_eq!(key, stable_bench_key(true, None, 7, 1));
        assert!(key.starts_with("run-quick-j1-"));
        // Every parameter reaches the digest.
        for different in [
            stable_bench_key(false, None, 7, 1),
            stable_bench_key(true, Some(42), 7, 1),
            stable_bench_key(true, None, 8, 1),
            stable_bench_key(true, None, 7, 2),
        ] {
            assert_ne!(key, different);
        }
    }
}
