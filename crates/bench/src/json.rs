//! A minimal JSON writer for experiment reports.
//!
//! The workspace builds offline with zero crates.io dependencies, so instead
//! of `serde_json` this module hand-writes the (small, fixed) document shape
//! `repro --json` emits. Output is deterministic: key order is fixed, floats
//! use Rust's shortest round-trip formatting, and non-finite values (the
//! `NaN` a missing reported throughput produces) become `null`, keeping the
//! document standard-conforming.
//!
//! Each row additionally carries `series`: one windowed time series per
//! driving probe (`{"name", "window_us", "warmup_us", "windows": [{
//! "start_us", "end_us", "committed", "aborted", "tps", "abort_pct",
//! "p50_us", "p95_us", "p99_us"}]}`) — empty for non-driving probes.

use dichotomy_core::experiments::{ExperimentReport, RowSeries};

/// Escape a string for a JSON string literal (quotes, backslashes, control
/// characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a JSON number, mapping non-finite values to `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize one report: id, title, rows (label + named values) and the
/// preformatted text for qualitative reports.
pub fn report(key: &str, report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"key\":\"{}\",\"id\":\"{}\",\"title\":\"{}\",\"rows\":[",
        escape(key),
        escape(report.id),
        escape(report.title)
    ));
    for (i, row) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"values\":[",
            escape(&row.label)
        ));
        for (j, (column, value)) in row.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"column\":\"{}\",\"value\":{}}}",
                escape(column),
                number(*value)
            ));
        }
        out.push_str("],\"series\":[");
        for (j, s) in row.series.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&row_series(s));
        }
        out.push_str("]}");
    }
    out.push_str("],\"text\":");
    match &report.text {
        Some(text) => out.push_str(&format!("\"{}\"", escape(text))),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Serialize one windowed time series attached to a row.
fn row_series(s: &RowSeries) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"window_us\":{},\"warmup_us\":{},\"windows\":[",
        escape(&s.name),
        s.series.window_us,
        s.series.warmup_us
    ));
    for (i, w) in s.series.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"start_us\":{},\"end_us\":{},\"committed\":{},\"aborted\":{},\"tps\":{},\
             \"abort_pct\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            w.start_us,
            w.end_us,
            w.committed,
            w.aborted,
            number(w.throughput_tps),
            number(w.abort_rate_percent),
            w.latency.p50_us,
            w.latency.p95_us,
            w.latency.p99_us
        ));
    }
    out.push_str("]}");
    out
}

/// Serialize a full `repro` run: the options used plus every report.
pub fn document(
    quick: bool,
    txns: Option<u64>,
    seed: u64,
    reports: &[(String, ExperimentReport)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"generator\":\"repro\",\"quick\":{quick},\"txns\":{},\"seed\":{seed},\"experiments\":[",
        match txns {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        }
    ));
    for (i, (key, rep)) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report(key, rep));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_core::experiments::Row;
    use dichotomy_core::metrics::{LatencySummary, TimeSeries, TimeWindow};

    fn sample() -> ExperimentReport {
        ExperimentReport {
            id: "Figure 0",
            title: "sample \"quoted\"",
            rows: vec![Row {
                label: "θ=1".into(),
                values: vec![("tps".into(), 12.5), ("missing".into(), f64::NAN)],
                series: Vec::new(),
            }],
            text: None,
        }
    }

    fn sample_with_series() -> ExperimentReport {
        let mut report = sample();
        report.rows[0].series.push(RowSeries {
            name: "etcd".into(),
            series: TimeSeries {
                window_us: 1_000,
                warmup_us: 0,
                windows: vec![TimeWindow {
                    start_us: 0,
                    end_us: 1_000,
                    committed: 3,
                    aborted: 1,
                    throughput_tps: 3_000.0,
                    abort_rate_percent: 25.0,
                    latency: LatencySummary {
                        mean_us: 10.0,
                        p50_us: 10,
                        p95_us: 12,
                        p99_us: 12,
                        max_us: 12,
                    },
                }],
            },
        });
        report
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn report_serialization_contains_rows_and_nan_as_null() {
        let json = report("fig00", &sample());
        assert!(json.starts_with("{\"key\":\"fig00\",\"id\":\"Figure 0\""));
        assert!(json.contains("\"label\":\"θ=1\""));
        assert!(json.contains("{\"column\":\"tps\",\"value\":12.5}"));
        assert!(json.contains("{\"column\":\"missing\",\"value\":null}"));
        assert!(json.contains("\"series\":[]"));
        assert!(json.ends_with("\"text\":null}"));
    }

    #[test]
    fn time_series_serialize_per_row() {
        let json = report("fig00", &sample_with_series());
        assert!(json.contains(
            "\"series\":[{\"name\":\"etcd\",\"window_us\":1000,\"warmup_us\":0,\"windows\":["
        ));
        assert!(json.contains(
            "{\"start_us\":0,\"end_us\":1000,\"committed\":3,\"aborted\":1,\"tps\":3000,\
             \"abort_pct\":25,\"p50_us\":10,\"p95_us\":12,\"p99_us\":12}"
        ));
    }

    #[test]
    fn document_wraps_options_and_reports() {
        let doc = document(true, Some(300), 7, &[("fig00".to_string(), sample())]);
        assert!(doc.starts_with(
            "{\"generator\":\"repro\",\"quick\":true,\"txns\":300,\"seed\":7,\"experiments\":["
        ));
        assert!(doc.ends_with("]}"));
        let doc_default = document(false, None, 7, &[]);
        assert!(doc_default.contains("\"txns\":null"));
        assert!(doc_default.contains("\"experiments\":[]"));
    }
}
