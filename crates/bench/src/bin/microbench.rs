//! Microbenchmarks over the substrates the system models are built from:
//! hashing, authenticated-index updates, storage-engine writes, OCC
//! validation, consensus-profile commit latencies and the end-to-end
//! per-transaction pipelines of a blockchain vs a database (a miniature
//! Figure 4).
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin microbench
//! cargo run -p dichotomy-bench --release --bin microbench -- mpt lsm
//! cargo run -p dichotomy-bench --release --bin microbench -- --smoke
//! cargo run -p dichotomy-bench --release --bin microbench -- --smoke \
//!     --bench BENCH_history.json --bench-key microbench-pr6
//! ```
//!
//! This is a dependency-free replacement for the Criterion bench the seed
//! shipped: each benchmark runs a warmup pass, then times `iters` iterations
//! with `std::time::Instant`, excluding per-iteration setup. Arguments filter
//! benchmarks by substring match on the name; `--smoke` scales the iteration
//! counts down so CI can run every case as an engine-hot-path regression
//! check in seconds. `--bench PATH` appends every case's mean per-op time to
//! the same bench-trajectory history `repro --bench` writes (one entry per
//! run, `wall_ms` = ns/op ÷ 10⁶), labelled by `--bench-key` — so wheel-vs-
//! heap and sketch-vs-exact ratios accumulate next to the experiment
//! timings.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dichotomy_bench::json;

use dichotomy_core::common::{hash, ClientId, Key, Operation, Transaction, TxnId, Value};
use dichotomy_core::consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_core::driver::{run_workload, DriverConfig};
use dichotomy_core::merkle::{MerkleBucketTree, MerklePatriciaTrie};
use dichotomy_core::metrics::{LatencySummary, StreamingLatency};
use dichotomy_core::scenario::{
    run_plan_with, ColumnSpec, ExecOptions, Metric, Scenario, Sweep, SystemEntry,
};
use dichotomy_core::simnet::{CostModel, EventQueue, HeapEventQueue, NetworkConfig, SimEngine};
use dichotomy_core::storage::{BPlusTree, KvEngine, LsmTree, MvccStore};
use dichotomy_core::systems::{
    Etcd, EtcdConfig, Quorum, QuorumConfig, SystemKind, SystemRegistry, SystemSpec,
};
use dichotomy_core::txn::OccExecutor;
use dichotomy_core::workload::{WorkloadSpec, YcsbConfig, YcsbMix, YcsbWorkload};

/// Whether `--smoke` was passed: scale iteration counts down for CI.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// Every (case name, mean ns/op) measured this run, for `--bench` recording.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn effective_iters(iters: u32) -> u32 {
    if SMOKE.load(Ordering::Relaxed) {
        (iters / 20).max(2)
    } else {
        iters
    }
}

/// Time `routine` over `iters` fresh states from `setup`, excluding setup
/// time, and print a mean ns/op line.
fn bench_batched<S, R>(
    name: &str,
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) {
    let iters = effective_iters(iters);
    for _ in 0..(iters / 10).max(1) {
        black_box(routine(setup()));
    }
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let state = setup();
        let start = Instant::now();
        let result = routine(state);
        total += start.elapsed();
        black_box(result);
    }
    let ns_per_op = total.as_nanos() as f64 / iters as f64;
    println!("{name:<34} {iters:>7} iters {ns_per_op:>14.0} ns/op");
    RESULTS.lock().unwrap().push((name.to_string(), ns_per_op));
}

/// Time a self-contained routine (no per-iteration setup).
fn bench<R>(name: &str, iters: u32, mut routine: impl FnMut() -> R) {
    bench_batched(name, iters, || (), |()| routine());
}

fn bench_hashing() {
    let data = vec![0xabu8; 1024];
    bench("sha256_1kb", 2_000, || hash::sha256(&data));
}

fn bench_authenticated_indexes() {
    bench_batched(
        "mpt_insert_1kb",
        300,
        || {
            let mut mpt = MerklePatriciaTrie::new();
            for i in 0..500u64 {
                mpt.insert(&Key::from_str(&format!("user{i:08}")), &Value::filler(100));
            }
            mpt
        },
        |mut mpt| {
            mpt.insert(&Key::from_str("user00000042"), &Value::filler(1024));
            mpt.root_hash()
        },
    );
    bench_batched(
        "mbt_put_1kb",
        300,
        MerkleBucketTree::fabric_default,
        |mut mbt| {
            mbt.put(&Key::from_str("user42"), &Value::filler(1024));
            mbt.root_hash()
        },
    );
}

fn bench_storage_engines() {
    bench_batched("lsm_put_1kb", 2_000, LsmTree::new, |mut t| {
        t.put(Key::from_str("k1"), Value::filler(1024))
    });
    bench_batched("btree_put_1kb", 2_000, BPlusTree::new, |mut t| {
        t.put(Key::from_str("k1"), Value::filler(1024))
    });
}

fn bench_occ_validation() {
    bench_batched(
        "occ_simulate_validate_commit",
        1_000,
        || {
            let mut store = MvccStore::new();
            let v = store.begin_commit();
            for i in 0..200u64 {
                store.commit_write(Key::from_str(&format!("k{i}")), v, Some(Value::filler(64)));
            }
            (store, OccExecutor::new())
        },
        |(mut store, mut occ)| {
            let txn = Transaction::new(
                TxnId::new(ClientId(1), 1),
                vec![Operation::read_modify_write(
                    Key::from_str("k7"),
                    Value::filler(64),
                )],
            );
            let sim = occ.simulate(&txn, &store);
            occ.validate_and_commit(&sim, &mut store).unwrap()
        },
    );
}

fn bench_consensus_profiles() {
    for (name, kind) in [
        ("profile_raft_commit_latency", ProtocolKind::Raft),
        ("profile_pbft_commit_latency", ProtocolKind::Pbft),
    ] {
        let profile =
            ReplicationProfile::new(kind, 7, NetworkConfig::lan_1gbps(), CostModel::default());
        bench(name, 10_000, || profile.commit_latency_us(black_box(4096)));
    }
}

fn bench_metric_sketches() {
    // Sketch vs exact over the identical sample set: folding 100k latencies
    // into the three P² sketches of a `StreamingLatency` vs sorting the same
    // vector for exact order statistics. The per-sample sketch cost is what
    // streaming metrics pay per receipt; the exact case additionally scales
    // its O(n log n) sort with window population, which is the memory/time
    // trade `MetricsMode::Streaming` removes.
    const SAMPLES: usize = 100_000;
    let generate = || {
        let mut x = 0x853C_49E6_748F_EA9Bu64;
        (0..SAMPLES)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 250_000
            })
            .collect::<Vec<u64>>()
    };
    bench_batched("latency_sketch_stream_100k", 50, generate, |samples| {
        let mut sketch = StreamingLatency::default();
        for &s in &samples {
            sketch.observe(s);
        }
        sketch.summary()
    });
    bench_batched("latency_exact_sort_100k", 50, generate, LatencySummary::of);
}

fn bench_event_engine() {
    // The engine hot path: schedule N events with scattered timestamps and
    // drain them in order.
    bench("event_queue_schedule_pop_10k", 200, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule_at(i ^ 0x2a5a, i);
        }
        let mut acc = 0u64;
        while let Some((t, _)) = q.pop() {
            acc = acc.wrapping_add(t);
        }
        acc
    });
    // The same schedule-then-drain pattern through the reference
    // `BinaryHeap` queue: the wheel-vs-heap events/sec ratio CI records.
    bench("event_queue_heap_pop_10k", 200, || {
        let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
        for i in 0..10_000u64 {
            q.schedule_at(i ^ 0x2a5a, i);
        }
        let mut acc = 0u64;
        while let Some((t, _)) = q.pop() {
            acc = acc.wrapping_add(t);
        }
        acc
    });
    // Steady-state churn at closed-loop scale: 256k events stay pending
    // while every pop schedules a replacement at a pseudo-random offset
    // (identical xorshift streams for both implementations). This is the
    // shape of the `scale01` million-client run, where the heap pays
    // O(log n) with cache misses on every pop and the wheel does not.
    const CHURN: u64 = 1 << 18;
    let prefill_times = |seed: u64| {
        let mut x = seed;
        std::iter::repeat_with(move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 1_000_000
        })
    };
    bench_batched(
        "event_queue_wheel_churn_256k",
        20,
        || {
            let mut q: EventQueue<u64> = EventQueue::new();
            for (i, t) in prefill_times(0x9E37_79B9).take(CHURN as usize).enumerate() {
                q.schedule_at(t, i as u64);
            }
            q
        },
        |mut q| {
            let mut acc = 0u64;
            for (i, dt) in prefill_times(0xD1B5_4A32).take(CHURN as usize).enumerate() {
                let (t, _) = q.pop().expect("queue stays full");
                acc = acc.wrapping_add(t);
                q.schedule_at(q.now() + dt, i as u64);
            }
            acc
        },
    );
    bench_batched(
        "event_queue_heap_churn_256k",
        20,
        || {
            let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
            for (i, t) in prefill_times(0x9E37_79B9).take(CHURN as usize).enumerate() {
                q.schedule_at(t, i as u64);
            }
            q
        },
        |mut q| {
            let mut acc = 0u64;
            for (i, dt) in prefill_times(0xD1B5_4A32).take(CHURN as usize).enumerate() {
                let (t, _) = q.pop().expect("queue stays full");
                acc = acc.wrapping_add(t);
                q.schedule_at(q.now() + dt, i as u64);
            }
            acc
        },
    );
    // A synthetic service pipeline on the engine: every event books work on
    // one of two processes and reschedules a follow-up stage.
    bench("engine_two_stage_pipeline_5k", 200, || {
        let mut e: SimEngine<(u32, u64)> = SimEngine::new();
        let front = e.add_process("front", 4);
        let back = e.add_process("back", 1);
        for i in 0..5_000u64 {
            e.schedule_at(i * 3, (0, i));
        }
        let mut finished = 0u64;
        while let Some((now, (stage, token))) = e.pop() {
            match stage {
                0 => {
                    let (_, done) = e.service(front, now, 5);
                    e.schedule_at(done, (1, token));
                }
                _ => {
                    e.service(back, now, 2);
                    finished += 1;
                }
            }
        }
        finished
    });
    // The full event loop end to end: driver arrivals + etcd stage events.
    bench("engine_loop_etcd_update_300", 10, || {
        let mut system = Etcd::new(EtcdConfig::default());
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: 500,
            record_size: 200,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        run_workload(&mut system, &mut workload, &DriverConfig::saturating(300))
    });
}

fn bench_plan_executor() {
    // The plan executor end to end: an 8-probe etcd θ-sweep, sequentially
    // (`jobs=1`) vs on the worker pool (`jobs=0` → all cores). Same seed,
    // byte-identical reports; the delta is the pool's win on this machine.
    let plan = Scenario {
        id: "B",
        title: "plan executor microbench",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Etcd),
            columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
        }],
        workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(500),
        driver: DriverConfig::saturating(150),
        sweep: Sweep::Theta(vec![0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 0.9, 1.0]),
        row_labels: None,
        faults: None,
        seed: 7,
    }
    .plan();
    let registry = SystemRegistry::with_builtins();
    bench("plan_sequential_8probe_etcd", 6, || {
        run_plan_with(&plan, &registry, &ExecOptions::with_jobs(1))
    });
    bench("plan_parallel_8probe_etcd", 6, || {
        run_plan_with(&plan, &registry, &ExecOptions::default())
    });
}

fn bench_end_to_end() {
    bench("end_to_end_quorum_update_200", 10, || {
        let mut system = Quorum::new(QuorumConfig {
            max_block_txns: 50,
            block_interval_us: 50_000,
            ..QuorumConfig::default()
        });
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: 500,
            record_size: 200,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        run_workload(&mut system, &mut workload, &DriverConfig::saturating(200))
    });
    bench("end_to_end_etcd_update_200", 10, || {
        let mut system = Etcd::new(EtcdConfig::default());
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: 500,
            record_size: 200,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        run_workload(&mut system, &mut workload, &DriverConfig::saturating(200))
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut filters: Vec<String> = Vec::new();
    let mut bench_path: Option<String> = None;
    let mut bench_key: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--smoke" {
            SMOKE.store(true, Ordering::Relaxed);
        } else if let Some(v) = arg.strip_prefix("--bench-key=") {
            bench_key = Some(v.to_string());
        } else if arg == "--bench-key" {
            i += 1;
            bench_key = args.get(i).cloned();
        } else if let Some(v) = arg.strip_prefix("--bench=") {
            bench_path = Some(v.to_string());
        } else if arg == "--bench" {
            i += 1;
            bench_path = args.get(i).cloned();
        } else {
            filters.push(arg.clone());
        }
        i += 1;
    }
    let groups: &[(&str, fn())] = &[
        ("sha256", bench_hashing),
        ("mpt mbt", bench_authenticated_indexes),
        ("lsm btree", bench_storage_engines),
        ("occ", bench_occ_validation),
        ("profile", bench_consensus_profiles),
        ("metrics latency", bench_metric_sketches),
        ("event_queue engine", bench_event_engine),
        ("plan", bench_plan_executor),
        ("end_to_end", bench_end_to_end),
    ];
    for (keys, run) in groups {
        let selected = filters.is_empty()
            || filters
                .iter()
                .any(|f| keys.split(' ').any(|k| k.contains(f.as_str())));
        if selected {
            run();
        }
    }

    // `--bench PATH`: append this run's per-case timings to the same
    // trajectory history `repro --bench` maintains (wall_ms = ns/op ÷ 10⁶),
    // so CI can gate on microbenchmark regressions too.
    if let Some(path) = bench_path {
        let smoke = SMOKE.load(Ordering::Relaxed);
        let timings: Vec<json::BenchTiming> = RESULTS
            .lock()
            .unwrap()
            .iter()
            .map(|(name, ns_per_op)| json::BenchTiming {
                wall_ms: ns_per_op / 1e6,
                ..json::BenchTiming::empty(name.clone(), true)
            })
            .collect();
        let label = bench_key
            .unwrap_or_else(|| format!("microbench-{}", if smoke { "smoke" } else { "full" }));
        let entry = json::bench_document(&label, smoke, None, 0, 1, &timings);
        let existing = std::fs::read_to_string(&path).ok();
        match json::append_history(existing.as_deref(), &entry)
            .and_then(|doc| std::fs::write(&path, doc).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!(
                "appended '{label}' ({} case timings) to {path}",
                timings.len()
            ),
            Err(e) => {
                eprintln!("cannot append bench history to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
