//! Microbenchmarks over the substrates the system models are built from:
//! hashing, authenticated-index updates, storage-engine writes, OCC
//! validation, consensus-profile commit latencies and the end-to-end
//! per-transaction pipelines of a blockchain vs a database (a miniature
//! Figure 4).
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin microbench
//! cargo run -p dichotomy-bench --release --bin microbench -- mpt lsm
//! cargo run -p dichotomy-bench --release --bin microbench -- --smoke
//! ```
//!
//! This is a dependency-free replacement for the Criterion bench the seed
//! shipped: each benchmark runs a warmup pass, then times `iters` iterations
//! with `std::time::Instant`, excluding per-iteration setup. Arguments filter
//! benchmarks by substring match on the name; `--smoke` scales the iteration
//! counts down so CI can run every case as an engine-hot-path regression
//! check in seconds.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dichotomy_core::common::{hash, ClientId, Key, Operation, Transaction, TxnId, Value};
use dichotomy_core::consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_core::driver::{run_workload, DriverConfig};
use dichotomy_core::merkle::{MerkleBucketTree, MerklePatriciaTrie};
use dichotomy_core::scenario::{
    run_plan_with, ColumnSpec, ExecOptions, Metric, Scenario, Sweep, SystemEntry,
};
use dichotomy_core::simnet::{CostModel, EventQueue, NetworkConfig, SimEngine};
use dichotomy_core::storage::{BPlusTree, KvEngine, LsmTree, MvccStore};
use dichotomy_core::systems::{
    Etcd, EtcdConfig, Quorum, QuorumConfig, SystemKind, SystemRegistry, SystemSpec,
};
use dichotomy_core::txn::OccExecutor;
use dichotomy_core::workload::{WorkloadSpec, YcsbConfig, YcsbMix, YcsbWorkload};

/// Whether `--smoke` was passed: scale iteration counts down for CI.
static SMOKE: AtomicBool = AtomicBool::new(false);

fn effective_iters(iters: u32) -> u32 {
    if SMOKE.load(Ordering::Relaxed) {
        (iters / 20).max(2)
    } else {
        iters
    }
}

/// Time `routine` over `iters` fresh states from `setup`, excluding setup
/// time, and print a mean ns/op line.
fn bench_batched<S, R>(
    name: &str,
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) {
    let iters = effective_iters(iters);
    for _ in 0..(iters / 10).max(1) {
        black_box(routine(setup()));
    }
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let state = setup();
        let start = Instant::now();
        let result = routine(state);
        total += start.elapsed();
        black_box(result);
    }
    let ns_per_op = total.as_nanos() as f64 / iters as f64;
    println!("{name:<34} {iters:>7} iters {ns_per_op:>14.0} ns/op");
}

/// Time a self-contained routine (no per-iteration setup).
fn bench<R>(name: &str, iters: u32, mut routine: impl FnMut() -> R) {
    bench_batched(name, iters, || (), |()| routine());
}

fn bench_hashing() {
    let data = vec![0xabu8; 1024];
    bench("sha256_1kb", 2_000, || hash::sha256(&data));
}

fn bench_authenticated_indexes() {
    bench_batched(
        "mpt_insert_1kb",
        300,
        || {
            let mut mpt = MerklePatriciaTrie::new();
            for i in 0..500u64 {
                mpt.insert(&Key::from_str(&format!("user{i:08}")), &Value::filler(100));
            }
            mpt
        },
        |mut mpt| {
            mpt.insert(&Key::from_str("user00000042"), &Value::filler(1024));
            mpt.root_hash()
        },
    );
    bench_batched(
        "mbt_put_1kb",
        300,
        MerkleBucketTree::fabric_default,
        |mut mbt| {
            mbt.put(&Key::from_str("user42"), &Value::filler(1024));
            mbt.root_hash()
        },
    );
}

fn bench_storage_engines() {
    bench_batched("lsm_put_1kb", 2_000, LsmTree::new, |mut t| {
        t.put(Key::from_str("k1"), Value::filler(1024))
    });
    bench_batched("btree_put_1kb", 2_000, BPlusTree::new, |mut t| {
        t.put(Key::from_str("k1"), Value::filler(1024))
    });
}

fn bench_occ_validation() {
    bench_batched(
        "occ_simulate_validate_commit",
        1_000,
        || {
            let mut store = MvccStore::new();
            let v = store.begin_commit();
            for i in 0..200u64 {
                store.commit_write(Key::from_str(&format!("k{i}")), v, Some(Value::filler(64)));
            }
            (store, OccExecutor::new())
        },
        |(mut store, mut occ)| {
            let txn = Transaction::new(
                TxnId::new(ClientId(1), 1),
                vec![Operation::read_modify_write(
                    Key::from_str("k7"),
                    Value::filler(64),
                )],
            );
            let sim = occ.simulate(&txn, &store);
            occ.validate_and_commit(&sim, &mut store).unwrap()
        },
    );
}

fn bench_consensus_profiles() {
    for (name, kind) in [
        ("profile_raft_commit_latency", ProtocolKind::Raft),
        ("profile_pbft_commit_latency", ProtocolKind::Pbft),
    ] {
        let profile =
            ReplicationProfile::new(kind, 7, NetworkConfig::lan_1gbps(), CostModel::default());
        bench(name, 10_000, || profile.commit_latency_us(black_box(4096)));
    }
}

fn bench_event_engine() {
    // The engine hot path: schedule N events with scattered timestamps and
    // drain them in order.
    bench("event_queue_schedule_pop_10k", 200, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule_at(i ^ 0x2a5a, i);
        }
        let mut acc = 0u64;
        while let Some((t, _)) = q.pop() {
            acc = acc.wrapping_add(t);
        }
        acc
    });
    // A synthetic service pipeline on the engine: every event books work on
    // one of two processes and reschedules a follow-up stage.
    bench("engine_two_stage_pipeline_5k", 200, || {
        let mut e: SimEngine<(u32, u64)> = SimEngine::new();
        let front = e.add_process("front", 4);
        let back = e.add_process("back", 1);
        for i in 0..5_000u64 {
            e.schedule_at(i * 3, (0, i));
        }
        let mut finished = 0u64;
        while let Some((now, (stage, token))) = e.pop() {
            match stage {
                0 => {
                    let (_, done) = e.service(front, now, 5);
                    e.schedule_at(done, (1, token));
                }
                _ => {
                    e.service(back, now, 2);
                    finished += 1;
                }
            }
        }
        finished
    });
    // The full event loop end to end: driver arrivals + etcd stage events.
    bench("engine_loop_etcd_update_300", 10, || {
        let mut system = Etcd::new(EtcdConfig::default());
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: 500,
            record_size: 200,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        run_workload(&mut system, &mut workload, &DriverConfig::saturating(300))
    });
}

fn bench_plan_executor() {
    // The plan executor end to end: an 8-probe etcd θ-sweep, sequentially
    // (`jobs=1`) vs on the worker pool (`jobs=0` → all cores). Same seed,
    // byte-identical reports; the delta is the pool's win on this machine.
    let plan = Scenario {
        id: "B",
        title: "plan executor microbench",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Etcd),
            columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
        }],
        workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(500),
        driver: DriverConfig::saturating(150),
        sweep: Sweep::Theta(vec![0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 0.9, 1.0]),
        row_labels: None,
        faults: None,
        seed: 7,
    }
    .plan();
    let registry = SystemRegistry::with_builtins();
    bench("plan_sequential_8probe_etcd", 6, || {
        run_plan_with(&plan, &registry, &ExecOptions::with_jobs(1))
    });
    bench("plan_parallel_8probe_etcd", 6, || {
        run_plan_with(&plan, &registry, &ExecOptions::default())
    });
}

fn bench_end_to_end() {
    bench("end_to_end_quorum_update_200", 10, || {
        let mut system = Quorum::new(QuorumConfig {
            max_block_txns: 50,
            block_interval_us: 50_000,
            ..QuorumConfig::default()
        });
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: 500,
            record_size: 200,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        run_workload(&mut system, &mut workload, &DriverConfig::saturating(200))
    });
    bench("end_to_end_etcd_update_200", 10, || {
        let mut system = Etcd::new(EtcdConfig::default());
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: 500,
            record_size: 200,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        run_workload(&mut system, &mut workload, &DriverConfig::saturating(200))
    });
}

fn main() {
    let mut filters: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = filters.iter().position(|a| a == "--smoke") {
        filters.remove(i);
        SMOKE.store(true, Ordering::Relaxed);
    }
    let groups: &[(&str, fn())] = &[
        ("sha256", bench_hashing),
        ("mpt mbt", bench_authenticated_indexes),
        ("lsm btree", bench_storage_engines),
        ("occ", bench_occ_validation),
        ("profile", bench_consensus_profiles),
        ("event_queue engine", bench_event_engine),
        ("plan", bench_plan_executor),
        ("end_to_end", bench_end_to_end),
    ];
    for (keys, run) in groups {
        let selected = filters.is_empty()
            || filters
                .iter()
                .any(|f| keys.split(' ').any(|k| k.contains(f.as_str())));
        if selected {
            run();
        }
    }
}
