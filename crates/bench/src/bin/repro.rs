//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin repro -- all
//! cargo run -p dichotomy-bench --release --bin repro -- fig09
//! cargo run -p dichotomy-bench --release --bin repro -- --quick fig04 fig14
//! cargo run -p dichotomy-bench --release --bin repro -- --list
//! cargo run -p dichotomy-bench --release --bin repro -- --quick --seed 7 --json out.json all
//! ```
//!
//! Flags:
//!
//! * `--quick` — scale transaction counts down for smoke runs;
//! * `--list` — print every experiment id with its report title and exit;
//! * `--txns N` — override the per-experiment transaction/record count;
//! * `--seed S` — reseed every run (same seed ⇒ bit-identical output);
//! * `--json PATH` — additionally write all completed reports as JSON. Each
//!   row of a driving experiment carries its windowed time series (`series`:
//!   per-window tps, abort %, p50/p95/p99 latency) — see
//!   `dichotomy_bench::json` for the schema.
//!
//! Unknown experiment ids exit nonzero after printing the valid list. An
//! `all` run continues past a panicking experiment and reports a
//! per-experiment error summary at the end (exiting nonzero if anything
//! failed), so one broken figure never hides the rest.

use dichotomy_bench::{json, list_experiments, run_report, RunOptions, EXPERIMENTS};
use dichotomy_core::experiments::ExperimentReport;

struct Cli {
    options: RunOptions,
    json_path: Option<String>,
    list: bool,
    targets: Vec<String>,
}

fn main() {
    let cli = parse_args(std::env::args().skip(1));

    if cli.list {
        for (key, id, title) in list_experiments() {
            println!("{key:<8} {id:<10} {title}");
        }
        return;
    }

    let targets: Vec<&str> = if cli.targets.is_empty() || cli.targets.iter().any(|t| t == "all") {
        EXPERIMENTS.to_vec()
    } else {
        cli.targets.iter().map(String::as_str).collect()
    };

    let total = targets.len();
    let mut completed: Vec<(String, ExperimentReport)> = Vec::new();
    let mut failures: Vec<(&str, String)> = Vec::new();
    for id in targets {
        let opts = cli.options.clone();
        let outcome = std::panic::catch_unwind(move || run_report(id, &opts));
        match outcome {
            Ok(Some(report)) => {
                println!("{}", report.render());
                completed.push((id.to_string(), report));
            }
            // The dispatch table and EXPERIMENTS disagree — a bug, but one
            // `all` should survive like any other per-experiment failure.
            Ok(None) => failures.push((id, "not in the dispatch table".to_string())),
            Err(panic) => failures.push((id, panic_message(&panic))),
        }
    }

    if let Some(path) = &cli.json_path {
        let doc = json::document(
            cli.options.quick,
            cli.options.txns,
            cli.options.seed,
            &completed,
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} report(s) to {path}", completed.len());
    }

    if !failures.is_empty() {
        eprintln!("{} of {} experiments failed:", failures.len(), total);
        for (id, msg) in &failures {
            eprintln!("  {id}: {msg}");
        }
        std::process::exit(1);
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        options: RunOptions::default(),
        json_path: None,
        list: false,
        targets: Vec::new(),
    };
    let mut args = args.peekable();
    let mut bad_usage = Vec::new();
    while let Some(arg) = args.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (arg.clone(), None),
        };
        match flag.as_str() {
            "--quick" | "--list" if inline_value.is_some() => {
                bad_usage.push(format!("flag '{flag}' takes no value"));
            }
            "--quick" => cli.options.quick = true,
            "--list" => cli.list = true,
            "--txns" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(n) => cli.options.txns = Some(n),
                        Err(_) => bad_usage.push(format!("--txns: '{v}' is not a count")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(s) => cli.options.seed = s,
                        Err(_) => bad_usage.push(format!("--seed: '{v}' is not a u64")),
                    }
                }
            }
            "--json" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    cli.json_path = Some(v);
                }
            }
            f if f.starts_with("--") => bad_usage.push(format!("unknown flag '{f}'")),
            _ => cli.targets.push(arg),
        }
    }

    let unknown: Vec<&String> = cli
        .targets
        .iter()
        .filter(|id| id.as_str() != "all" && !EXPERIMENTS.contains(&id.as_str()))
        .collect();
    for id in &unknown {
        bad_usage.push(format!("unknown experiment '{id}'"));
    }
    if !bad_usage.is_empty() {
        for msg in &bad_usage {
            eprintln!("{msg}");
        }
        eprintln!("valid flags: --quick --list --txns N --seed S --json PATH");
        eprintln!("valid experiments: all {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    cli
}

/// The value of `--flag value` / `--flag=value`, or `None` after recording a
/// usage error. A following `--…` token is another flag, never a value.
fn value_of(
    flag: &str,
    inline: Option<String>,
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    bad_usage: &mut Vec<String>,
) -> Option<String> {
    let next_is_value = args.peek().is_some_and(|a| !a.starts_with("--"));
    match inline.or_else(|| if next_is_value { args.next() } else { None }) {
        Some(v) => Some(v),
        None => {
            bad_usage.push(format!("flag '{flag}' needs a value"));
            None
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked (non-string payload)".to_string()
    }
}
