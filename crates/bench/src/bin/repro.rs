//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin repro -- all
//! cargo run -p dichotomy-bench --release --bin repro -- fig09
//! cargo run -p dichotomy-bench --release --bin repro -- --quick fig04 fig14
//! cargo run -p dichotomy-bench --release --bin repro -- --list
//! cargo run -p dichotomy-bench --release --bin repro -- --quick --seed 7 --json out.json all
//! cargo run -p dichotomy-bench --release --bin repro -- --quick --jobs 8 --bench timings.json all
//! ```
//!
//! Flags:
//!
//! * `--quick` — scale transaction counts down for smoke runs;
//! * `--list` — print every experiment id with its report title and exit;
//! * `--txns N` — override the per-experiment transaction/record count;
//! * `--seed S` — reseed every run (same seed ⇒ bit-identical output);
//! * `--jobs N` — worker threads for the probe pool (default: the
//!   `DICHOTOMY_JOBS` environment variable, else all available cores).
//!   Output is byte-identical whatever the worker count;
//! * `--progress` — live per-probe status lines on stderr as probes finish;
//! * `--json PATH` — additionally write all completed reports as JSON. Each
//!   row of a driving experiment carries its windowed time series (`series`:
//!   per-window tps, abort %, p50/p95/p99 latency) — see
//!   `dichotomy_bench::json` for the schema;
//! * `--bench PATH` — write per-experiment wall-clock timings as JSON (the
//!   `BENCH_*.json` trajectory seed).
//!
//! Unknown experiment ids exit nonzero after printing the valid list. An
//! `all` run continues past failures at *probe* granularity: a panicking
//! probe reports NaN columns plus a failure line naming the experiment, row
//! and probe, completed rows are kept, and the run exits nonzero at the end.
//! A panic outside any probe (plan construction itself) is still caught per
//! experiment.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use dichotomy_bench::{json, list_experiments, run_report_with, RunOptions, EXPERIMENTS};
use dichotomy_core::experiments::ExperimentReport;
use dichotomy_core::scenario::{panic_text, ExecOptions, ProbeStatus};

struct Cli {
    options: RunOptions,
    json_path: Option<String>,
    bench_path: Option<String>,
    jobs: usize,
    progress: bool,
    list: bool,
    targets: Vec<String>,
}

fn main() {
    let cli = parse_args(std::env::args().skip(1));

    if cli.list {
        for (key, id, title) in list_experiments() {
            println!("{key:<8} {id:<10} {title}");
        }
        return;
    }

    let targets: Vec<&str> = if cli.targets.is_empty() || cli.targets.iter().any(|t| t == "all") {
        EXPERIMENTS.to_vec()
    } else {
        cli.targets.iter().map(String::as_str).collect()
    };

    let total = targets.len();
    let mut completed: Vec<(String, ExperimentReport)> = Vec::new();
    let mut failures: Vec<(&str, String)> = Vec::new();
    let mut timings: Vec<json::BenchTiming> = Vec::new();
    for id in targets {
        let opts = cli.options.clone();
        let progress = |s: &ProbeStatus| match &s.error {
            Some(e) => eprintln!(
                "[{id}] probe {}/{} '{}' / '{}': FAILED: {e}",
                s.done, s.total, s.row, s.probe
            ),
            None => eprintln!(
                "[{id}] probe {}/{} '{}' / '{}'",
                s.done, s.total, s.row, s.probe
            ),
        };
        let exec = ExecOptions {
            jobs: cli.jobs,
            progress: if cli.progress { Some(&progress) } else { None },
        };
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_report_with(id, &opts, &exec)));
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let (rows, failed_probes, ok) = match outcome {
            Ok(Some(report)) => {
                println!("{}", report.render());
                // Per-probe failures: attributable even when many probes ran
                // in parallel — every line names experiment, row and probe.
                for f in &report.failures {
                    failures.push((
                        id,
                        format!("row '{}' probe '{}': {}", f.row, f.probe, f.message),
                    ));
                }
                let counts = (report.rows.len(), report.failures.len(), true);
                completed.push((id.to_string(), report));
                counts
            }
            // The dispatch table and EXPERIMENTS disagree — a bug, but one
            // `all` should survive like any other per-experiment failure.
            Ok(None) => {
                failures.push((id, "not in the dispatch table".to_string()));
                (0, 0, false)
            }
            Err(panic) => {
                failures.push((id, panic_text(panic.as_ref())));
                (0, 0, false)
            }
        };
        timings.push(json::BenchTiming {
            key: id.to_string(),
            wall_ms,
            rows,
            failed_probes,
            ok,
        });
    }

    // Write both output documents before deciding the exit code: a broken
    // --json path must not swallow the --bench document or the failure
    // summary (and vice versa).
    let mut write_failed = false;
    if let Some(path) = &cli.json_path {
        let doc = json::document(
            cli.options.quick,
            cli.options.txns,
            cli.options.seed,
            &completed,
        );
        match std::fs::write(path, doc) {
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                write_failed = true;
            }
            Ok(()) => eprintln!("wrote {} report(s) to {path}", completed.len()),
        }
    }

    if let Some(path) = &cli.bench_path {
        let doc = json::bench_document(
            cli.options.quick,
            cli.options.txns,
            cli.options.seed,
            ExecOptions::with_jobs(cli.jobs).effective_jobs(),
            &timings,
        );
        match std::fs::write(path, doc) {
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                write_failed = true;
            }
            Ok(()) => eprintln!(
                "wrote timings for {} experiment(s) to {path}",
                timings.len()
            ),
        }
    }

    if !failures.is_empty() {
        eprintln!(
            "{} failure(s) across {} experiments:",
            failures.len(),
            total
        );
        for (id, msg) in &failures {
            eprintln!("  {id}: {msg}");
        }
    }
    if !failures.is_empty() || write_failed {
        std::process::exit(1);
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        options: RunOptions::default(),
        json_path: None,
        bench_path: None,
        jobs: 0,
        progress: false,
        list: false,
        targets: Vec::new(),
    };
    let mut args = args.peekable();
    let mut bad_usage = Vec::new();
    while let Some(arg) = args.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (arg.clone(), None),
        };
        match flag.as_str() {
            "--quick" | "--list" | "--progress" if inline_value.is_some() => {
                bad_usage.push(format!("flag '{flag}' takes no value"));
            }
            "--quick" => cli.options.quick = true,
            "--list" => cli.list = true,
            "--progress" => cli.progress = true,
            "--txns" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(n) => cli.options.txns = Some(n),
                        Err(_) => bad_usage.push(format!("--txns: '{v}' is not a count")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(s) => cli.options.seed = s,
                        Err(_) => bad_usage.push(format!("--seed: '{v}' is not a u64")),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => cli.jobs = n,
                        _ => bad_usage.push(format!("--jobs: '{v}' is not a worker count ≥ 1")),
                    }
                }
            }
            "--json" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    cli.json_path = Some(v);
                }
            }
            "--bench" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    cli.bench_path = Some(v);
                }
            }
            f if f.starts_with("--") => bad_usage.push(format!("unknown flag '{f}'")),
            _ => cli.targets.push(arg),
        }
    }

    let unknown: Vec<&String> = cli
        .targets
        .iter()
        .filter(|id| id.as_str() != "all" && !EXPERIMENTS.contains(&id.as_str()))
        .collect();
    for id in &unknown {
        bad_usage.push(format!("unknown experiment '{id}'"));
    }
    if !bad_usage.is_empty() {
        for msg in &bad_usage {
            eprintln!("{msg}");
        }
        eprintln!(
            "valid flags: --quick --list --progress --txns N --seed S --jobs N --json PATH --bench PATH"
        );
        eprintln!("valid experiments: all {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    cli
}

/// The value of `--flag value` / `--flag=value`, or `None` after recording a
/// usage error. A following `--…` token is another flag, never a value.
fn value_of(
    flag: &str,
    inline: Option<String>,
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    bad_usage: &mut Vec<String>,
) -> Option<String> {
    let next_is_value = args.peek().is_some_and(|a| !a.starts_with("--"));
    match inline.or_else(|| if next_is_value { args.next() } else { None }) {
        Some(v) => Some(v),
        None => {
            bad_usage.push(format!("flag '{flag}' needs a value"));
            None
        }
    }
}
