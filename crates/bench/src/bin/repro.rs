//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin repro -- all
//! cargo run -p dichotomy-bench --release --bin repro -- fig09
//! cargo run -p dichotomy-bench --release --bin repro -- --quick fig04 fig14
//! cargo run -p dichotomy-bench --release --bin repro -- --list
//! cargo run -p dichotomy-bench --release --bin repro -- --quick --seed 7 --json out.json all
//! cargo run -p dichotomy-bench --release --bin repro -- --quick --jobs 8 \
//!     --bench BENCH_history.json --bench-key "$(git describe --always)" all
//! cargo run -p dichotomy-bench --release --bin repro -- --arrival closed --think-us 500 fig04
//! ```
//!
//! Flags:
//!
//! * `--quick` — scale transaction counts down for smoke runs;
//! * `--list` — print every experiment id with its report title and exit;
//!   experiments whose probes carry a declarative fault schedule are marked
//!   `[faults]`;
//! * `--txns N` — override the per-experiment transaction/record count;
//! * `--seed S` — reseed every run (same seed ⇒ bit-identical output);
//! * `--jobs N` — worker threads for the probe pool (default: the
//!   `DICHOTOMY_JOBS` environment variable, else all available cores). One
//!   pool is shared across *all* requested experiments, so workers stay busy
//!   over experiment boundaries. Output is byte-identical whatever the
//!   worker count;
//! * `--progress` — live per-probe status lines on stderr as probes finish;
//! * `--fail-fast` — stop scheduling probes after the first failure (queued
//!   probes report a labelled "skipped" failure instead of running);
//! * `--arrival open|closed` — override every driving probe's arrival
//!   process: `open` forces the open-loop default, `closed` a closed loop
//!   with each probe's configured client count;
//! * `--think-us N` / `--outstanding N` — the closed-loop override's mean
//!   think time (default 1000 µs) and outstanding cap (default 1); only
//!   valid with `--arrival closed`;
//! * `--metrics exact|streaming` — override every driving probe's metrics
//!   mode: `exact` retains receipts and computes order-statistic
//!   percentiles (the default of every experiment except `scale01`),
//!   `streaming` folds receipts into per-window P² sketches in O(windows)
//!   memory;
//! * `--json PATH` — additionally write all completed reports as JSON. Each
//!   row of a driving experiment carries its windowed time series (`series`:
//!   per-window offered/achieved tps, abort %, p50/p95/p99 latency) — see
//!   `dichotomy_bench::json` for the schema;
//! * `--bench PATH` — **append** per-experiment worker-time timings to the
//!   bench-trajectory history at PATH (created if missing; refuses documents
//!   that are not a `repro-bench-history`);
//! * `--bench-key KEY` — the label of the appended history entry (pass
//!   `git describe`/a date; the run never reads the wall clock for it).
//!   Without the flag the entry is keyed by a stable digest of the run's
//!   own parameters (quick/txns/seed/jobs), so history stays comparable
//!   even where `git describe` is unavailable;
//! * `--cache` — answer probes from the persistent content-addressed result
//!   cache at `.repro-cache/` and store misses back into it. A hit is
//!   byte-identical to a cold run: results are keyed by a hash of every
//!   input that reaches the measurement (system, workload, driver, arrival,
//!   metrics mode, faults, seed, transaction count) and round-trip through
//!   the in-repo codec. `--no-cache` (the default) turns it back off;
//! * `repro cache stats` / `repro cache clear` — inspect or delete the
//!   cache (per schema-tag entry counts and sizes);
//! * `repro lint [--quick] [--txns N] [--seed S] [--json PATH] [ID…]` —
//!   expand the requested experiments (default: all) **without executing
//!   them** and report semantic plan diagnostics (`S0xx`): out-of-horizon
//!   faults, duplicate sweep points, mixed populations that round to a zero
//!   transaction share, measurement windows longer than the run, zero-probe
//!   experiments. The pseudo-id `explore` (part of `all`) lints the
//!   design-space explorer's spec instead (`S008`: a prune configuration
//!   that eliminates every candidate). Exit 1 when any deny-level finding
//!   survives;
//! * `repro explore [--quick] [--txns N] [--seed S] [--jobs N] [--progress]
//!   [--cache] [--keep-frac F] [--min-forecast-tps T] [--max-candidates N]
//!   [--json PATH] [--sched-walls] [--bench PATH] [--bench-key KEY]` — the
//!   design-space explorer: enumerate the system × workload grid, prune
//!   forecast-dominated candidates (every cut is reported), measure the
//!   survivors on the shared probe pool (dedup, cache and LPT scheduling
//!   apply), and report the Pareto front over throughput / p99 latency /
//!   fault-recovery time plus the forecast-calibration summary (Kendall's
//!   τ, per-taxonomy-cell error and correction). Stdout and the `--json`
//!   document are byte-identical across `--jobs` counts and cache states;
//!   `--sched-walls` additionally fills measured walls into the
//!   `calibration.scheduling` entries (trading away that byte-identity).
//!
//! Whatever the flags, duplicate probes *within* a run execute once and fan
//! out to every table cell that needs them, and the deduplicated queue is
//! ordered longest-predicted-first (the `dichotomy-hybrid` forecast model)
//! to shrink the worker pool's makespan. The run prints a dedup summary —
//! `probes: N scheduled, K distinct, D cache hits …` — on stderr, and the
//! `--bench` entries carry per-experiment `dedup_saved_ms`, `cache_hits`
//! and a predicted-vs-actual `calibration` array. Text-only experiments
//! (`tab02`) schedule no probes and are left out of the bench timings.
//!
//! Unknown experiment ids exit nonzero after printing the valid list. An
//! `all` run continues past failures at *probe* granularity: a panicking
//! probe reports NaN columns plus a failure line naming the experiment, row
//! and probe, completed rows are kept, and the run exits nonzero at the end.
//! A panic outside any probe (plan construction itself) is still caught per
//! experiment.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use dichotomy_bench::{
    cache, json, list_experiments, plan_for, ArrivalOverride, RunOptions, EXPERIMENTS,
};
use dichotomy_core::experiments::ExperimentReport;
use dichotomy_core::metrics::MetricsMode;
use dichotomy_core::scenario::{
    panic_text, run_plans_with, ExecOptions, ExperimentPlan, ProbeCache, ProbeStatus,
};
use dichotomy_core::systems::SystemRegistry;

/// Where `--cache` keeps its entries, relative to the working directory.
const CACHE_ROOT: &str = ".repro-cache";

struct Cli {
    options: RunOptions,
    json_path: Option<String>,
    bench_path: Option<String>,
    bench_key: Option<String>,
    jobs: usize,
    progress: bool,
    fail_fast: bool,
    cache: bool,
    list: bool,
    targets: Vec<String>,
}

/// One requested experiment: its plan, or why it has none.
enum Planned {
    Ready(ExperimentPlan),
    Failed(String),
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("cache") {
        std::process::exit(cache_command(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("lint") {
        std::process::exit(lint_command(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("explore") {
        std::process::exit(explore_command(&raw[1..]));
    }
    let cli = parse_args(raw.into_iter());

    if cli.list {
        for (key, id, title, has_faults) in list_experiments() {
            let marker = if has_faults { " [faults]" } else { "" };
            println!("{key:<8} {id:<10} {title}{marker}");
        }
        return;
    }

    let targets: Vec<&str> = if cli.targets.is_empty() || cli.targets.iter().any(|t| t == "all") {
        EXPERIMENTS.to_vec()
    } else {
        cli.targets.iter().map(String::as_str).collect()
    };
    let total = targets.len();

    // Expand every plan first (plan construction can panic — e.g. malformed
    // sweeps — and must not take the other experiments down), then run all
    // ready plans on ONE shared worker pool.
    let planned: Vec<(&str, Planned)> = targets
        .iter()
        .map(|&id| {
            let plan = match catch_unwind(AssertUnwindSafe(|| plan_for(id, &cli.options))) {
                Ok(Some(plan)) => Planned::Ready(plan),
                Ok(None) => Planned::Failed("not in the dispatch table".to_string()),
                Err(panic) => Planned::Failed(panic_text(panic.as_ref())),
            };
            (id, plan)
        })
        .collect();
    let ready: Vec<(&str, &ExperimentPlan)> = planned
        .iter()
        .filter_map(|(id, p)| match p {
            Planned::Ready(plan) => Some((*id, plan)),
            Planned::Failed(_) => None,
        })
        .collect();

    let progress = |s: &ProbeStatus| {
        let id = ready.get(s.plan).map(|(id, _)| *id).unwrap_or("?");
        let origin = if s.cached {
            " [cached]"
        } else if s.deduped {
            " [dedup]"
        } else {
            ""
        };
        match &s.error {
            Some(e) => eprintln!(
                "[{id}] probe {}/{} '{}' / '{}': FAILED: {e}",
                s.done, s.total, s.row, s.probe
            ),
            None => eprintln!(
                "[{id}] probe {}/{} '{}' / '{}'{origin}",
                s.done, s.total, s.row, s.probe
            ),
        }
    };
    let disk_cache = if cli.cache {
        match cache::DiskCache::open(Path::new(CACHE_ROOT)) {
            Ok(c) => Some(c),
            Err(e) => {
                // A cache that cannot open still measures correctly.
                eprintln!("cannot open {CACHE_ROOT} (running uncached): {e}");
                None
            }
        }
    } else {
        None
    };
    let exec = ExecOptions {
        jobs: cli.jobs,
        progress: if cli.progress { Some(&progress) } else { None },
        fail_fast: cli.fail_fast,
        cache: disk_cache.as_ref().map(|c| c as &dyn ProbeCache),
    };
    let plans: Vec<&ExperimentPlan> = ready.iter().map(|(_, plan)| *plan).collect();
    let mut outcomes = run_plans_with(&plans, &SystemRegistry::with_builtins(), &exec).into_iter();

    let mut completed: Vec<(String, ExperimentReport)> = Vec::new();
    let mut failures: Vec<(&str, String)> = Vec::new();
    let mut timings: Vec<json::BenchTiming> = Vec::new();
    let (mut sum_probes, mut sum_distinct, mut sum_hits) = (0usize, 0usize, 0usize);
    let (mut sum_wall_ms, mut sum_saved_ms) = (0.0f64, 0.0f64);
    for (id, plan) in planned {
        match plan {
            Planned::Ready(plan) => {
                let outcome = outcomes.next().expect("one outcome per ready plan");
                let report = outcome.report;
                println!("{}", report.render());
                // Per-probe failures: attributable even when many probes ran
                // in parallel — every line names experiment, row and probe.
                for f in &report.failures {
                    failures.push((
                        id,
                        format!("row '{}' probe '{}': {}", f.row, f.probe, f.message),
                    ));
                }
                sum_probes += outcome.probes;
                sum_distinct += outcome.distinct_probes;
                sum_hits += outcome.cache_hits;
                sum_wall_ms += outcome.probe_wall_ms;
                sum_saved_ms += outcome.dedup_saved_ms;
                // Text-only experiments (tab02) schedule no probes: a
                // 0-row/0-ms timing entry is noise in the trajectory.
                if plan.probe_count() > 0 {
                    timings.push(json::BenchTiming {
                        key: id.to_string(),
                        wall_ms: outcome.probe_wall_ms,
                        rows: report.rows.len(),
                        failed_probes: report.failures.len(),
                        ok: true,
                        probes: outcome.probes,
                        distinct_probes: outcome.distinct_probes,
                        cache_hits: outcome.cache_hits,
                        dedup_saved_ms: outcome.dedup_saved_ms,
                        calibration: outcome.calibration,
                    });
                }
                completed.push((id.to_string(), report));
            }
            Planned::Failed(message) => {
                failures.push((id, message));
                timings.push(json::BenchTiming::empty(id.to_string(), false));
            }
        }
    }
    eprintln!(
        "probes: {sum_probes} scheduled, {sum_distinct} distinct, {sum_hits} cache hits; \
         worker time {sum_wall_ms:.0} ms, dedup saved {sum_saved_ms:.0} ms"
    );

    // Write both output documents before deciding the exit code: a broken
    // --json path must not swallow the --bench document or the failure
    // summary (and vice versa).
    let mut write_failed = false;
    if let Some(path) = &cli.json_path {
        let doc = json::document(
            cli.options.quick,
            cli.options.txns,
            cli.options.seed,
            &completed,
        );
        match std::fs::write(path, doc) {
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                write_failed = true;
            }
            Ok(()) => eprintln!("wrote {} report(s) to {path}", completed.len()),
        }
    }

    if let Some(path) = &cli.bench_path {
        // No explicit key: derive a stable one from the run's own
        // parameters, so trajectories stay comparable where `git describe`
        // is unavailable (tarball checkouts, CI containers without tags).
        let bench_key = cli.bench_key.clone().unwrap_or_else(|| {
            json::stable_bench_key(
                cli.options.quick,
                cli.options.txns,
                cli.options.seed,
                ExecOptions::with_jobs(cli.jobs).effective_jobs(),
            )
        });
        let entry = json::bench_document(
            &bench_key,
            cli.options.quick,
            cli.options.txns,
            cli.options.seed,
            ExecOptions::with_jobs(cli.jobs).effective_jobs(),
            &timings,
        );
        let existing = std::fs::read_to_string(path).ok();
        match json::append_history(existing.as_deref(), &entry)
            .map_err(|e| e.to_string())
            .and_then(|doc| std::fs::write(path, doc).map_err(|e| e.to_string()))
        {
            Err(e) => {
                eprintln!("cannot append bench history to {path}: {e}");
                write_failed = true;
            }
            Ok(()) => eprintln!(
                "appended '{bench_key}' ({} experiment timings) to {path}",
                timings.len()
            ),
        }
    }

    if !failures.is_empty() {
        eprintln!(
            "{} failure(s) across {} experiments:",
            failures.len(),
            total
        );
        for (id, msg) in &failures {
            eprintln!("  {id}: {msg}");
        }
    }
    if !failures.is_empty() || write_failed {
        std::process::exit(1);
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli {
        options: RunOptions::default(),
        json_path: None,
        bench_path: None,
        bench_key: None,
        jobs: 0,
        progress: false,
        fail_fast: false,
        cache: false,
        list: false,
        targets: Vec::new(),
    };
    let mut args = args.peekable();
    let mut bad_usage = Vec::new();
    let mut think_us: Option<u64> = None;
    let mut outstanding: Option<u64> = None;
    let mut arrival: Option<String> = None;
    while let Some(arg) = args.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (arg.clone(), None),
        };
        match flag.as_str() {
            "--quick" | "--list" | "--progress" | "--fail-fast" | "--cache" | "--no-cache"
                if inline_value.is_some() =>
            {
                bad_usage.push(format!("flag '{flag}' takes no value"));
            }
            "--quick" => cli.options.quick = true,
            "--list" => cli.list = true,
            "--progress" => cli.progress = true,
            "--fail-fast" => cli.fail_fast = true,
            "--cache" => cli.cache = true,
            "--no-cache" => cli.cache = false,
            "--txns" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(n) => cli.options.txns = Some(n),
                        Err(_) => bad_usage.push(format!("--txns: '{v}' is not a count")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(s) => cli.options.seed = s,
                        Err(_) => bad_usage.push(format!("--seed: '{v}' is not a u64")),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => cli.jobs = n,
                        _ => bad_usage.push(format!("--jobs: '{v}' is not a worker count ≥ 1")),
                    }
                }
            }
            "--arrival" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.as_str() {
                        "open" | "closed" => arrival = Some(v),
                        _ => bad_usage.push(format!("--arrival: '{v}' is not open|closed")),
                    }
                }
            }
            "--think-us" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(n) => think_us = Some(n),
                        Err(_) => bad_usage.push(format!("--think-us: '{v}' is not µs")),
                    }
                }
            }
            "--outstanding" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(n) if n >= 1 => outstanding = Some(n),
                        _ => bad_usage.push(format!("--outstanding: '{v}' is not a cap ≥ 1")),
                    }
                }
            }
            "--json" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    cli.json_path = Some(v);
                }
            }
            "--bench" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    cli.bench_path = Some(v);
                }
            }
            "--bench-key" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    cli.bench_key = Some(v);
                }
            }
            "--metrics" => {
                if let Some(v) = value_of(&flag, inline_value.clone(), &mut args, &mut bad_usage) {
                    match v.as_str() {
                        "exact" => cli.options.metrics = Some(MetricsMode::Exact),
                        "streaming" => cli.options.metrics = Some(MetricsMode::Streaming),
                        _ => bad_usage.push(format!("--metrics: '{v}' is not exact|streaming")),
                    }
                }
            }
            f if f.starts_with("--") => bad_usage.push(format!("unknown flag '{f}'")),
            _ => cli.targets.push(arg),
        }
    }

    cli.options.arrival = match arrival.as_deref() {
        None => {
            if think_us.is_some() || outstanding.is_some() {
                bad_usage.push("--think-us/--outstanding need --arrival closed".to_string());
            }
            None
        }
        Some("open") => {
            if think_us.is_some() || outstanding.is_some() {
                bad_usage.push("--think-us/--outstanding need --arrival closed".to_string());
            }
            Some(ArrivalOverride::Open)
        }
        Some(_) => Some(ArrivalOverride::Closed {
            think_time_us: think_us.unwrap_or(1_000),
            max_outstanding: outstanding.unwrap_or(1),
        }),
    };

    let unknown: Vec<&String> = cli
        .targets
        .iter()
        .filter(|id| id.as_str() != "all" && !EXPERIMENTS.contains(&id.as_str()))
        .collect();
    for id in &unknown {
        bad_usage.push(format!("unknown experiment '{id}'"));
    }
    if !bad_usage.is_empty() {
        for msg in &bad_usage {
            eprintln!("{msg}");
        }
        eprintln!(
            "valid flags: --quick --list --progress --fail-fast --cache --no-cache --txns N \
             --seed S --jobs N --arrival open|closed --think-us N --outstanding N \
             --metrics exact|streaming --json PATH --bench PATH --bench-key KEY"
        );
        eprintln!("subcommands: cache stats|clear, explore, lint");
        eprintln!("valid experiments: all {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    cli
}

/// `repro cache stats|clear`: inspect or delete the persistent result
/// cache. Returns the process exit code.
fn cache_command(args: &[String]) -> i32 {
    let root = Path::new(CACHE_ROOT);
    match (args.first().map(String::as_str), args.len()) {
        (Some("stats"), 1) => {
            let tags = cache::stats(root);
            if tags.is_empty() {
                println!("cache {CACHE_ROOT}: empty");
            } else {
                for t in &tags {
                    println!(
                        "{}{:<28} {:>6} entries {:>12} bytes",
                        if t.current { "* " } else { "  " },
                        t.tag,
                        t.entries,
                        t.bytes
                    );
                }
                println!("(*: the schema tag current binaries read and write)");
            }
            0
        }
        (Some("clear"), 1) => match cache::clear(root) {
            Ok(()) => {
                println!("cleared {CACHE_ROOT}");
                0
            }
            Err(e) => {
                eprintln!("cannot clear {CACHE_ROOT}: {e}");
                1
            }
        },
        _ => {
            eprintln!("usage: repro cache stats|clear");
            2
        }
    }
}

/// `repro explore` — run the design-space explorer: enumerate the
/// `ExploreSpec` grid, prune by forecast, measure the survivors on the
/// shared probe pool, and report the Pareto front plus the forecast
/// calibration. Exit status: 0 on success, 1 when the spec lints deny
/// (`S008` zero-survivor), a probe fails, or an output path cannot be
/// written, 2 on usage errors.
fn explore_command(args: &[String]) -> i32 {
    let mut quick = false;
    let mut txns_override: Option<u64> = None;
    let mut seed = dichotomy_core::common::rng::DEFAULT_SEED;
    let mut jobs = 0usize;
    let mut progress = false;
    let mut use_cache = false;
    let mut keep_frac: Option<f64> = None;
    let mut min_forecast_tps: Option<f64> = None;
    let mut max_candidates: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut sched_walls = false;
    let mut bench_path: Option<String> = None;
    let mut bench_key: Option<String> = None;
    let mut bad_usage: Vec<String> = Vec::new();
    let mut it = args.iter().cloned().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (arg.clone(), None),
        };
        match flag.as_str() {
            "--quick" => quick = true,
            "--progress" => progress = true,
            "--cache" => use_cache = true,
            "--no-cache" => use_cache = false,
            "--sched-walls" => sched_walls = true,
            "--txns" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(n) => txns_override = Some(n),
                        Err(_) => bad_usage.push(format!("--txns: not a count: '{v}'")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(s) => seed = s,
                        Err(_) => bad_usage.push(format!("--seed: not a seed: '{v}'")),
                    }
                }
            }
            "--jobs" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<usize>() {
                        Ok(n) if n >= 1 => jobs = n,
                        _ => bad_usage.push(format!("--jobs: not a worker count ≥ 1: '{v}'")),
                    }
                }
            }
            "--keep-frac" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<f64>() {
                        Ok(f) if (0.0..=1.0).contains(&f) => keep_frac = Some(f),
                        _ => bad_usage.push(format!("--keep-frac: not a fraction in [0,1]: '{v}'")),
                    }
                }
            }
            "--min-forecast-tps" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<f64>() {
                        Ok(f) if f >= 0.0 && f.is_finite() => min_forecast_tps = Some(f),
                        _ => bad_usage.push(format!("--min-forecast-tps: not a rate ≥ 0: '{v}'")),
                    }
                }
            }
            "--max-candidates" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<usize>() {
                        Ok(n) => max_candidates = Some(n),
                        Err(_) => bad_usage.push(format!("--max-candidates: not a count: '{v}'")),
                    }
                }
            }
            "--json" => json_path = value_of(&flag, inline, &mut it, &mut bad_usage),
            "--bench" => bench_path = value_of(&flag, inline, &mut it, &mut bad_usage),
            "--bench-key" => bench_key = value_of(&flag, inline, &mut it, &mut bad_usage),
            _ => bad_usage.push(format!("unknown argument '{arg}'")),
        }
    }
    if !bad_usage.is_empty() {
        for b in &bad_usage {
            eprintln!("repro explore: {b}");
        }
        eprintln!(
            "usage: repro explore [--quick] [--txns N] [--seed S] [--jobs N] [--progress] \
             [--cache|--no-cache] [--keep-frac F] [--min-forecast-tps T] [--max-candidates N] \
             [--json PATH] [--sched-walls] [--bench PATH] [--bench-key KEY]"
        );
        return 2;
    }

    let txns = txns_override.unwrap_or(if quick { 300 } else { 2_000 });
    let mut spec = if quick {
        dichotomy_explore::ExploreSpec::quick(txns, seed)
    } else {
        dichotomy_explore::ExploreSpec::full(txns, seed)
    };
    if let Some(f) = keep_frac {
        spec.prune.keep_frac = f;
    }
    if let Some(t) = min_forecast_tps {
        spec.prune.min_forecast_tps = t;
    }
    if let Some(n) = max_candidates {
        spec.max_candidates = if n == 0 { None } else { Some(n) };
    }

    // Gate on the spec lints before anything executes: an exploration that
    // would measure nothing (S008) is a configuration bug, not an empty
    // result.
    let diags = dichotomy_explore::lint_spec(&spec);
    if dichotomy_core::common::diag::has_deny(&diags) {
        for d in &diags {
            eprintln!("{}", d.render());
        }
        return 1;
    }

    let progress_fn = |s: &ProbeStatus| {
        let origin = if s.cached {
            " [cached]"
        } else if s.deduped {
            " [dedup]"
        } else {
            ""
        };
        match &s.error {
            Some(e) => eprintln!(
                "[explore] probe {}/{} '{}' / '{}': FAILED: {e}",
                s.done, s.total, s.row, s.probe
            ),
            None => eprintln!(
                "[explore] probe {}/{} '{}' / '{}'{origin}",
                s.done, s.total, s.row, s.probe
            ),
        }
    };
    let disk_cache = if use_cache {
        match cache::DiskCache::open(Path::new(CACHE_ROOT)) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("cannot open {CACHE_ROOT} (running uncached): {e}");
                None
            }
        }
    } else {
        None
    };
    let exec = ExecOptions {
        jobs,
        progress: if progress { Some(&progress_fn) } else { None },
        fail_fast: false,
        cache: disk_cache.as_ref().map(|c| c as &dyn ProbeCache),
    };
    let outcome =
        match dichotomy_explore::run_explore(&spec, &SystemRegistry::with_builtins(), &exec) {
            Ok(o) => o,
            Err(e) => {
                // Unreachable after the lint gate, but a belt to its braces.
                eprintln!("repro explore: {e}");
                return 1;
            }
        };

    print!("{}", outcome.render());
    eprintln!(
        "probes: {} scheduled, {} distinct, {} cache hits; worker time {:.0} ms, \
         dedup saved {:.0} ms",
        outcome.plan.probes,
        outcome.plan.distinct_probes,
        outcome.plan.cache_hits,
        outcome.plan.probe_wall_ms,
        outcome.plan.dedup_saved_ms
    );
    for f in &outcome.plan.report.failures {
        eprintln!(
            "repro explore: row '{}' probe '{}': {}",
            f.row, f.probe, f.message
        );
    }

    let mut write_failed = false;
    if let Some(path) = &json_path {
        // The scheduling calibration feed: deterministic predictions always;
        // measured walls only under --sched-walls (cache hits carry none),
        // because walls vary run to run and the default document is compared
        // byte-for-byte across worker counts and cache states.
        let sched: Vec<(String, f64, Option<f64>)> = outcome
            .scheduling
            .iter()
            .map(|(probe, predicted)| {
                let wall = if sched_walls {
                    outcome
                        .plan
                        .calibration
                        .iter()
                        .find(|c| &c.probe == probe)
                        .map(|c| c.wall_ms)
                } else {
                    None
                };
                (probe.clone(), *predicted, wall)
            })
            .collect();
        let doc = json::explore_document(quick, txns, seed, &outcome, &sched);
        match std::fs::write(path, doc) {
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                write_failed = true;
            }
            Ok(()) => eprintln!(
                "wrote the exploration report ({} designs) to {path}",
                outcome.designs.len()
            ),
        }
    }

    if let Some(path) = &bench_path {
        let effective_jobs = ExecOptions::with_jobs(jobs).effective_jobs();
        let timing = json::BenchTiming {
            key: "explore".to_string(),
            wall_ms: outcome.plan.probe_wall_ms,
            rows: outcome.plan.report.rows.len(),
            failed_probes: outcome.plan.report.failures.len(),
            ok: true,
            probes: outcome.plan.probes,
            distinct_probes: outcome.plan.distinct_probes,
            cache_hits: outcome.plan.cache_hits,
            dedup_saved_ms: outcome.plan.dedup_saved_ms,
            calibration: outcome.plan.calibration.clone(),
        };
        let key = bench_key
            .unwrap_or_else(|| json::stable_bench_key(quick, Some(txns), seed, effective_jobs));
        let entry = json::bench_document(&key, quick, Some(txns), seed, effective_jobs, &[timing]);
        let existing = std::fs::read_to_string(path).ok();
        match json::append_history(existing.as_deref(), &entry)
            .and_then(|doc| std::fs::write(path, doc).map_err(|e| e.to_string()))
        {
            Err(e) => {
                eprintln!("cannot append bench history to {path}: {e}");
                write_failed = true;
            }
            Ok(()) => eprintln!("appended '{key}' (explore timing) to {path}"),
        }
    }

    if !outcome.plan.report.failures.is_empty() || write_failed {
        1
    } else {
        0
    }
}

/// `repro lint` — expand experiments without executing them and report
/// semantic plan diagnostics (the `S0xx` codes of `dichotomy_core::lint`).
///
/// Loci are keyed by the repro experiment id (`fig04`, `tab02`, …) so the
/// output lines up with `repro --list` and the run commands. The pseudo-id
/// `explore` (included in `all`) lints the `repro explore` spec instead of
/// a plan — `S008` denies a zero-survivor exploration; `--keep-frac` and
/// `--min-forecast-tps` mirror the explore flags so the exact configuration
/// about to run is what gets checked. Exit status: 0 clean (notes/warnings
/// allowed), 1 on any deny-level finding, 2 on usage errors.
fn lint_command(args: &[String]) -> i32 {
    let mut opts = RunOptions::default();
    let mut json_path: Option<String> = None;
    let mut keep_frac: Option<f64> = None;
    let mut min_forecast_tps: Option<f64> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut bad_usage: Vec<String> = Vec::new();
    let mut it = args.iter().cloned().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--keep-frac" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<f64>() {
                        Ok(f) if (0.0..=1.0).contains(&f) => keep_frac = Some(f),
                        _ => bad_usage.push(format!("--keep-frac: not a fraction in [0,1]: '{v}'")),
                    }
                }
            }
            "--min-forecast-tps" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<f64>() {
                        Ok(f) if f >= 0.0 && f.is_finite() => min_forecast_tps = Some(f),
                        _ => bad_usage.push(format!("--min-forecast-tps: not a rate ≥ 0: '{v}'")),
                    }
                }
            }
            "--txns" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(n) => opts.txns = Some(n),
                        Err(_) => bad_usage.push(format!("--txns: not a count: '{v}'")),
                    }
                }
            }
            "--seed" => {
                if let Some(v) = value_of(&flag, inline, &mut it, &mut bad_usage) {
                    match v.parse::<u64>() {
                        Ok(s) => opts.seed = s,
                        Err(_) => bad_usage.push(format!("--seed: not a seed: '{v}'")),
                    }
                }
            }
            "--json" => {
                json_path = value_of(&flag, inline, &mut it, &mut bad_usage);
            }
            _ if flag.starts_with("--") => bad_usage.push(format!("unknown flag '{flag}'")),
            _ => targets.push(arg),
        }
    }
    if !bad_usage.is_empty() {
        for b in &bad_usage {
            eprintln!("repro lint: {b}");
        }
        eprintln!(
            "usage: repro lint [--quick] [--txns N] [--seed S] [--keep-frac F] \
             [--min-forecast-tps T] [--json PATH] [ID...|explore]"
        );
        return 2;
    }

    let all = targets.is_empty() || targets.iter().any(|t| t == "all");
    let want_explore = all || targets.iter().any(|t| t == "explore");
    let ids: Vec<&str> = if all {
        EXPERIMENTS.to_vec()
    } else {
        targets
            .iter()
            .map(String::as_str)
            .filter(|t| *t != "explore")
            .collect()
    };

    let mut diags = Vec::new();
    let mut expanded = 0usize;
    for id in &ids {
        let plan = match catch_unwind(AssertUnwindSafe(|| plan_for(id, &opts))) {
            Ok(Some(plan)) => plan,
            Ok(None) => {
                eprintln!("repro lint: unknown experiment '{id}' (try --list)");
                return 2;
            }
            Err(payload) => {
                eprintln!(
                    "repro lint: expanding '{id}' panicked: {}",
                    panic_text(payload.as_ref())
                );
                return 2;
            }
        };
        expanded += 1;
        diags.extend(dichotomy_core::lint_plan(&plan).into_iter().map(|mut d| {
            // Key loci by the repro id (`fig04`, `tab02`, …), not the plan's
            // report title, so findings line up with the run commands.
            if let dichotomy_core::common::Locus::Plan { experiment, .. } = &mut d.locus {
                *experiment = (*id).to_string();
            }
            d.for_experiment(id)
        }));
    }

    if want_explore {
        // Lint the explore spec exactly as `repro explore` would build it
        // from the same flags.
        let txns = opts.txns.unwrap_or(if opts.quick { 300 } else { 2_000 });
        let mut spec = if opts.quick {
            dichotomy_explore::ExploreSpec::quick(txns, opts.seed)
        } else {
            dichotomy_explore::ExploreSpec::full(txns, opts.seed)
        };
        if let Some(f) = keep_frac {
            spec.prune.keep_frac = f;
        }
        if let Some(t) = min_forecast_tps {
            spec.prune.min_forecast_tps = t;
        }
        expanded += 1;
        diags.extend(dichotomy_explore::lint_spec(&spec));
    }

    for diag in &diags {
        println!("{}", diag.render());
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == dichotomy_core::common::Severity::Deny)
        .count();
    println!(
        "repro lint: {} experiment{} expanded, {} finding{} ({} deny)",
        expanded,
        if expanded == 1 { "" } else { "s" },
        diags.len(),
        if diags.len() == 1 { "" } else { "s" },
        denies
    );

    if let Some(path) = json_path {
        let doc = format!(
            "{{\"generator\":\"repro-lint\",\"experiments\":{},\"findings\":{},\"deny\":{},\"diagnostics\":{}}}\n",
            expanded,
            diags.len(),
            denies,
            dichotomy_core::common::diag::to_json_array(&diags)
        );
        if let Err(err) = std::fs::write(&path, doc) {
            eprintln!("repro lint: writing {path}: {err}");
            return 2;
        }
    }

    if dichotomy_core::common::diag::has_deny(&diags) {
        1
    } else {
        0
    }
}

/// The value of `--flag value` / `--flag=value`, or `None` after recording a
/// usage error. A following `--…` token is another flag, never a value.
fn value_of(
    flag: &str,
    inline: Option<String>,
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    bad_usage: &mut Vec<String>,
) -> Option<String> {
    let next_is_value = args.peek().is_some_and(|a| !a.starts_with("--"));
    match inline.or_else(|| if next_is_value { args.next() } else { None }) {
        Some(v) => Some(v),
        None => {
            bad_usage.push(format!("flag '{flag}' needs a value"));
            None
        }
    }
}
