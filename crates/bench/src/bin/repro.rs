//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin repro -- all
//! cargo run -p dichotomy-bench --release --bin repro -- fig09
//! cargo run -p dichotomy-bench --release --bin repro -- --quick fig04 fig14
//! ```
//!
//! Unknown experiment ids exit nonzero after printing the valid list. An
//! `all` run continues past a panicking experiment and reports a
//! per-experiment error summary at the end (exiting nonzero if anything
//! failed), so one broken figure never hides the rest.

use dichotomy_bench::EXPERIMENTS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let unknown_flags: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--") && *a != "--quick")
        .map(String::as_str)
        .collect();
    if !unknown_flags.is_empty() {
        for flag in &unknown_flags {
            eprintln!("unknown flag '{flag}'");
        }
        eprintln!("valid flags: --quick");
        std::process::exit(2);
    }
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let unknown: Vec<&str> = requested
        .iter()
        .copied()
        .filter(|id| *id != "all" && !EXPERIMENTS.contains(id))
        .collect();
    if !unknown.is_empty() {
        for id in &unknown {
            eprintln!("unknown experiment '{id}'");
        }
        eprintln!("valid experiments: all {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let targets: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        requested
    };

    let total = targets.len();
    let mut failures: Vec<(&str, String)> = Vec::new();
    for id in targets {
        let outcome = std::panic::catch_unwind(|| dichotomy_bench::run_experiment(id, quick));
        match outcome {
            Ok(Some(report)) => println!("{report}"),
            // The dispatch table and EXPERIMENTS disagree — a bug, but one
            // `all` should survive like any other per-experiment failure.
            Ok(None) => failures.push((id, "not in the dispatch table".to_string())),
            Err(panic) => failures.push((id, panic_message(&panic))),
        }
    }

    if !failures.is_empty() {
        eprintln!("{} of {} experiments failed:", failures.len(), total);
        for (id, msg) in &failures {
            eprintln!("  {id}: {msg}");
        }
        std::process::exit(1);
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked (non-string payload)".to_string()
    }
}
