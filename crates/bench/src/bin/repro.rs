//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin repro -- all
//! cargo run -p dichotomy-bench --release --bin repro -- fig09
//! cargo run -p dichotomy-bench --release --bin repro -- --quick fig04 fig14
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let targets: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        dichotomy_bench::EXPERIMENTS.to_vec()
    } else {
        requested
    };
    for id in targets {
        match dichotomy_bench::run_experiment(id, quick) {
            Some(report) => println!("{report}"),
            None => eprintln!("unknown experiment '{id}'; known: {:?}", dichotomy_bench::EXPERIMENTS),
        }
    }
}
