//! Gate CI on the bench-trajectory history.
//!
//! ```text
//! cargo run -p dichotomy-bench --release --bin bench_gate -- BENCH_history.json
//! cargo run -p dichotomy-bench --release --bin bench_gate -- \
//!     --tolerance 0.75 --floor-ms 50 --window 5 BENCH_history.json
//! ```
//!
//! Reads the history document that `repro --bench` and `microbench --bench`
//! append to, and flags wall-clock regressions: for every timing key, the
//! *latest* entry of each run configuration is compared against the median
//! of up to `--window` trailing earlier entries of the *same* configuration
//! (quick/txns/seed/jobs — quick `--jobs 1` timings are never compared
//! against full `--jobs 8` ones). A key regresses when the latest value
//! exceeds the trailing median by more than `--tolerance` (relative) *and*
//! by more than `--floor-ms` (absolute — sub-floor noise on fast cases never
//! gates). Sub-floor *prior* entries are excluded from the baseline median
//! for the same reason: a near-zero wall (a warm-cache run sharing the lane
//! with cold ones) is noise, not a baseline, and would flag every honest
//! cold run as a regression. Keys with fewer than two prior
//! same-configuration entries at/above the floor are reported as
//! "no baseline" and skipped — a median over one noisy sample is not a
//! baseline either.
//!
//! `--require-key KEY` (repeatable) additionally asserts that at least one
//! sample with that timing key exists in the history — CI uses it to prove
//! the trajectory still *covers* an experiment (a silently dropped `scale01`
//! would otherwise never regress again).
//!
//! Exit status: 0 when nothing regresses, 1 on any regression or missing
//! required key, 2 on usage or parse errors. Offline and dependency-free,
//! like everything else here.

use std::process::ExitCode;

/// One timing sample: which case, under which run configuration, how long.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    label: String,
    config: String,
    key: String,
    wall_ms: f64,
    ok: bool,
}

/// Extract the JSON value following `"name":` in `obj` (a flat object
/// body), as a raw string slice — enough for the fixed format
/// `append_history` writes; no general JSON parser needed.
fn field<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}', ']']).next()
    }
    .map(str::trim)
}

/// Parse every timing sample out of a bench-history document, in order.
fn parse_history(doc: &str) -> Result<Vec<Sample>, String> {
    let doc = doc.trim();
    let body = doc
        .strip_prefix("{\"generator\":\"repro-bench-history\",\"entries\":[")
        .and_then(|b| b.strip_suffix("]}"))
        .ok_or("not a repro-bench-history document")?;
    let mut samples = Vec::new();
    // Entries all open with the same generator stamp; splitting on it keeps
    // the parse independent of nesting depth.
    for entry in body.split("{\"generator\":\"repro-bench\",").skip(1) {
        let label = field(entry, "label")
            .ok_or("entry without label")?
            .to_string();
        // `sched` joined the entry header with the cost-predicted scheduler:
        // per-experiment worker time depends on which probes co-run, so
        // lpt-scheduled entries form their own lane. Entries predating the
        // field were first-occurrence-ordered ("fifo").
        let config = format!(
            "quick={} txns={} seed={} jobs={} sched={}",
            field(entry, "quick").unwrap_or("?"),
            field(entry, "txns").unwrap_or("?"),
            field(entry, "seed").unwrap_or("?"),
            field(entry, "jobs").unwrap_or("?"),
            field(entry, "sched").unwrap_or("fifo"),
        );
        let timings = entry
            .split("\"experiments\":[")
            .nth(1)
            .ok_or("entry without experiments array")?;
        for case in timings.split("{\"key\":").skip(1) {
            let case = format!("\"key\":{case}");
            samples.push(Sample {
                label: label.clone(),
                config: config.clone(),
                key: field(&case, "key").ok_or("timing without key")?.to_string(),
                wall_ms: field(&case, "wall_ms")
                    .and_then(|v| v.parse().ok())
                    .ok_or("timing without wall_ms")?,
                ok: field(&case, "ok") == Some("true"),
            });
        }
    }
    Ok(samples)
}

/// The nearest-rank median of a non-empty slice.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[(values.len() - 1) / 2]
}

struct Gate {
    tolerance: f64,
    floor_ms: f64,
    window: usize,
}

/// Compare the latest sample of every (key, config) trajectory against its
/// trailing median. Returns (regression lines, skipped-baseline count,
/// gated-key count).
fn gate(samples: &[Sample], opts: &Gate) -> (Vec<String>, usize, usize) {
    // Trajectories keyed by (key, config), in append order.
    let mut keys: Vec<(String, String)> = Vec::new();
    for s in samples {
        let id = (s.key.clone(), s.config.clone());
        if !keys.contains(&id) {
            keys.push(id);
        }
    }
    let mut regressions = Vec::new();
    let (mut skipped, mut gated) = (0usize, 0usize);
    for (key, config) in keys {
        let series: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.key == key && s.config == config && s.ok)
            .collect();
        let Some((last, priors)) = series.split_last() else {
            continue;
        };
        let tail_start = priors.len().saturating_sub(opts.window);
        // Sub-floor priors are noise (e.g. warm-cache entries riding the
        // same lane as cold runs), not baselines — and a single usable
        // sample is too jittery to serve as one on its own.
        let mut window: Vec<f64> = priors[tail_start..]
            .iter()
            .map(|s| s.wall_ms)
            .filter(|&w| w >= opts.floor_ms)
            .collect();
        if window.len() < 2 {
            skipped += 1;
            continue;
        }
        gated += 1;
        let baseline = median(&mut window);
        let excess = last.wall_ms - baseline;
        if excess > opts.tolerance * baseline && excess > opts.floor_ms {
            regressions.push(format!(
                "{key} [{config}]: {:.1} ms vs trailing median {:.1} ms (+{:.0}%, entry '{}')",
                last.wall_ms,
                baseline,
                100.0 * excess / baseline.max(1e-9),
                last.label,
            ));
        }
    }
    (regressions, skipped, gated)
}

fn main() -> ExitCode {
    let mut opts = Gate {
        tolerance: 0.75,
        floor_ms: 50.0,
        window: 5,
    };
    let mut path: Option<String> = None;
    let mut required_keys: Vec<String> = Vec::new();
    let mut bad_usage = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let (flag, inline) = match args[i].split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (args[i].clone(), None),
        };
        let value = |i: &mut usize| -> Option<String> {
            inline.clone().or_else(|| {
                *i += 1;
                args.get(*i).cloned()
            })
        };
        match flag.as_str() {
            "--tolerance" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(t) => opts.tolerance = t,
                None => bad_usage = true,
            },
            "--floor-ms" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(f) => opts.floor_ms = f,
                None => bad_usage = true,
            },
            "--window" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(w) if w >= 1 => opts.window = w,
                _ => bad_usage = true,
            },
            "--require-key" => match value(&mut i) {
                Some(k) if !k.is_empty() => required_keys.push(k),
                _ => bad_usage = true,
            },
            f if f.starts_with("--") => bad_usage = true,
            _ => match path {
                None => path = Some(args[i].clone()),
                Some(_) => bad_usage = true,
            },
        }
        i += 1;
    }
    let usage = "usage: bench_gate [--tolerance F] [--floor-ms F] [--window N] \
                 [--require-key KEY]... HISTORY.json";
    let Some(path) = path else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    if bad_usage {
        eprintln!("{usage}");
        return ExitCode::from(2);
    }

    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let samples = match parse_history(&doc) {
        Ok(samples) => samples,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (regressions, skipped, gated) = gate(&samples, &opts);
    println!(
        "bench_gate: {gated} trajectories gated, {skipped} without baseline \
         (tolerance +{:.0}%, floor {:.0} ms, window {})",
        opts.tolerance * 100.0,
        opts.floor_ms,
        opts.window
    );
    let missing = missing_keys(&samples, &required_keys);
    for key in &missing {
        println!("MISSING KEY: '{key}' has no samples in {path}");
    }
    if regressions.is_empty() && missing.is_empty() {
        println!("bench_gate: no wall-clock regressions");
        ExitCode::SUCCESS
    } else {
        for line in &regressions {
            println!("REGRESSION: {line}");
        }
        ExitCode::FAILURE
    }
}

/// The `--require-key` keys that have no sample in the history, in request
/// order. A required key may match either a timing key (`fig04`) or an
/// entry label (`pr8-cache-cold`), so CI can assert both coverage and that
/// a specific run made it into the trajectory.
fn missing_keys(samples: &[Sample], required: &[String]) -> Vec<String> {
    required
        .iter()
        .filter(|k| !samples.iter().any(|s| &s.key == *k || &s.label == *k))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, jobs: u64, timings: &[(&str, f64)]) -> String {
        let cases: Vec<String> = timings
            .iter()
            .map(|(k, ms)| {
                format!("{{\"key\":\"{k}\",\"wall_ms\":{ms},\"rows\":1,\"failed_probes\":0,\"ok\":true}}")
            })
            .collect();
        format!(
            "{{\"generator\":\"repro-bench\",\"label\":\"{label}\",\"quick\":true,\"txns\":null,\
             \"seed\":7,\"jobs\":{jobs},\"total_wall_ms\":0,\"experiments\":[{}]}}",
            cases.join(",")
        )
    }

    fn history(entries: &[String]) -> String {
        format!(
            "{{\"generator\":\"repro-bench-history\",\"entries\":[{}]}}",
            entries.join(",")
        )
    }

    #[test]
    fn parses_the_history_format_append_history_writes() {
        let doc = history(&[
            entry("a", 1, &[("fig04", 120.5), ("tab02", 3.0)]),
            entry("b", 4, &[("fig04", 95.0)]),
        ]);
        let samples = parse_history(&doc).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].key, "fig04");
        assert_eq!(samples[0].wall_ms, 120.5);
        assert_eq!(samples[0].label, "a");
        assert!(samples[0].config.contains("jobs=1"));
        assert!(samples[2].config.contains("jobs=4"));
        assert!(parse_history("junk").is_err());
    }

    #[test]
    fn flat_trajectories_pass_and_spikes_fail() {
        let gate_opts = Gate {
            tolerance: 0.5,
            floor_ms: 10.0,
            window: 5,
        };
        let flat: Vec<String> = (0..4)
            .map(|i| entry(&format!("e{i}"), 1, &[("fig04", 100.0)]))
            .collect();
        let samples = parse_history(&history(&flat)).unwrap();
        let (regressions, skipped, gated) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty());
        assert_eq!((skipped, gated), (0, 1));

        // The last entry doubles: past tolerance and floor, so it gates.
        let mut spiked = flat.clone();
        spiked.push(entry("spike", 1, &[("fig04", 200.0)]));
        let samples = parse_history(&history(&spiked)).unwrap();
        let (regressions, _, _) = gate(&samples, &gate_opts);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("fig04"));
        assert!(regressions[0].contains("spike"));
    }

    #[test]
    fn sub_floor_priors_never_serve_as_baselines() {
        let gate_opts = Gate {
            tolerance: 0.5,
            floor_ms: 10.0,
            window: 5,
        };
        // The cache lane shape: cold runs interleaved with near-zero warm
        // runs in the same configuration. The warm samples must not drag
        // the median to ~0 and flag the honest cold wall.
        let entries: Vec<String> = vec![
            entry("cold-1", 4, &[("fig04", 1_000.0)]),
            entry("warm-1", 4, &[("fig04", 1.0)]),
            entry("cold-2", 4, &[("fig04", 1_050.0)]),
            entry("warm-2", 4, &[("fig04", 2.0)]),
            entry("cold-3", 4, &[("fig04", 1_020.0)]),
        ];
        let samples = parse_history(&history(&entries)).unwrap();
        let (regressions, skipped, gated) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert_eq!((skipped, gated), (0, 1));

        // Fewer than two usable priors leaves no baseline: a median over a
        // single (jittery) cold sample must not gate the next cold run.
        let entries: Vec<String> = vec![
            entry("cold-1", 4, &[("fig04", 1_000.0)]),
            entry("warm-1", 4, &[("fig04", 1.0)]),
            entry("cold-2", 4, &[("fig04", 1_900.0)]),
        ];
        let samples = parse_history(&history(&entries)).unwrap();
        let (regressions, skipped, gated) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert_eq!((skipped, gated), (1, 0));

        // All-sub-floor priors leave no baseline at all: skip, don't gate.
        let entries: Vec<String> = vec![
            entry("warm-1", 4, &[("fig04", 1.0)]),
            entry("warm-2", 4, &[("fig04", 2.0)]),
            entry("cold-1", 4, &[("fig04", 1_000.0)]),
        ];
        let samples = parse_history(&history(&entries)).unwrap();
        let (regressions, skipped, gated) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty());
        assert_eq!((skipped, gated), (1, 0));
    }

    #[test]
    fn the_floor_absorbs_noise_on_fast_cases() {
        let gate_opts = Gate {
            tolerance: 0.5,
            floor_ms: 10.0,
            window: 5,
        };
        // 2 ms → 5 ms is +150 % but only 3 ms absolute: under the floor.
        let entries: Vec<String> = vec![
            entry("a", 1, &[("tab02", 2.0)]),
            entry("b", 1, &[("tab02", 2.0)]),
            entry("c", 1, &[("tab02", 5.0)]),
        ];
        let samples = parse_history(&history(&entries)).unwrap();
        let (regressions, _, _) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty());
    }

    #[test]
    fn different_configurations_never_cross_compare() {
        let gate_opts = Gate {
            tolerance: 0.5,
            floor_ms: 10.0,
            window: 5,
        };
        // jobs=1 entries are slow, jobs=4 fast; the latest jobs=4 entry must
        // not be compared against a jobs=1 baseline (or vice versa).
        let entries: Vec<String> = vec![
            entry("a1", 1, &[("fig04", 400.0)]),
            entry("a2", 4, &[("fig04", 100.0)]),
            entry("b1", 1, &[("fig04", 410.0)]),
            entry("b2", 4, &[("fig04", 105.0)]),
            entry("c1", 1, &[("fig04", 395.0)]),
            entry("c2", 4, &[("fig04", 95.0)]),
        ];
        let samples = parse_history(&history(&entries)).unwrap();
        let (regressions, skipped, gated) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty());
        assert_eq!((skipped, gated), (0, 2));
    }

    #[test]
    fn scheduler_regimes_form_separate_lanes() {
        // Entries written before the `sched` field default to "fifo" and
        // must never baseline an "lpt" entry: the per-experiment worker-time
        // attribution differs between regimes on oversubscribed hosts.
        let gate_opts = Gate {
            tolerance: 0.5,
            floor_ms: 10.0,
            window: 5,
        };
        let legacy: Vec<String> = (0..3)
            .map(|i| entry(&format!("old{i}"), 4, &[("ramp01", 90.0)]))
            .collect();
        let mut entries = legacy;
        // Same quick/txns/seed/jobs, 4x slower — but a different scheduler.
        entries.push(entry("new", 4, &[("ramp01", 360.0)]).replacen(
            "\"jobs\":4,",
            "\"jobs\":4,\"sched\":\"lpt\",",
            1,
        ));
        let samples = parse_history(&history(&entries)).unwrap();
        assert!(samples[2].config.contains("sched=fifo"), "legacy default");
        assert!(samples[3].config.contains("sched=lpt"));
        let (regressions, skipped, gated) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert_eq!((skipped, gated), (1, 1));
    }

    #[test]
    fn require_key_flags_absent_keys_and_accepts_present_ones() {
        let doc = history(&[
            entry("pr8-cache-cold", 1, &[("fig04", 10.0), ("scale01", 20.0)]),
            entry("pr8-cache-warm", 1, &[("fig04", 1.0), ("scale01", 2.0)]),
        ]);
        let samples = parse_history(&doc).unwrap();
        // Timing keys and entry labels both satisfy a requirement.
        let present = [
            "fig04".to_string(),
            "scale01".to_string(),
            "pr8-cache-warm".to_string(),
        ];
        assert!(missing_keys(&samples, &present).is_empty());
        let absent = ["chaos01".to_string(), "fig04".to_string()];
        assert_eq!(missing_keys(&samples, &absent), vec!["chaos01".to_string()]);
        assert!(missing_keys(&[], &[]).is_empty());
    }

    #[test]
    fn entries_with_probe_calibration_arrays_still_parse_to_experiment_walls() {
        // The PR 8 bench format appends probes/distinct_probes/cache_hits/
        // dedup_saved_ms scalars and a nested calibration array to each
        // timing entry; the scanner must keep reading the experiment-level
        // wall_ms, not a probe's.
        let doc = history(&[format!(
            "{{\"generator\":\"repro-bench\",\"label\":\"pr8\",\"quick\":true,\"txns\":null,\
             \"seed\":7,\"jobs\":4,\"total_wall_ms\":42,\"experiments\":[\
             {{\"key\":\"fig04\",\"wall_ms\":42.5,\"rows\":5,\"failed_probes\":0,\"ok\":true,\
             \"probes\":8,\"distinct_probes\":7,\"cache_hits\":2,\"dedup_saved_ms\":3.5,\
             \"calibration\":[{{\"probe\":\"etcd\",\"predicted\":1200,\"wall_ms\":11.5}},\
             {{\"probe\":\"tikv\",\"predicted\":null,\"wall_ms\":0.5}}]}}]}}"
        )]);
        let samples = parse_history(&doc).unwrap();
        assert_eq!(samples.len(), 1, "calibration objects are not entries");
        assert_eq!(samples[0].key, "fig04");
        assert_eq!(samples[0].wall_ms, 42.5, "experiment wall, not a probe's");
        assert!(samples[0].ok);
    }

    #[test]
    fn short_trajectories_are_skipped_not_gated() {
        let gate_opts = Gate {
            tolerance: 0.5,
            floor_ms: 10.0,
            window: 5,
        };
        // Two entries = one prior: not enough history to call a regression.
        let entries: Vec<String> = vec![
            entry("a", 1, &[("new_case", 10.0)]),
            entry("b", 1, &[("new_case", 500.0)]),
        ];
        let samples = parse_history(&history(&entries)).unwrap();
        let (regressions, skipped, gated) = gate(&samples, &gate_opts);
        assert!(regressions.is_empty());
        assert_eq!((skipped, gated), (1, 0));
    }
}
