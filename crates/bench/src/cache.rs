//! The persistent, content-addressed probe-result cache behind
//! `repro --cache`.
//!
//! Layout: `.repro-cache/<schema-tag>/<key-hash>.bin`, one file per distinct
//! probe key. The schema tag folds the binary layout of [`ProbeResult`]
//! (described by [`SCHEMA_DESCRIPTOR`]) together with [`CACHE_EPOCH`], so a
//! codec change or a deliberate epoch bump retires every old entry at once —
//! stale formats land in a different directory and read as misses, never as
//! wrong answers.
//!
//! Entry format (all integers big-endian):
//!
//! ```text
//! magic   4 bytes  "RPC1"
//! epoch   u32      CACHE_EPOCH at write time
//! key     u32 len + bytes   the full probe key (not just its hash)
//! result  the Encode'd ProbeResult, to end of file
//! ```
//!
//! `load` verifies magic, epoch and the *full key bytes* before decoding:
//! a hash collision, a truncated write or hand-edited garbage is a miss.
//! `store` writes to a temp file and renames it into place, so concurrent
//! writers (the worker pool) can never expose a half-written entry. All
//! cache failures are silent misses — a cache that cannot read or write
//! still measures correctly.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dichotomy_core::common::{Decode, Encode};
use dichotomy_core::scenario::{fnv1a_64, ProbeCache, ProbeResult};

/// Bumped to retire every existing cache entry when the probe semantics
/// change without the serialized layout changing (e.g. a model fix that
/// alters what a probe measures). Layout changes are caught separately by
/// [`SCHEMA_DESCRIPTOR`].
pub const CACHE_EPOCH: u32 = 1;

/// A human-readable description of the serialized [`ProbeResult`] layout.
/// **Update this string whenever any `Encode`/`Decode` impl it mentions
/// changes shape** — the schema tag hashes it, so old entries are retired
/// instead of being mis-decoded.
pub const SCHEMA_DESCRIPTOR: &str = "ProbeResult{\
     metrics:Metrics{committed:u64,aborts:[(AbortReason:u8,u64)],throughput_tps:f64,\
     latency:LatencySummary{mean_us:f64,p50_us:u64,p95_us:u64,p99_us:u64,max_us:u64},\
     phase_means_us:[(str,f64)],duration_us:u64},\
     footprint:StorageBreakdown{payload_bytes:u64,index_bytes:u64,history_bytes:u64},\
     records:u64,extras:[(String,f64)],\
     series:Option<RowSeries{name:String,events_clamped:u64,\
     oracles:[{name:str,violation:Option<String>}],\
     series:TimeSeries{window_us:u64,warmup_us:u64,windows:[TimeWindow{start_us:u64,end_us:u64,\
     submitted:u64,committed:u64,aborted:u64,offered_tps:f64,throughput_tps:f64,\
     abort_rate_percent:f64,latency:LatencySummary}]}}>}";

/// Entry-file magic.
const MAGIC: &[u8; 4] = b"RPC1";

/// The versioned directory name entries of the current format live under.
pub fn schema_tag() -> String {
    format!(
        "v{CACHE_EPOCH}-{:016x}",
        fnv1a_64(SCHEMA_DESCRIPTOR.as_bytes())
    )
}

/// The on-disk probe-result cache (see the module docs for the layout).
pub struct DiskCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl DiskCache {
    /// Open (creating if needed) the cache under `root` — typically
    /// `.repro-cache` in the repository root. Entries live in the current
    /// schema-tag subdirectory; other tags' entries are left alone.
    pub fn open(root: &Path) -> std::io::Result<DiskCache> {
        let dir = root.join(schema_tag());
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    fn entry_path(&self, key: &[u8]) -> PathBuf {
        self.dir.join(format!("{:016x}.bin", fnv1a_64(key)))
    }

    /// Parse and verify one entry file's bytes against the expected key.
    fn parse_entry(bytes: &[u8], key: &[u8]) -> Option<ProbeResult> {
        fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if input.len() < n {
                return None;
            }
            let (head, rest) = input.split_at(n);
            *input = rest;
            Some(head)
        }
        let mut input = bytes;
        if take(&mut input, 4)? != MAGIC {
            return None;
        }
        if u32::decode_from(&mut input)? != CACHE_EPOCH {
            return None;
        }
        let stored_len = u32::decode_from(&mut input)? as usize;
        if take(&mut input, stored_len)? != key {
            return None;
        }
        ProbeResult::decode(input)
    }

    /// Cache lookups answered from disk so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that missed (absent, stale or corrupt entries).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries written so far.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }
}

impl ProbeCache for DiskCache {
    fn load(&self, key: &[u8]) -> Option<ProbeResult> {
        let loaded = fs::read(self.entry_path(key))
            .ok()
            .and_then(|bytes| Self::parse_entry(&bytes, key));
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    fn store(&self, key: &[u8], result: &ProbeResult) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        CACHE_EPOCH.encode_into(&mut bytes);
        (key.len() as u32).encode_into(&mut bytes);
        bytes.extend_from_slice(key);
        result.encode_into(&mut bytes);
        // Atomic publish: write a temp file, rename into place. Failures
        // are silent — the run still measured correctly.
        let path = self.entry_path(key);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        if fs::write(&tmp, &bytes).is_ok() {
            if fs::rename(&tmp, &path).is_ok() {
                self.stores.fetch_add(1, Ordering::Relaxed);
            } else {
                let _ = fs::remove_file(&tmp);
            }
        }
    }
}

/// What `repro cache stats` reports, per schema-tag directory.
#[derive(Debug, Clone, PartialEq)]
pub struct TagStats {
    /// The directory name (`v<epoch>-<schema-hash>`).
    pub tag: String,
    /// Whether this is the tag current binaries read and write.
    pub current: bool,
    /// Entry files in the directory.
    pub entries: usize,
    /// Their summed size in bytes.
    pub bytes: u64,
}

/// Scan `root` (the `.repro-cache` directory) and report every tag
/// directory. A missing root is an empty cache, not an error.
pub fn stats(root: &Path) -> Vec<TagStats> {
    let current = schema_tag();
    let Ok(dirs) = fs::read_dir(root) else {
        return Vec::new();
    };
    let mut tags: Vec<TagStats> = dirs
        .flatten()
        .filter(|d| d.path().is_dir())
        .map(|d| {
            let tag = d.file_name().to_string_lossy().into_owned();
            let (mut entries, mut bytes) = (0usize, 0u64);
            if let Ok(files) = fs::read_dir(d.path()) {
                for f in files.flatten() {
                    if let Ok(meta) = f.metadata() {
                        if meta.is_file() {
                            entries += 1;
                            bytes += meta.len();
                        }
                    }
                }
            }
            TagStats {
                current: tag == current,
                tag,
                entries,
                bytes,
            }
        })
        .collect();
    tags.sort_by(|a, b| a.tag.cmp(&b.tag));
    tags
}

/// Delete the whole cache (`repro cache clear`). A missing root is already
/// clear.
pub fn clear(root: &Path) -> std::io::Result<()> {
    match fs::remove_dir_all(root) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_core::scenario::{probe_key_bytes, run_plans_with, ExecOptions, Probe};
    use dichotomy_core::systems::SystemRegistry;
    use dichotomy_core::Scenario;

    /// A unique temp root per test (no wall clock: keyed by test name + pid).
    fn temp_root(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "dichotomy-cache-test-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn tiny_plan(seed: u64) -> dichotomy_core::ExperimentPlan {
        let scenario = Scenario {
            id: "C",
            title: "cache",
            systems: vec![dichotomy_core::scenario::SystemEntry {
                spec: dichotomy_core::systems::SystemSpec::new(
                    dichotomy_core::systems::SystemKind::Etcd,
                ),
                columns: vec![dichotomy_core::scenario::ColumnSpec::new(
                    "tps",
                    dichotomy_core::scenario::Metric::ThroughputTps,
                )],
            }],
            workload: dichotomy_core::workload::WorkloadSpec::ycsb(
                dichotomy_core::workload::YcsbMix::UpdateOnly,
            )
            .with_records(300),
            driver: dichotomy_core::DriverConfig::saturating(100),
            sweep: dichotomy_core::Sweep::None,
            row_labels: None,
            faults: None,
            seed,
        };
        scenario.plan()
    }

    #[test]
    fn cold_then_warm_runs_are_byte_identical_through_the_disk_cache() {
        let root = temp_root("roundtrip");
        let registry = SystemRegistry::with_builtins();
        let plan = tiny_plan(7);
        let cold_cache = DiskCache::open(&root).unwrap();
        let options = |cache| ExecOptions {
            jobs: 1,
            cache: Some(cache),
            ..ExecOptions::default()
        };
        let cold = run_plans_with(&[&plan], &registry, &options(&cold_cache))
            .pop()
            .unwrap();
        assert_eq!(cold_cache.hits(), 0);
        assert_eq!(cold_cache.stores(), 1);
        // A fresh handle over the same directory: the warm run decodes what
        // the cold run encoded, and the serialized reports match exactly.
        let warm_cache = DiskCache::open(&root).unwrap();
        let warm = run_plans_with(&[&plan], &registry, &options(&warm_cache))
            .pop()
            .unwrap();
        assert_eq!(warm_cache.hits(), 1);
        assert_eq!(warm.cache_hits, 1);
        assert_eq!(
            crate::json::report("c", &cold.report),
            crate::json::report("c", &warm.report),
            "cache hit must be byte-identical to the cold run"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_stale_and_mismatched_entries_read_as_misses() {
        let root = temp_root("corrupt");
        let registry = SystemRegistry::with_builtins();
        let plan = tiny_plan(9);
        let key = probe_key_bytes(&plan.rows[0].runs[0].probe);
        let cache = DiskCache::open(&root).unwrap();
        run_plans_with(
            &[&plan],
            &registry,
            &ExecOptions {
                jobs: 1,
                cache: Some(&cache),
                ..ExecOptions::default()
            },
        );
        let path = cache.entry_path(&key);
        let good = fs::read(&path).unwrap();
        assert!(cache.load(&key).is_some(), "pristine entry loads");

        // Truncated: cut the payload short.
        fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(cache.load(&key).is_none(), "truncated entry is a miss");
        // Corrupted magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        assert!(cache.load(&key).is_none(), "bad magic is a miss");
        // Stale epoch.
        let mut stale = good.clone();
        stale[7] ^= 0xff;
        fs::write(&path, &stale).unwrap();
        assert!(cache.load(&key).is_none(), "stale epoch is a miss");
        // Key mismatch (a hash collision in effigy): same file, other key.
        fs::write(&path, &good).unwrap();
        let other_key = probe_key_bytes(&tiny_plan(10).rows[0].runs[0].probe);
        let collided = fs::read(cache.entry_path(&key)).unwrap();
        fs::write(cache.entry_path(&other_key), &collided).unwrap();
        assert!(
            cache.load(&other_key).is_none(),
            "an entry whose stored key differs is a miss"
        );
        // Trailing garbage after a valid result.
        let mut padded = good.clone();
        padded.push(0);
        fs::write(&path, &padded).unwrap();
        assert!(cache.load(&key).is_none(), "trailing bytes are a miss");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn non_driving_probes_cache_too() {
        let root = temp_root("nondriving");
        let cache = DiskCache::open(&root).unwrap();
        let plan = dichotomy_core::ExperimentPlan {
            id: "X",
            title: "adr",
            rows: vec![dichotomy_core::scenario::PlannedRow {
                label: "r".into(),
                runs: vec![dichotomy_core::scenario::PlannedRun {
                    probe: Probe::AdrOverhead {
                        records: 50,
                        record_size: 32,
                    },
                    columns: vec![dichotomy_core::scenario::ColumnSpec::new(
                        "mbt",
                        dichotomy_core::scenario::Metric::Extra("mbt_b_per_rec"),
                    )],
                }],
            }],
            text: None,
            diagnostics: Vec::new(),
        };
        let registry = SystemRegistry::with_builtins();
        let options = ExecOptions {
            jobs: 1,
            cache: Some(&cache),
            ..ExecOptions::default()
        };
        let cold = run_plans_with(&[&plan], &registry, &options).pop().unwrap();
        let warm = run_plans_with(&[&plan], &registry, &options).pop().unwrap();
        assert_eq!(warm.cache_hits, 1);
        assert_eq!(cold.report, warm.report);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stats_and_clear_see_the_tag_directories() {
        let root = temp_root("stats");
        assert!(stats(&root).is_empty(), "missing root is an empty cache");
        let cache = DiskCache::open(&root).unwrap();
        let plan = tiny_plan(11);
        run_plans_with(
            &[&plan],
            &SystemRegistry::with_builtins(),
            &ExecOptions {
                jobs: 1,
                cache: Some(&cache),
                ..ExecOptions::default()
            },
        );
        // A stale-tag directory from an older epoch sits alongside.
        fs::create_dir_all(root.join("v0-deadbeef")).unwrap();
        fs::write(root.join("v0-deadbeef/0.bin"), b"old").unwrap();
        let all = stats(&root);
        assert_eq!(all.len(), 2);
        let current = all.iter().find(|t| t.current).unwrap();
        assert_eq!(current.tag, schema_tag());
        assert_eq!(current.entries, 1);
        assert!(current.bytes > 0);
        let stale = all.iter().find(|t| !t.current).unwrap();
        assert_eq!(stale.entries, 1);
        clear(&root).unwrap();
        assert!(stats(&root).is_empty());
        clear(&root).unwrap(); // idempotent
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn the_schema_tag_pins_epoch_and_descriptor() {
        let tag = schema_tag();
        assert!(tag.starts_with(&format!("v{CACHE_EPOCH}-")));
        assert_eq!(tag, schema_tag(), "deterministic");
        assert_eq!(
            tag.len(),
            format!("v{CACHE_EPOCH}-").len() + 16,
            "16 hex digits of the descriptor hash"
        );
    }
}
