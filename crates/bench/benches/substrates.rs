//! Criterion microbenchmarks over the substrates the system models are built
//! from: hashing, authenticated-index updates, storage-engine writes, OCC
//! validation and the end-to-end per-transaction pipelines of the two
//! blockchains vs the two databases (a miniature Figure 4).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dichotomy_core::common::{hash, ClientId, Key, Operation, Transaction, TxnId, Value};
use dichotomy_core::driver::{run_workload, DriverConfig};
use dichotomy_core::merkle::{MerkleBucketTree, MerklePatriciaTrie};
use dichotomy_core::storage::{BPlusTree, KvEngine, LsmTree, MvccStore};
use dichotomy_core::systems::{Etcd, EtcdConfig, Quorum, QuorumConfig};
use dichotomy_core::txn::OccExecutor;
use dichotomy_core::workload::{YcsbConfig, YcsbMix, YcsbWorkload};

fn bench_hashing(c: &mut Criterion) {
    let data = vec![0xabu8; 1024];
    c.bench_function("sha256_1kb", |b| b.iter(|| hash::sha256(&data)));
}

fn bench_authenticated_indexes(c: &mut Criterion) {
    c.bench_function("mpt_insert_1kb", |b| {
        b.iter_batched(
            || {
                let mut mpt = MerklePatriciaTrie::new();
                for i in 0..500u64 {
                    mpt.insert(&Key::from_str(&format!("user{i:08}")), &Value::filler(100));
                }
                mpt
            },
            |mut mpt| mpt.insert(&Key::from_str("user00000042"), &Value::filler(1024)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("mbt_put_1kb", |b| {
        b.iter_batched(
            MerkleBucketTree::fabric_default,
            |mut mbt| mbt.put(&Key::from_str("user42"), &Value::filler(1024)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_storage_engines(c: &mut Criterion) {
    c.bench_function("lsm_put_1kb", |b| {
        b.iter_batched(
            LsmTree::new,
            |mut t| t.put(Key::from_str("k1"), Value::filler(1024)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("btree_put_1kb", |b| {
        b.iter_batched(
            BPlusTree::new,
            |mut t| t.put(Key::from_str("k1"), Value::filler(1024)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_occ_validation(c: &mut Criterion) {
    c.bench_function("occ_simulate_validate_commit", |b| {
        b.iter_batched(
            || {
                let mut store = MvccStore::new();
                let v = store.begin_commit();
                for i in 0..200u64 {
                    store.commit_write(Key::from_str(&format!("k{i}")), v, Some(Value::filler(64)));
                }
                (store, OccExecutor::new())
            },
            |(mut store, mut occ)| {
                let txn = Transaction::new(
                    TxnId::new(ClientId(1), 1),
                    vec![Operation::read_modify_write(Key::from_str("k7"), Value::filler(64))],
                );
                let sim = occ.simulate(&txn, &store);
                occ.validate_and_commit(&sim, &mut store).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_200_txns");
    group.sample_size(10);
    group.bench_function("quorum_update", |b| {
        b.iter(|| {
            let mut system = Quorum::new(QuorumConfig {
                max_block_txns: 50,
                block_interval_us: 50_000,
                ..QuorumConfig::default()
            });
            let mut workload = YcsbWorkload::new(YcsbConfig {
                record_count: 500,
                record_size: 200,
                mix: YcsbMix::UpdateOnly,
                ..YcsbConfig::default()
            });
            run_workload(&mut system, &mut workload, &DriverConfig::saturating(200))
        })
    });
    group.bench_function("etcd_update", |b| {
        b.iter(|| {
            let mut system = Etcd::new(EtcdConfig::default());
            let mut workload = YcsbWorkload::new(YcsbConfig {
                record_count: 500,
                record_size: 200,
                mix: YcsbMix::UpdateOnly,
                ..YcsbConfig::default()
            });
            run_workload(&mut system, &mut workload, &DriverConfig::saturating(200))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_authenticated_indexes,
    bench_storage_engines,
    bench_occ_validation,
    bench_end_to_end
);
criterion_main!(benches);
