//! Models of the seven systems the paper benchmarks (Section 4.1), assembled
//! from the substrate crates:
//!
//! | Model | Paper system | Replication | Concurrency | Storage |
//! |---|---|---|---|---|
//! | [`quorum::Quorum`] | Quorum v2.2 | txn-based, Raft or IBFT | serial (order-execute, double execution) | LSM + MPT + ledger |
//! | [`fabric::Fabric`] | Fabric v2.2 | txn-based, shared-log orderer (Raft, 3 orderers) | concurrent simulation, OCC validation, serial commit | LSM + ledger |
//! | [`tidb::TiDb`] | TiDB v4.0 | storage-based, Raft per region | Percolator (snapshot isolation) | LSM (TiKV) |
//! | [`etcd::Etcd`] | etcd v3.3 | storage-based, single Raft group | serial | B+ tree (BoltDB) |
//! | [`etcd::Tikv`] | TiKV (standalone) | storage-based, Raft | serial apply, no SQL/txn layer | LSM |
//! | [`sharded::SpannerLike`] | Spanner | storage-based, Paxos per shard | pessimistic 2PL (wound-wait) + 2PC | LSM |
//! | [`sharded::Ahl`] | AHL | txn-based, PBFT per shard | serial, BFT-2PC cross-shard | LSM + MBT + ledger |
//!
//! Every model implements the event-driven [`TransactionalSystem`] contract:
//! the driver in `dichotomy-core` schedules open-loop arrivals on one shared
//! [`SimEngine`](dichotomy_simnet::SimEngine) clock, models react by booking
//! service time on their engine-registered processes and scheduling their own
//! pipeline stage events, and [`TxnReceipt`](dichotomy_common::TxnReceipt)s
//! with per-phase latencies fall out as stages complete — so the same harness
//! regenerates every figure, with backlog and saturation emerging from real
//! queueing.

pub mod etcd;
pub mod fabric;
pub mod pipeline;
pub mod quorum;
pub mod sharded;
pub mod spec;
pub mod tidb;

pub use etcd::{Etcd, EtcdConfig, Tikv};
pub use fabric::{Fabric, FabricConfig};
pub use pipeline::{
    drive_arrivals, run_to_completion, run_to_completion_with, BlockCutter, Completion, Engine,
    ReceiptLog, SysEvent, SystemKind, TimedCutter, TokenMap, TransactionalSystem,
};
pub use quorum::{Quorum, QuorumConfig};
pub use sharded::{Ahl, AhlConfig, ShardedTiDb, SpannerLike, SpannerLikeConfig};
pub use spec::{SystemBuilder, SystemRegistry, SystemSpec, TaxonomyPoint, UnknownSystem};
pub use tidb::{TiDb, TiDbConfig};
