//! The TiDB model: a NewSQL database with stateless SQL servers over a
//! Raft-replicated key-value store (TiKV), using Percolator-style snapshot
//! isolation and 2PC across regions (Section 4.1).
//!
//! Write path: a TiDB server parses/compiles the statements and acts as the
//! transaction coordinator; reads hit TiKV at a snapshot; prewrite + commit
//! go through the Raft group of every touched region (full replication in the
//! paper's setup, so every node holds every region). Concurrency comes from
//! many SQL servers and many storage threads — there is no serial commit
//! order — but under skew the Percolator primary-lock contention collapses
//! throughput (Figure 9a), and multi-region transactions pay 2PC (Figure 10a).
//!
//! Event pipeline: the coordinator's concurrency-control decision — lock
//! contention against in-flight holders, Percolator execution — happens at
//! arrival (a conflict must be visible to the next arrival immediately, or
//! the skew collapse of Figure 9a disappears); the SQL, storage, replication
//! and 2PC latencies are booked on the engine's service processes, and the
//! receipt surfaces through its `Committed` stage event at the decided
//! finish time.

use std::collections::BTreeMap;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{AbortReason, Key, NodeId, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_sharding::{CoordinatorKind, Partitioner, TwoPhaseCommit};
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig, ProcessId, StageEvent};
use dichotomy_storage::{KvEngine, LsmTree, MvccStore};
use dichotomy_txn::PercolatorExecutor;

use crate::pipeline::{
    Completion, Engine, ReceiptLog, SysEvent, SystemKind, TokenMap, TransactionalSystem,
};

/// Configuration of a TiDB deployment.
#[derive(Debug, Clone)]
pub struct TiDbConfig {
    /// Number of stateless TiDB (SQL) servers.
    pub tidb_servers: usize,
    /// Number of TiKV storage nodes (the Raft replication factor under the
    /// paper's full-replication setting).
    pub tikv_nodes: usize,
    /// Number of regions (data shards). With full replication every node
    /// holds every region, but multi-region transactions still pay 2PC.
    pub regions: u32,
    /// Lock-conflict retry budget before aborting.
    pub max_lock_retries: u32,
    /// Extra coordinator time per lock-conflict round (contention resolution,
    /// the mechanism behind the skew collapse of Section 5.3.1), in µs.
    pub lock_conflict_penalty_us: u64,
    /// Network model.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
    /// Fault schedule. `NodeId(0)` addresses the 2PC coordinator role and
    /// `NodeId(1 + region)` a region's Raft leader: a crashed region leader
    /// stalls the decision round of every transaction touching it, and a
    /// coordinator outage stalls all cross-region decisions.
    pub faults: FaultPlan,
    /// Leader re-election pause after a crash heals (µs).
    pub failover_us: u64,
}

impl Default for TiDbConfig {
    fn default() -> Self {
        TiDbConfig {
            tidb_servers: 3,
            tikv_nodes: 3,
            regions: 16,
            max_lock_retries: 2,
            lock_conflict_penalty_us: 4_000,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
            faults: FaultPlan::none(),
            failover_us: 10_000,
        }
    }
}

/// Stage: a transaction's decided receipt surfaces to the client
/// (token = in-flight id).
const ST_COMMITTED: u32 = 0;

/// Engine process handles, created at attach time.
#[derive(Clone, Copy)]
struct TiDbProcs {
    /// SQL-layer processing capacity (one server ≈ several worker threads).
    sql: ProcessId,
    /// TiKV storage/raft processing capacity.
    storage: ProcessId,
}

/// The TiDB system model.
pub struct TiDb {
    config: TiDbConfig,
    procs: Option<TiDbProcs>,
    raft: ReplicationProfile,
    partitioner: Partitioner,
    two_pc: TwoPhaseCommit,
    executor: PercolatorExecutor,
    state: MvccStore,
    engine_db: LsmTree,
    receipts: ReceiptLog,
    /// Receipts scheduled to surface at their finish time (token-keyed).
    finishing: TokenMap<TxnReceipt>,
    /// Until when each key is held by an in-flight transaction; arrivals that
    /// hit a busy key pay contention-resolution rounds and may abort — the
    /// mechanism behind the skew collapse of Section 5.3.1.
    busy_until: BTreeMap<Key, Timestamp>,
    committed: u64,
    aborted: u64,
}

impl TiDb {
    /// Build a TiDB deployment.
    pub fn new(config: TiDbConfig) -> Self {
        let raft = ReplicationProfile::new(
            ProtocolKind::Raft,
            config.tikv_nodes,
            config.network.clone(),
            config.costs.clone(),
        );
        TiDb {
            procs: None,
            raft,
            partitioner: Partitioner::hash(config.regions.max(1)),
            two_pc: TwoPhaseCommit::new(
                CoordinatorKind::Trusted,
                config.network.clone(),
                config.costs.clone(),
            ),
            executor: PercolatorExecutor::new(),
            state: MvccStore::new(),
            engine_db: LsmTree::new(),
            receipts: ReceiptLog::new(),
            finishing: TokenMap::new(),
            busy_until: BTreeMap::new(),
            committed: 0,
            aborted: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TiDbConfig {
        &self.config
    }

    /// (committed, aborted) counts, for abort-rate plots.
    pub fn outcome_counts(&self) -> (u64, u64) {
        (self.committed, self.aborted)
    }

    fn procs(&self) -> TiDbProcs {
        self.procs.expect("system not attached to an engine")
    }

    fn read_cost(&self, bytes: usize) -> u64 {
        self.config.costs.sql_frontend_us() + self.config.costs.storage_get_us(bytes)
    }

    fn serve_read(&mut self, txn: &Transaction, arrival: Timestamp, engine: &mut Engine) {
        let mut cost = 0;
        let mut reads = Vec::new();
        for op in txn.ops.iter().filter(|o| o.reads()) {
            let value = self.state.get_latest(&op.key);
            cost += self.read_cost(value.as_ref().map_or(64, Value::len));
            reads.push((op.key.clone(), value));
        }
        let (_, sql_done) = engine.service(self.procs().sql, arrival, cost);
        let finish = sql_done + self.config.network.base_latency_us;
        let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
        receipt.reads = reads;
        receipt.phase_latencies = vec![
            ("sql-parse", self.config.costs.sql_parse_us.ceil() as u64),
            (
                "sql-compile",
                self.config.costs.sql_compile_us.ceil() as u64,
            ),
            ("storage-get", self.config.costs.storage_get_us(1000)),
        ];
        self.receipts.push_back(receipt);
    }

    /// Coordinate one write transaction: contention resolution, Percolator
    /// execution, and the storage/replication/2PC bookings. Returns the
    /// decided receipt, whose finish time schedules the `Committed` stage.
    fn coordinate(
        &mut self,
        txn: Transaction,
        arrival: Timestamp,
        engine: &mut Engine,
    ) -> TxnReceipt {
        let c = self.config.costs.clone();
        // SQL layer: parse/compile each statement + coordinator bookkeeping.
        let frontend = (c.sql_frontend_us() + c.sql_coordinate_us.ceil() as u64)
            * txn.op_count().max(1) as u64;
        let (_, sql_done) = engine.service(self.procs().sql, arrival, frontend);

        // Contention against in-flight transactions on the same keys: the
        // coordinator burns contention-resolution rounds on the primary lock
        // and, once the retry budget is exhausted, aborts.
        let write_keys: Vec<Key> = txn.write_set().into_iter().cloned().collect();
        let busy = write_keys
            .iter()
            .filter_map(|k| self.busy_until.get(k).copied())
            .max()
            .unwrap_or(0);
        if busy > arrival {
            let rounds = self.config.max_lock_retries.max(1) as u64;
            let penalty = rounds * self.config.lock_conflict_penalty_us;
            let (_, contention_done) = engine.service(self.procs().sql, sql_done, penalty);
            if busy > sql_done + penalty {
                // The holder is still in flight after every retry: abort.
                self.aborted += 1;
                let finish = contention_done + self.config.network.base_latency_us;
                return TxnReceipt::aborted(
                    txn.id,
                    AbortReason::WriteWriteConflict,
                    arrival,
                    finish,
                );
            }
        }

        // Execute under Percolator against the shared MVCC state.
        let result = self
            .executor
            .execute(&txn, &mut self.state, self.config.max_lock_retries);

        // Storage-layer cost: snapshot reads + prewrite/commit writes, each
        // write replicated through Raft.
        let mut storage_cost = 0u64;
        for op in &txn.ops {
            if op.reads() {
                storage_cost += c.storage_get_us(op.value.as_ref().map_or(1000, Value::len));
            }
            if op.writes() {
                let bytes = op.value.as_ref().map_or(0, Value::len);
                storage_cost += 2 * c.storage_put_us(bytes); // prewrite + commit
                storage_cost += self.raft.leader_occupancy_us(bytes + 64);
            }
        }
        let (_, storage_done) = engine.service(self.procs().storage, sql_done, storage_cost);
        // Replication latency of the slowest write (prewrite and commit each
        // take one Raft round).
        let max_write = txn
            .ops
            .iter()
            .filter(|o| o.writes())
            .map(|o| o.value.as_ref().map_or(0, Value::len))
            .max()
            .unwrap_or(0);
        let replication_latency = 2 * self.raft.commit_latency_us(max_write + 64);

        // Cross-region 2PC for multi-region write sets.
        let shards = self
            .partitioner
            .shards_of(&write_keys.iter().collect::<Vec<_>>());
        // Fault gates before the decision round: every touched region's Raft
        // leader must be back up, and the coordinator role reachable.
        let mut decide_input = storage_done + replication_latency;
        for &s in &shards {
            decide_input = match self.config.faults.release_at(
                NodeId(1 + u64::from(s.0)),
                decide_input,
                self.config.failover_us,
            ) {
                Some(t) => t,
                None => {
                    self.aborted += 1;
                    let finish = decide_input + self.config.network.base_latency_us;
                    return TxnReceipt::aborted(txn.id, AbortReason::Overload, arrival, finish);
                }
            };
        }
        let decide_input = match self
            .config
            .faults
            .primary_release(decide_input, self.config.failover_us)
        {
            Some(t) => t,
            None => {
                self.aborted += 1;
                let finish = decide_input + self.config.network.base_latency_us;
                return TxnReceipt::aborted(txn.id, AbortReason::Overload, arrival, finish);
            }
        };
        let votes: Vec<_> = shards.iter().map(|&s| (s, true)).collect();
        let two_pc_out = self.two_pc.run(decide_input, &votes, txn.payload_bytes());

        match result {
            Ok(outcome) => {
                // Lock-conflict rounds cost coordinator time even on success.
                let penalty =
                    outcome.lock_conflict_rounds as u64 * self.config.lock_conflict_penalty_us;
                let finish = two_pc_out.decided_at + penalty + self.config.network.base_latency_us;
                for op in txn.ops.iter().filter(|o| o.writes()) {
                    if let Some(v) = self.state.get_latest(&op.key) {
                        self.engine_db.put(op.key.clone(), v);
                    }
                }
                for key in &write_keys {
                    self.busy_until.insert(key.clone(), finish);
                }
                let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
                receipt.reads = outcome.reads;
                receipt.commit_version = Some(outcome.commit_ts);
                receipt.phase_latencies = vec![
                    ("sql", sql_done.saturating_sub(arrival)),
                    ("storage", storage_done.saturating_sub(sql_done)),
                    ("replication", replication_latency),
                    (
                        "2pc",
                        two_pc_out
                            .decided_at
                            .saturating_sub(storage_done + replication_latency),
                    ),
                ];
                self.committed += 1;
                receipt
            }
            Err((reason, rounds)) => {
                // Failed transactions still burn coordinator time on
                // contention resolution before reporting the abort.
                let penalty = (rounds.max(1) as u64) * self.config.lock_conflict_penalty_us;
                let (_, contention_done) = engine.service(self.procs().sql, storage_done, penalty);
                let finish = contention_done + self.config.network.base_latency_us;
                self.aborted += 1;
                TxnReceipt::aborted(txn.id, reason, arrival, finish)
            }
        }
    }
}

impl TransactionalSystem for TiDb {
    fn kind(&self) -> SystemKind {
        SystemKind::TiDb
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        let version = self.state.begin_commit();
        for (k, v) in records {
            self.state.commit_write(k.clone(), version, Some(v.clone()));
            self.engine_db.put(k.clone(), v.clone());
        }
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.procs = Some(TiDbProcs {
            sql: engine.add_process("tidb-sql", self.config.tidb_servers.max(1)),
            storage: engine.add_process("tikv-storage", self.config.tikv_nodes.max(1)),
        });
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        let arrival = engine.now();
        if txn.is_read_only() {
            self.serve_read(&txn, arrival, engine);
            return;
        }
        let receipt = self.coordinate(txn, arrival, engine);
        let finish = receipt.finish_time;
        let token = self.finishing.insert(receipt);
        engine.schedule_at(finish, SysEvent::stage(ST_COMMITTED, token));
    }

    fn on_stage(&mut self, event: StageEvent, _engine: &mut Engine) {
        debug_assert_eq!(event.stage, ST_COMMITTED);
        let receipt = self.finishing.remove(event.token);
        self.receipts.push_back(receipt);
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.receipts.drain()
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.receipts.take_completions()
    }

    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.receipts.swap_completions(buf)
    }

    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.receipts.swap_receipts(buf)
    }

    fn footprint(&self) -> StorageBreakdown {
        // No ledger, no authenticated index: engine + (bounded) MVCC history.
        self.engine_db.footprint()
    }

    fn node_count(&self) -> usize {
        self.config.tidb_servers + self.config.tikv_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::drive_arrivals;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn rmw(client: u64, seq: u64, key: &str, size: usize) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(client), seq),
            vec![Operation::read_modify_write(
                Key::from_str(key),
                Value::filler(size),
            )],
        )
    }

    fn seeded(records: usize) -> TiDb {
        let mut t = TiDb::new(TiDbConfig::default());
        let recs: Vec<(Key, Value)> = (0..records)
            .map(|i| (Key::from_str(&format!("k{i:05}")), Value::filler(1000)))
            .collect();
        t.load(&recs);
        t
    }

    #[test]
    fn uniform_writes_commit_without_aborts() {
        let mut t = seeded(1000);
        let receipts = drive_arrivals(
            &mut t,
            (0..200u64).map(|seq| {
                (
                    rmw(seq % 8, seq, &format!("k{:05}", seq % 1000), 1000),
                    seq * 200,
                )
            }),
        );
        assert_eq!(receipts.len(), 200);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        let (c, a) = t.outcome_counts();
        assert_eq!((c, a), (200, 0));
    }

    #[test]
    fn skewed_writes_abort_and_slow_down() {
        // All clients hammer one key with interleaved snapshots.
        let mut t = seeded(10);
        let receipts = drive_arrivals(
            &mut t,
            (0..200u64).map(|seq| (rmw(seq % 8, seq, "k00000", 1000), seq * 50)),
        );
        let aborted = receipts.iter().filter(|r| !r.status.is_committed()).count();
        // Sequential submission means snapshots are mostly fresh; aborts come
        // from lock conflicts held across the storage pipeline. The paper's
        // collapse needs true concurrency, which the driver provides by
        // interleaving clients; here we only require the mechanism to exist.
        let (c, a) = t.outcome_counts();
        assert_eq!(c + a, 200);
        assert_eq!(a as usize, aborted);
    }

    #[test]
    fn reads_are_sub_millisecond_and_report_figure_8b_phases() {
        let mut t = seeded(100);
        let read = Transaction::new(
            TxnId::new(ClientId(1), 1),
            vec![Operation::read(Key::from_str("k00007"))],
        );
        let receipts = drive_arrivals(&mut t, vec![(read, 10)]);
        let r = &receipts[0];
        assert!(r.status.is_committed());
        assert!(r.latency_us() < 2_000, "latency {}", r.latency_us());
        let names: Vec<&str> = r.phase_latencies.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["sql-parse", "sql-compile", "storage-get"]);
        assert_eq!(r.reads[0].1.as_ref().unwrap().len(), 1000);
    }

    #[test]
    fn more_operations_per_transaction_cost_more() {
        let latency = |ops: usize| {
            let mut t = seeded(1000);
            let txn = Transaction::new(
                TxnId::new(ClientId(1), 1),
                (0..ops)
                    .map(|i| {
                        Operation::read_modify_write(
                            Key::from_str(&format!("k{i:05}")),
                            Value::filler(1000 / ops),
                        )
                    })
                    .collect(),
            );
            drive_arrivals(&mut t, vec![(txn, 0)])[0].latency_us()
        };
        assert!(latency(10) > latency(1));
    }

    #[test]
    fn a_coordinator_crash_stalls_write_decisions_until_heal_plus_failover() {
        use dichotomy_simnet::fault::NodeFault;
        let mut faults = FaultPlan::none();
        faults.add(NodeFault::crash_until(NodeId(0), 5_000, 300_000));
        let mut t = TiDb::new(TiDbConfig {
            faults,
            failover_us: 20_000,
            ..TiDbConfig::default()
        });
        let recs: Vec<(Key, Value)> = (0..100)
            .map(|i| (Key::from_str(&format!("k{i:05}")), Value::filler(1000)))
            .collect();
        t.load(&recs);
        let receipts = drive_arrivals(
            &mut t,
            (0..50u64).map(|seq| {
                (
                    rmw(seq % 8, seq, &format!("k{:05}", seq % 100), 1000),
                    seq * 2_000,
                )
            }),
        );
        assert_eq!(receipts.len(), 50);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        // Writes whose decision round falls in the outage wait for heal +
        // failover; the ones submitted mid-window prove the stall.
        let healed = 300_000 + 20_000;
        for r in receipts.iter().filter(|r| r.submit_time >= 5_000) {
            assert!(
                r.finish_time >= healed,
                "decision landed inside the outage: {}",
                r.finish_time
            );
        }
        assert!(receipts.iter().any(|r| r.finish_time >= healed));
    }

    #[test]
    fn a_region_leader_crash_stalls_only_transactions_touching_it() {
        use dichotomy_simnet::fault::NodeFault;
        // One region, whose leader is NodeId(1 + region). With hash
        // partitioning, find two keys landing in different regions.
        let p = Partitioner::hash(16);
        let key_a = Key::from_str("k00000");
        let region_a = p.shard_of(&key_a);
        let key_b = (1..100)
            .map(|i| Key::from_str(&format!("k{i:05}")))
            .find(|k| p.shard_of(k) != region_a)
            .unwrap();
        let mut faults = FaultPlan::none();
        faults.add(NodeFault::crash_until(
            NodeId(1 + u64::from(region_a.0)),
            0,
            500_000,
        ));
        let mut t = TiDb::new(TiDbConfig {
            faults,
            failover_us: 10_000,
            ..TiDbConfig::default()
        });
        t.load(&[
            (key_a.clone(), Value::filler(1000)),
            (key_b.clone(), Value::filler(1000)),
        ]);
        let txn = |seq: u64, key: &Key| {
            Transaction::new(
                TxnId::new(ClientId(seq), seq),
                vec![Operation::read_modify_write(
                    key.clone(),
                    Value::filler(100),
                )],
            )
        };
        let receipts = drive_arrivals(
            &mut t,
            vec![(txn(1, &key_a), 1_000), (txn(2, &key_b), 1_000)],
        );
        let on_a = receipts.iter().find(|r| r.txn_id.seq == 1).unwrap();
        let on_b = receipts.iter().find(|r| r.txn_id.seq == 2).unwrap();
        assert!(on_a.finish_time >= 510_000, "crashed region did not stall");
        assert!(on_b.finish_time < 100_000, "healthy region was stalled");
    }

    #[test]
    fn writes_survive_into_the_engine_and_footprint_has_no_history() {
        let mut t = seeded(10);
        let _ = drive_arrivals(&mut t, vec![(rmw(1, 1, "k00001", 500), 0)]);
        assert_eq!(
            t.engine_db.get(&Key::from_str("k00001")).unwrap().len(),
            500
        );
        let fp = t.footprint();
        assert_eq!(fp.history_bytes, 0);
        assert_eq!(t.node_count(), 6);
    }
}
