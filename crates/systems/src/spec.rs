//! Composable system descriptions: the paper's design-space taxonomy as an
//! *open* API.
//!
//! The paper's thesis is that every benchmarked system is a point in the
//! four-dimensional design space (replication, concurrency control, storage,
//! sharding). A [`SystemSpec`] describes such a point as plain data — kind,
//! node counts, block cutting, consensus profile, sharding knobs — and a
//! [`SystemRegistry`] maps the spec onto a concrete
//! [`TransactionalSystem`] model. Experiment plans carry specs instead of
//! hand-built systems, so a new deployment shape (more nodes, a different
//! consensus profile, a sharded variant) is one spec, not one function.
//!
//! The taxonomy wiring closes the loop with `dichotomy_hybrid::taxonomy`:
//! [`SystemSpec::taxonomy`] places a spec in the design space, and
//! [`SystemSpec::from_profile`] / [`SystemSpec::matches_profile`] derive and
//! validate specs against the Table 2 rows.

use std::collections::BTreeMap;
use std::fmt;

use dichotomy_common::Encode;
use dichotomy_consensus::ProtocolKind;
use dichotomy_hybrid::taxonomy::{
    ConcurrencyChoice, LedgerSupport, ReplicationModel, ShardingSupport, SystemProfile,
};
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig};

use crate::etcd::{Etcd, EtcdConfig, Tikv};
use crate::fabric::{Fabric, FabricConfig};
use crate::pipeline::{SystemKind, TransactionalSystem};
use crate::quorum::{Quorum, QuorumConfig};
use crate::sharded::{Ahl, AhlConfig, ShardedTiDb, SpannerLike, SpannerLikeConfig};
use crate::tidb::{TiDb, TiDbConfig};

/// A buildable description of a system deployment: one point in the paper's
/// design space plus the deployment knobs the experiments sweep.
///
/// Knobs left at `None` fall back to each model's defaults, so a spec only
/// states what it cares about:
///
/// ```
/// use dichotomy_systems::{SystemKind, SystemSpec};
/// let spec = SystemSpec::new(SystemKind::Quorum)
///     .with_nodes(7)
///     .with_blocks(100, 100_000);
/// let system = spec.build().unwrap();
/// assert_eq!(system.node_count(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Which registered model to build.
    pub kind: SystemKind,
    /// Report label override (defaults to the kind's display name).
    pub label: Option<String>,
    /// Replicas: validators (Quorum), peers (Fabric), storage nodes
    /// (TiKV/etcd), or nodes per shard for the sharded models.
    pub nodes: Option<usize>,
    /// Stateless SQL frontends (TiDB servers). `None` derives them from
    /// `nodes` the way the paper's full-replication deployment does.
    pub frontends: Option<usize>,
    /// Shards; `None`/`Some(0)` means unsharded. A sharded `TiDb` spec
    /// builds the region-partitioned model of Figure 14.
    pub shards: Option<u32>,
    /// Consensus profile override (e.g. Raft vs IBFT for Quorum).
    pub consensus: Option<ProtocolKind>,
    /// Block cutting: maximum transactions per block.
    pub block_txns: Option<usize>,
    /// Block cutting: interval/timeout in simulated µs.
    pub block_interval_us: Option<u64>,
    /// Fabric endorsement divergence probability.
    pub endorsement_divergence: Option<f64>,
    /// AHL: whether shards are periodically re-formed.
    pub periodic_reconfiguration: Option<bool>,
    /// AHL: epoch length between reconfigurations (µs).
    pub epoch_us: Option<u64>,
    /// AHL: pause per reconfiguration (µs).
    pub reconfig_pause_us: Option<u64>,
    /// Network model (defaults to the calibrated 1 Gbps LAN).
    pub network: Option<NetworkConfig>,
    /// CPU cost model (defaults to the calibrated profile).
    pub costs: Option<CostModel>,
    /// Fault schedule (crashes, partitions, failovers, reconfigurations)
    /// injected into the deployment, making chaos experiments declarative
    /// plans. Honoured by every built-in model under the role-addressing
    /// convention: `NodeId(0)` is the model's primary (Raft leader, lead
    /// orderer, consensus proposer, 2PC coordinator) and `NodeId(1 + s)`
    /// shard/region `s`'s replication leader. AHL additionally consumes
    /// declarative `Reconfiguration` events (epoch pause + optional
    /// membership churn).
    pub faults: Option<FaultPlan>,
    /// RNG seed for the model's stochastic choices.
    pub seed: Option<u64>,
}

impl SystemSpec {
    /// A spec for `kind` with every knob at the model's default.
    pub fn new(kind: SystemKind) -> Self {
        SystemSpec {
            kind,
            label: None,
            nodes: None,
            frontends: None,
            shards: None,
            consensus: None,
            block_txns: None,
            block_interval_us: None,
            endorsement_divergence: None,
            periodic_reconfiguration: None,
            epoch_us: None,
            reconfig_pause_us: None,
            network: None,
            costs: None,
            faults: None,
            seed: None,
        }
    }

    /// Override the report label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Set the replica count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Set the number of stateless SQL frontends (TiDB).
    pub fn with_frontends(mut self, frontends: usize) -> Self {
        self.frontends = Some(frontends);
        self
    }

    /// Set the shard count.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Set the consensus profile.
    pub fn with_consensus(mut self, protocol: ProtocolKind) -> Self {
        self.consensus = Some(protocol);
        self
    }

    /// Set the block-cutting limits (max transactions, interval µs).
    pub fn with_blocks(mut self, max_txns: usize, interval_us: u64) -> Self {
        self.block_txns = Some(max_txns);
        self.block_interval_us = Some(interval_us);
        self
    }

    /// Set the Fabric endorsement-divergence probability.
    pub fn with_endorsement_divergence(mut self, p: f64) -> Self {
        self.endorsement_divergence = Some(p);
        self
    }

    /// Enable/disable AHL's periodic shard reconfiguration.
    pub fn with_periodic_reconfiguration(mut self, on: bool) -> Self {
        self.periodic_reconfiguration = Some(on);
        self
    }

    /// Set AHL's reconfiguration cadence (epoch length, pause per epoch).
    pub fn with_reconfiguration(mut self, epoch_us: u64, pause_us: u64) -> Self {
        self.epoch_us = Some(epoch_us);
        self.reconfig_pause_us = Some(pause_us);
        self
    }

    /// Set the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The label used in reports.
    pub fn label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| self.kind.name().to_string())
    }

    /// Shard count, defaulting to unsharded.
    pub fn shard_count(&self) -> u32 {
        self.shards.unwrap_or(0)
    }

    /// Build through the built-in registry.
    pub fn build(&self) -> Result<Box<dyn TransactionalSystem>, UnknownSystem> {
        SystemRegistry::with_builtins().build(self)
    }

    /// Where this spec sits in the paper's design space.
    pub fn taxonomy(&self) -> TaxonomyPoint {
        let sharded = self.shard_count() > 1;
        let (replication, concurrency, ledger) = match self.kind {
            SystemKind::Quorum => (
                ReplicationModel::TransactionBased,
                ConcurrencyChoice::Serial,
                LedgerSupport::Yes,
            ),
            SystemKind::Fabric => (
                ReplicationModel::TransactionBased,
                ConcurrencyChoice::ConcurrentExecutionSerialCommit,
                LedgerSupport::Yes,
            ),
            SystemKind::TiDb => (
                ReplicationModel::StorageBased,
                ConcurrencyChoice::Concurrent,
                LedgerSupport::No,
            ),
            SystemKind::Etcd | SystemKind::Tikv => (
                ReplicationModel::StorageBased,
                ConcurrencyChoice::Serial,
                LedgerSupport::No,
            ),
            SystemKind::SpannerLike => (
                ReplicationModel::StorageBased,
                ConcurrencyChoice::Concurrent,
                LedgerSupport::No,
            ),
            SystemKind::Ahl => (
                ReplicationModel::TransactionBased,
                ConcurrencyChoice::Serial,
                LedgerSupport::Yes,
            ),
        };
        let protocol = self.consensus.unwrap_or(match self.kind {
            SystemKind::Fabric => ProtocolKind::SharedLog,
            SystemKind::Ahl => ProtocolKind::Pbft,
            _ => ProtocolKind::Raft,
        });
        let sharding = match self.kind {
            // The NewSQL databases shard behind a trusted coordinator as soon
            // as data spans regions; AHL runs BFT 2PC across shards.
            SystemKind::TiDb => ShardingSupport::TwoPcTrustedCoordinator,
            SystemKind::SpannerLike => ShardingSupport::TwoPcTrustedCoordinator,
            SystemKind::Ahl if sharded => ShardingSupport::TwoPcBftCoordinator,
            _ => ShardingSupport::None,
        };
        TaxonomyPoint {
            replication,
            protocol,
            concurrency,
            ledger,
            sharding,
        }
    }

    /// Derive a buildable spec from a Table 2 profile, if the profile's
    /// design point has a built-in model.
    pub fn from_profile(profile: &SystemProfile) -> Option<SystemSpec> {
        let kind = match profile.name {
            "Quorum v2.2" => SystemKind::Quorum,
            "Fabric v2.2" => SystemKind::Fabric,
            "TiDB v4.0" => SystemKind::TiDb,
            "etcd v3.3" => SystemKind::Etcd,
            "Spanner" => SystemKind::SpannerLike,
            _ => return None,
        };
        Some(SystemSpec::new(kind).with_consensus(profile.protocol))
    }

    /// Whether this spec's design-space coordinates agree with a Table 2
    /// profile (replication, concurrency, ledger and failure model).
    pub fn matches_profile(&self, profile: &SystemProfile) -> bool {
        let point = self.taxonomy();
        point.replication == profile.replication
            && point.concurrency == profile.concurrency
            && point.ledger == profile.ledger
            && point.protocol.failure_model() == profile.protocol.failure_model()
    }
}

// A `SystemSpec` is one third of a probe's identity (alongside the workload
// and driver specs), so its canonical encoding covers *every* knob — label
// included, because the label reaches the report — in declaration order.
// `usize` knobs encode as `u64` so the bytes are architecture-independent.
impl Encode for SystemSpec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        self.label.as_deref().encode_into(out);
        self.nodes.map(|v| v as u64).encode_into(out);
        self.frontends.map(|v| v as u64).encode_into(out);
        self.shards.encode_into(out);
        self.consensus.encode_into(out);
        self.block_txns.map(|v| v as u64).encode_into(out);
        self.block_interval_us.encode_into(out);
        self.endorsement_divergence.encode_into(out);
        self.periodic_reconfiguration.encode_into(out);
        self.epoch_us.encode_into(out);
        self.reconfig_pause_us.encode_into(out);
        self.network.encode_into(out);
        self.costs.encode_into(out);
        self.faults.encode_into(out);
        self.seed.encode_into(out);
    }
}

/// A spec's coordinates in the paper's design space (Tables 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaxonomyPoint {
    /// What is replicated: the transaction log or the storage log.
    pub replication: ReplicationModel,
    /// The ordering/replication protocol.
    pub protocol: ProtocolKind,
    /// How transactions execute.
    pub concurrency: ConcurrencyChoice,
    /// Whether an append-only tamper-evident ledger is kept.
    pub ledger: LedgerSupport,
    /// Whether and how the system shards.
    pub sharding: ShardingSupport,
}

/// Error returned when no builder is registered for a spec's kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSystem {
    /// The kind that had no registered builder.
    pub kind: SystemKind,
}

impl fmt::Display for UnknownSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no builder registered for system kind {:?}", self.kind)
    }
}

impl std::error::Error for UnknownSystem {}

/// A builder function: spec in, boxed system model out.
pub type SystemBuilder = fn(&SystemSpec) -> Box<dyn TransactionalSystem>;

// The parallel plan executor shares specs and registries across worker
// threads (each worker *builds* its own model from the spec, so the boxed
// `TransactionalSystem` itself never crosses threads and needs no `Send`).
// Audit the thread-crossing types at compile time: a future knob that drags
// in an `Rc`/`RefCell` should fail here, not in a scheduler backtrace.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<SystemKind>();
    _assert_send_sync::<SystemSpec>();
    _assert_send_sync::<SystemBuilder>();
    _assert_send_sync::<SystemRegistry>();
};

/// Maps [`SystemSpec`]s onto concrete models.
///
/// The registry replaces the closed per-system `match` the experiments used
/// to hardcode: builders are plain function values keyed by [`SystemKind`],
/// so a caller can re-register a kind to swap in a variant model (or register
/// a kind the built-ins do not cover) without touching the experiment code.
pub struct SystemRegistry {
    builders: BTreeMap<SystemKind, SystemBuilder>,
}

impl SystemRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SystemRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// The registry with every built-in model registered.
    pub fn with_builtins() -> Self {
        let mut r = SystemRegistry::new();
        r.register(SystemKind::Fabric, build_fabric);
        r.register(SystemKind::Quorum, build_quorum);
        r.register(SystemKind::TiDb, build_tidb);
        r.register(SystemKind::Etcd, build_etcd);
        r.register(SystemKind::Tikv, build_tikv);
        r.register(SystemKind::SpannerLike, build_spanner_like);
        r.register(SystemKind::Ahl, build_ahl);
        r
    }

    /// Register (or replace) the builder for `kind`.
    pub fn register(&mut self, kind: SystemKind, builder: SystemBuilder) {
        self.builders.insert(kind, builder);
    }

    /// The kinds with a registered builder.
    pub fn kinds(&self) -> Vec<SystemKind> {
        self.builders.keys().copied().collect()
    }

    /// Build the model a spec describes.
    pub fn build(&self, spec: &SystemSpec) -> Result<Box<dyn TransactionalSystem>, UnknownSystem> {
        self.builders
            .get(&spec.kind)
            .map(|builder| builder(spec))
            .ok_or(UnknownSystem { kind: spec.kind })
    }
}

impl Default for SystemRegistry {
    fn default() -> Self {
        SystemRegistry::with_builtins()
    }
}

fn build_fabric(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    let d = FabricConfig::default();
    Box::new(Fabric::new(FabricConfig {
        peers: spec.nodes.unwrap_or(d.peers),
        max_block_txns: spec.block_txns.unwrap_or(d.max_block_txns),
        block_timeout_us: spec.block_interval_us.unwrap_or(d.block_timeout_us),
        endorsement_divergence: spec
            .endorsement_divergence
            .unwrap_or(d.endorsement_divergence),
        network: spec.network.clone().unwrap_or(d.network),
        costs: spec.costs.clone().unwrap_or(d.costs),
        faults: spec.faults.clone().unwrap_or(d.faults),
        seed: spec.seed.unwrap_or(d.seed),
        ..d
    }))
}

fn build_quorum(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    let d = QuorumConfig::default();
    Box::new(Quorum::new(QuorumConfig {
        nodes: spec.nodes.unwrap_or(d.nodes),
        consensus: spec.consensus.unwrap_or(d.consensus),
        max_block_txns: spec.block_txns.unwrap_or(d.max_block_txns),
        block_interval_us: spec.block_interval_us.unwrap_or(d.block_interval_us),
        network: spec.network.clone().unwrap_or(d.network),
        costs: spec.costs.clone().unwrap_or(d.costs),
        faults: spec.faults.clone().unwrap_or(d.faults),
        seed: spec.seed.unwrap_or(d.seed),
        ..d
    }))
}

fn build_tidb(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    if spec.shard_count() > 0 {
        // The region-partitioned TiDB of Figure 14.
        return Box::new(ShardedTiDb::with_faults(
            spec.shard_count(),
            spec.network
                .clone()
                .unwrap_or_else(NetworkConfig::lan_1gbps),
            spec.costs.clone().unwrap_or_else(CostModel::calibrated),
            spec.faults.clone().unwrap_or_default(),
            10_000,
        ));
    }
    let d = TiDbConfig::default();
    let tikv_nodes = spec.nodes.unwrap_or(d.tikv_nodes);
    Box::new(TiDb::new(TiDbConfig {
        // The paper's full-replication deployment splits a cluster roughly
        // half SQL frontends, half storage nodes.
        tidb_servers: spec.frontends.unwrap_or((tikv_nodes / 2).max(1)),
        tikv_nodes,
        network: spec.network.clone().unwrap_or(d.network),
        costs: spec.costs.clone().unwrap_or(d.costs),
        faults: spec.faults.clone().unwrap_or(d.faults),
        ..d
    }))
}

fn kv_config(spec: &SystemSpec) -> EtcdConfig {
    let d = EtcdConfig::default();
    EtcdConfig {
        nodes: spec.nodes.unwrap_or(d.nodes),
        faults: spec.faults.clone().unwrap_or(d.faults),
        network: spec.network.clone().unwrap_or(d.network),
        costs: spec.costs.clone().unwrap_or(d.costs),
        ..d
    }
}

fn build_etcd(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    Box::new(Etcd::new(kv_config(spec)))
}

fn build_tikv(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    Box::new(Tikv::new(kv_config(spec)))
}

fn build_spanner_like(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    let d = SpannerLikeConfig::default();
    Box::new(SpannerLike::new(SpannerLikeConfig {
        shards: if spec.shard_count() > 0 {
            spec.shard_count()
        } else {
            d.shards
        },
        nodes_per_shard: spec.nodes.unwrap_or(d.nodes_per_shard),
        network: spec.network.clone().unwrap_or(d.network),
        costs: spec.costs.clone().unwrap_or(d.costs),
        faults: spec.faults.clone().unwrap_or(d.faults),
        ..d
    }))
}

fn build_ahl(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    let d = AhlConfig::default();
    Box::new(Ahl::new(AhlConfig {
        shards: if spec.shard_count() > 0 {
            spec.shard_count()
        } else {
            d.shards
        },
        nodes_per_shard: spec.nodes.unwrap_or(d.nodes_per_shard),
        periodic_reconfiguration: spec
            .periodic_reconfiguration
            .unwrap_or(d.periodic_reconfiguration),
        epoch_us: spec.epoch_us.unwrap_or(d.epoch_us),
        reconfig_pause_us: spec.reconfig_pause_us.unwrap_or(d.reconfig_pause_us),
        network: spec.network.clone().unwrap_or(d.network),
        costs: spec.costs.clone().unwrap_or(d.costs),
        faults: spec.faults.clone().unwrap_or(d.faults),
        ..d
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_hybrid::all_systems;

    #[test]
    fn every_builtin_kind_builds() {
        let registry = SystemRegistry::with_builtins();
        for kind in SystemKind::ALL {
            let system = registry.build(&SystemSpec::new(kind)).unwrap();
            assert_eq!(system.kind(), kind, "{kind:?}");
            assert!(system.node_count() > 0);
        }
        assert_eq!(registry.kinds().len(), SystemKind::ALL.len());
    }

    #[test]
    fn an_empty_registry_rejects_every_spec() {
        let registry = SystemRegistry::new();
        let err = registry
            .build(&SystemSpec::new(SystemKind::Etcd))
            .err()
            .expect("empty registry must not build");
        assert_eq!(err.kind, SystemKind::Etcd);
        assert!(err.to_string().contains("Etcd"));
    }

    #[test]
    fn node_and_block_knobs_reach_the_models() {
        let quorum = SystemSpec::new(SystemKind::Quorum)
            .with_nodes(9)
            .with_blocks(50, 10_000)
            .build()
            .unwrap();
        assert_eq!(quorum.node_count(), 9);
        // Fabric counts its 3 orderers on top of the peers.
        let fabric = SystemSpec::new(SystemKind::Fabric)
            .with_nodes(7)
            .build()
            .unwrap();
        assert_eq!(fabric.node_count(), 10);
        let etcd = SystemSpec::new(SystemKind::Etcd)
            .with_nodes(5)
            .build()
            .unwrap();
        assert_eq!(etcd.node_count(), 5);
    }

    #[test]
    fn a_sharded_tidb_spec_builds_the_partitioned_model() {
        let spec = SystemSpec::new(SystemKind::TiDb).with_shards(4);
        let system = spec.build().unwrap();
        assert_eq!(system.kind(), SystemKind::TiDb);
        // 4 shards × 3 replicas.
        assert_eq!(system.node_count(), 12);
    }

    #[test]
    fn a_replaced_builder_wins() {
        fn tiny_etcd(_spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
            Box::new(Etcd::new(EtcdConfig {
                nodes: 1,
                ..EtcdConfig::default()
            }))
        }
        let mut registry = SystemRegistry::with_builtins();
        registry.register(SystemKind::Etcd, tiny_etcd);
        let system = registry
            .build(&SystemSpec::new(SystemKind::Etcd).with_nodes(99))
            .unwrap();
        assert_eq!(system.node_count(), 1);
    }

    #[test]
    fn labels_default_to_the_kind_name() {
        assert_eq!(SystemSpec::new(SystemKind::TiDb).label(), "TiDB");
        assert_eq!(
            SystemSpec::new(SystemKind::TiDb)
                .with_label("TiDB saturated")
                .label(),
            "TiDB saturated"
        );
    }

    #[test]
    fn taxonomy_points_follow_the_paper() {
        let quorum = SystemSpec::new(SystemKind::Quorum).taxonomy();
        assert_eq!(quorum.replication, ReplicationModel::TransactionBased);
        assert_eq!(quorum.ledger, LedgerSupport::Yes);
        let tidb = SystemSpec::new(SystemKind::TiDb).taxonomy();
        assert_eq!(tidb.replication, ReplicationModel::StorageBased);
        assert_eq!(tidb.concurrency, ConcurrencyChoice::Concurrent);
        assert_eq!(tidb.sharding, ShardingSupport::TwoPcTrustedCoordinator);
        let ahl = SystemSpec::new(SystemKind::Ahl).with_shards(4).taxonomy();
        assert_eq!(ahl.sharding, ShardingSupport::TwoPcBftCoordinator);
    }

    #[test]
    fn specs_derived_from_table2_match_their_profiles_and_build() {
        let mut derived = 0;
        for profile in all_systems() {
            if let Some(spec) = SystemSpec::from_profile(&profile) {
                derived += 1;
                assert!(
                    spec.matches_profile(&profile),
                    "{} disagrees with its own profile",
                    profile.name
                );
                assert!(spec.build().is_ok(), "{} failed to build", profile.name);
            }
        }
        // Quorum, Fabric v2.2, TiDB, etcd, Spanner.
        assert_eq!(derived, 5);
    }

    #[test]
    fn foreign_profiles_do_not_match_mismatched_specs() {
        let systems = all_systems();
        let tidb_profile = systems.iter().find(|s| s.name == "TiDB v4.0").unwrap();
        let quorum = SystemSpec::new(SystemKind::Quorum);
        assert!(!quorum.matches_profile(tidb_profile));
    }
}
