//! The Hyperledger Fabric model: an **execute-order-validate** permissioned
//! blockchain (Section 4.1, Figure 3b).
//!
//! Write path: the client authenticates to the endorsing peers, which
//! *simulate* the chaincode concurrently against their current state and sign
//! the result (endorsement). The client compares the endorsements — peers
//! with diverging state produce an **inconsistent read** abort — and sends
//! the endorsed transaction to the ordering service (an external Raft/Kafka
//! shared log with a fixed number of orderers). Orderers cut blocks, which
//! peers then validate **serially**: every endorsement signature is verified
//! and the MVCC read set re-checked (stale reads become **read-write
//! conflict** aborts), before the writes are applied to the LSM state store
//! and the block appended to the ledger. This serial validation is the
//! saturation bottleneck the paper dissects in Figure 8a, and the
//! all-endorsers policy is why more peers mean slower validation (Table 4).
//!
//! Event pipeline (`Endorsed → block cut → Ordered → Committed`): an
//! arriving write books chaincode simulation on the endorser pool and
//! schedules its `Endorsed` stage; endorsed transactions fill the orderer's
//! block cutter (with a timeout timer event per open block); a cut block's
//! `Ordered` stage runs MVCC validation on the serial validator process, and
//! its `Committed` stage appends the ledger and emits the receipts. Backlog
//! on the validator is therefore real queue depth on the engine — which is
//! also what the endorsement-divergence probability reads.

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{AbortReason, Key, NodeId, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_consensus::sharedlog::{SharedLog, SharedLogConfig};
use dichotomy_ledger::{Ledger, TxnValidationFlag};
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig, ProcessId, StageEvent};
use dichotomy_storage::{KvEngine, LsmTree, MvccStore};
use dichotomy_txn::OccExecutor;

use crate::pipeline::{
    Completion, Engine, ReceiptLog, SysEvent, SystemKind, TimedCutter, TokenMap,
    TransactionalSystem,
};

/// Configuration of a Fabric deployment.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of peers. The endorsement policy requires *all* peers to
    /// endorse (the paper's full-replication setting), so this also sets the
    /// number of signatures verified per transaction at validation.
    pub peers: usize,
    /// Number of orderer nodes (fixed at 3 in the paper's experiments).
    pub orderers: usize,
    /// Maximum transactions per block.
    pub max_block_txns: usize,
    /// Block cutting timeout at the orderer (µs).
    pub block_timeout_us: u64,
    /// Probability that endorsements diverge because peers' committed states
    /// lag each other, per additional peer beyond the first, per pending
    /// block of backlog (drives the inconsistent-read aborts of Figure 10b).
    pub endorsement_divergence: f64,
    /// Network model.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
    /// Fault schedule. `NodeId(0)` addresses the lead orderer (the ordering
    /// service's Raft leader): crash/failover windows stall block cutting —
    /// endorsed transactions keep queueing at the cutter, so the recovery
    /// burst emerges from the backlog, not from a scripted stall.
    pub faults: FaultPlan,
    /// Re-election pause after an orderer crash heals (µs).
    pub failover_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            peers: 5,
            orderers: 3,
            max_block_txns: 100,
            block_timeout_us: 250_000,
            endorsement_divergence: 0.002,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
            faults: FaultPlan::none(),
            failover_us: 10_000,
            seed: dichotomy_common::rng::DEFAULT_SEED,
        }
    }
}

/// Stage: a transaction's endorsement completed (token = pending-txn id).
const ST_ENDORSED: u32 = 0;
/// Stage: the orderer's block-timeout timer (token = cutter epoch).
const ST_CUT_TIMER: u32 = 1;
/// Stage: a cut block was appended to the shared log (token = block id).
const ST_ORDERED: u32 = 2;
/// Stage: the validated block commits at the peers (token = block id).
const ST_COMMITTED: u32 = 3;

/// A block between its `Ordered` and `Committed` stages.
struct BlockInFlight {
    /// (transaction, endorsement-completion time) pairs, in order.
    batch: Vec<(Transaction, Timestamp)>,
    ordered_at: Timestamp,
    /// Per-txn validation flags/outcomes, filled at the `Ordered` stage.
    flags: Vec<TxnValidationFlag>,
    outcomes: Vec<Result<(), AbortReason>>,
    commit_done: Timestamp,
}

/// Engine process handles, created at attach time.
#[derive(Clone, Copy)]
struct FabricProcs {
    /// Concurrent chaincode simulation capacity on the endorsing peers.
    endorsers: ProcessId,
    /// The representative peer's serial validation/commit engine.
    validator: ProcessId,
}

/// The Fabric system model.
pub struct Fabric {
    config: FabricConfig,
    procs: Option<FabricProcs>,
    /// The ordering service.
    orderer: SharedLog,
    cutter: TimedCutter,
    /// Writes awaiting their `Endorsed` stage, by token.
    endorsing: TokenMap<Transaction>,
    /// Blocks between `Ordered` and `Committed`, by block id.
    in_flight: TokenMap<BlockInFlight>,
    /// Versioned world state (MVCC validation runs against this).
    state: MvccStore,
    /// State database (LevelDB/CouchDB role).
    state_db: LsmTree,
    occ: OccExecutor,
    ledger: Ledger,
    receipts: ReceiptLog,
    rng: dichotomy_common::rng::StdRng,
    committed: u64,
    aborted_rw: u64,
    aborted_inconsistent: u64,
}

impl Fabric {
    /// Build a Fabric deployment.
    pub fn new(config: FabricConfig) -> Self {
        Fabric {
            procs: None,
            orderer: SharedLog::new(SharedLogConfig {
                brokers: config.orderers,
                network: config.network.clone(),
                ..SharedLogConfig::default()
            }),
            cutter: TimedCutter::new(config.max_block_txns, config.block_timeout_us, ST_CUT_TIMER),
            endorsing: TokenMap::new(),
            in_flight: TokenMap::new(),
            state: MvccStore::new(),
            state_db: LsmTree::new(),
            occ: OccExecutor::new(),
            ledger: Ledger::new(NodeId(0)),
            receipts: ReceiptLog::new(),
            rng: dichotomy_common::rng::seeded(config.seed),
            committed: 0,
            aborted_rw: 0,
            aborted_inconsistent: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Abort counts by cause, for the Figure 9b/10b breakdowns:
    /// (committed, read-write conflicts, inconsistent reads).
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        (self.committed, self.aborted_rw, self.aborted_inconsistent)
    }

    fn procs(&self) -> FabricProcs {
        self.procs.expect("system not attached to an engine")
    }

    /// The client arrival a receipt should carry: the driver stamps it into
    /// `submit_time`; transactions injected without one fall back to the
    /// endorsement-completion time the cutter tracked.
    fn client_arrival(txn: &Transaction, endorse_t: Timestamp) -> Timestamp {
        if txn.submit_time > 0 {
            txn.submit_time
        } else {
            endorse_t
        }
    }

    /// Endorsement phase: authentication, concurrent simulation on the
    /// peers, endorsement signatures and the client-side comparison of the
    /// endorsements. Returns the time the endorsed transaction is ready for
    /// ordering, or an abort.
    fn endorse(
        &mut self,
        txn: &Transaction,
        arrival: Timestamp,
        engine: &mut Engine,
    ) -> Result<Timestamp, AbortReason> {
        use dichotomy_common::rng::Rng;
        let c = &self.config.costs;
        let simulate = c.client_auth()
            + c.chaincode_exec_us(txn.op_count(), txn.payload_bytes())
            + c.sign_us();
        let (_, sim_done) = engine.service(self.procs().endorsers, arrival, simulate);
        // One network round trip to the endorsers, then the client compares.
        let rtt = 2 * (self.config.network.base_latency_us + self.config.network.jitter_us / 2);
        let ready = sim_done + rtt;
        // The more peers must endorse and the more backlog the validator has,
        // the likelier two endorsers ran against different committed states.
        let backlog_blocks = (engine.queue_delay(self.procs().validator, ready)
            / self.config.block_timeout_us.max(1))
            + 1;
        let divergence = self.config.endorsement_divergence
            * (self.config.peers.saturating_sub(1)) as f64
            * backlog_blocks as f64
            * txn.write_set().len() as f64;
        if self.rng.gen_bool(divergence.min(0.9)) {
            return Err(AbortReason::InconsistentRead);
        }
        Ok(ready)
    }

    /// A block was cut at the orderer: append it to the shared log and
    /// schedule its `Ordered` stage at the append time.
    fn launch_block(
        &mut self,
        batch: Vec<(Transaction, Timestamp)>,
        cut_time: Timestamp,
        engine: &mut Engine,
    ) {
        if batch.is_empty() {
            return;
        }
        // The ordering service's leader may be crashed, failing over, or cut
        // off from the peers: the append waits for the role to come back.
        let cut_time = match self
            .config
            .faults
            .primary_release(cut_time, self.config.failover_us)
        {
            Some(t) => t,
            None => {
                // Ordering service down for good: the whole batch times out.
                for (txn, endorse_done) in &batch {
                    let arrival = Fabric::client_arrival(txn, *endorse_done);
                    let finish = cut_time + 2 * self.config.network.base_latency_us;
                    self.receipts.push_back(TxnReceipt::aborted(
                        txn.id,
                        AbortReason::Overload,
                        arrival,
                        finish,
                    ));
                }
                return;
            }
        };
        let batch_bytes: usize = batch.iter().map(|(t, _)| t.wire_bytes()).sum();
        let record = self.orderer.append(cut_time, batch_bytes);
        let id = self.in_flight.insert(BlockInFlight {
            batch,
            ordered_at: record.appended_at,
            flags: Vec::new(),
            outcomes: Vec::new(),
            commit_done: 0,
        });
        engine.schedule_at(record.appended_at, SysEvent::stage(ST_ORDERED, id));
    }

    /// An endorsed transaction reaches the orderer: feed the cutter, cutting
    /// on size and arming the timeout timer for newly opened blocks.
    fn order(&mut self, txn: Transaction, endorse_done: Timestamp, engine: &mut Engine) {
        if let Some((batch, cut_time)) = self.cutter.add(txn, endorse_done, engine) {
            self.launch_block(batch, cut_time, engine);
        }
    }

    /// Validation of one ordered block at the peers (serial): MVCC read-set
    /// checks, signature verification, state writes.
    fn validate_block(&mut self, id: u64, engine: &mut Engine) {
        let mut block = self.in_flight.remove(id);
        let ordered_at = block.ordered_at;
        // Simulate all transactions against the pre-block state (they were
        // endorsed before ordering), then validate in order.
        let sims: Vec<_> = block
            .batch
            .iter()
            .map(|(txn, _)| self.occ.simulate(txn, &self.state))
            .collect();
        let mut validation_cost = self.config.costs.block_header_check();
        let mut flags = Vec::with_capacity(block.batch.len());
        let mut outcomes = Vec::with_capacity(block.batch.len());
        for ((txn, _), sim) in block.batch.iter().zip(&sims) {
            // Verify the endorsement signatures of every peer (42 % of the
            // validation time when saturated, per Section 5.2.1).
            validation_cost += self
                .config
                .costs
                .verify_signatures_us(self.config.peers.max(1));
            // MVCC read-set check + state write.
            validation_cost += 20 * txn.op_count() as u64;
            match self.occ.validate_and_commit(sim, &mut self.state) {
                Ok(_) => {
                    for (key, value) in &sim.write_set {
                        validation_cost += self.config.costs.storage_put_us(value.len());
                        self.state_db.put(key.clone(), value.clone());
                    }
                    flags.push(TxnValidationFlag::Valid);
                    outcomes.push(Ok(()));
                    self.committed += 1;
                }
                Err(reason) => {
                    flags.push(TxnValidationFlag::Invalid);
                    outcomes.push(Err(reason));
                    self.aborted_rw += 1;
                }
            }
        }
        let (_, commit_done) = engine.service(self.procs().validator, ordered_at, validation_cost);
        block.flags = flags;
        block.outcomes = outcomes;
        block.commit_done = commit_done;
        self.in_flight.restore(id, block);
        engine.schedule_at(commit_done, SysEvent::stage(ST_COMMITTED, id));
    }

    /// Commit of a validated block: ledger append (valid and invalid
    /// transactions alike) and receipt emission.
    fn commit_block(&mut self, id: u64) {
        let block = self.in_flight.remove(id);
        // Keep (id, endorse-done) for the receipts before the transactions
        // move into the chain block.
        let receipt_meta: Vec<(dichotomy_common::TxnId, Timestamp, Timestamp)> = block
            .batch
            .iter()
            .map(|(t, endorse_done)| {
                (
                    t.id,
                    Fabric::client_arrival(t, *endorse_done),
                    *endorse_done,
                )
            })
            .collect();
        let txns: Vec<Transaction> = block.batch.into_iter().map(|(t, _)| t).collect();
        let chain_block = dichotomy_common::Block::assemble(
            self.ledger.tip_height() + 1,
            self.ledger.tip_hash(),
            txns,
            NodeId(0),
            block.commit_done,
            None,
        );
        self.ledger
            .append(chain_block, block.flags, block.commit_done)
            .expect("chain grows monotonically");

        for ((txn_id, arrival, endorse_done), outcome) in
            receipt_meta.into_iter().zip(block.outcomes)
        {
            let order_latency = block.ordered_at.saturating_sub(endorse_done);
            let mut receipt = match outcome {
                Ok(()) => TxnReceipt::committed(txn_id, arrival, block.commit_done),
                Err(reason) => TxnReceipt::aborted(txn_id, reason, arrival, block.commit_done),
            };
            receipt.phase_latencies = vec![
                ("execute", endorse_done.saturating_sub(arrival)),
                ("order", order_latency),
                (
                    "validate",
                    block.commit_done.saturating_sub(block.ordered_at),
                ),
            ];
            self.receipts.push_back(receipt);
        }
    }

    fn serve_read(&mut self, txn: &Transaction, arrival: Timestamp, engine: &mut Engine) {
        let c = &self.config.costs;
        // Figure 8b: authentication dominates, then simulation + endorsement.
        let mut cost = c.client_auth() + c.chaincode_exec_us(txn.op_count(), 128) + c.sign_us();
        let mut reads = Vec::new();
        for op in txn.ops.iter().filter(|o| o.reads()) {
            let value = self.state_db.get(&op.key);
            cost += c.storage_get_us(value.as_ref().map_or(64, Value::len)) / 4;
            reads.push((op.key.clone(), value));
        }
        let (_, finish) = engine.service(self.procs().endorsers, arrival, cost);
        let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
        receipt.reads = reads;
        receipt.phase_latencies = vec![
            ("authentication", c.client_auth()),
            ("simulation", c.chaincode_exec_us(txn.op_count(), 128)),
            ("endorsement", c.sign_us()),
        ];
        self.receipts.push_back(receipt);
    }
}

impl TransactionalSystem for Fabric {
    fn kind(&self) -> SystemKind {
        SystemKind::Fabric
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        let version = self.state.begin_commit();
        for (k, v) in records {
            self.state.commit_write(k.clone(), version, Some(v.clone()));
            self.state_db.put(k.clone(), v.clone());
        }
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.procs = Some(FabricProcs {
            endorsers: engine.add_process("fabric-endorsers", self.config.peers.max(1) * 4),
            validator: engine.add_process("fabric-validator", 1),
        });
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        let arrival = engine.now();
        if txn.is_read_only() {
            self.serve_read(&txn, arrival, engine);
            return;
        }
        match self.endorse(&txn, arrival, engine) {
            Err(reason) => {
                self.aborted_inconsistent += 1;
                let finish = arrival
                    + self.config.costs.client_auth()
                    + 2 * self.config.network.base_latency_us;
                self.receipts
                    .push_back(TxnReceipt::aborted(txn.id, reason, arrival, finish));
            }
            Ok(endorse_done) => {
                let token = self.endorsing.insert(txn);
                engine.schedule_at(endorse_done, SysEvent::stage(ST_ENDORSED, token));
            }
        }
    }

    fn on_stage(&mut self, event: StageEvent, engine: &mut Engine) {
        match event.stage {
            ST_ENDORSED => {
                let txn = self.endorsing.remove(event.token);
                let endorse_done = engine.now();
                self.order(txn, endorse_done, engine);
            }
            ST_CUT_TIMER => {
                if let Some((batch, cut_time)) = self.cutter.on_timer(event.token, engine.now()) {
                    self.launch_block(batch, cut_time, engine);
                }
            }
            ST_ORDERED => self.validate_block(event.token, engine),
            ST_COMMITTED => self.commit_block(event.token),
            _ => unreachable!("unknown Fabric stage {}", event.stage),
        }
    }

    fn on_drain(&mut self, engine: &mut Engine) {
        // Defensive: the per-block timeout timers normally leave nothing to
        // flush by the time the queue runs dry.
        if let Some((batch, cut_time)) = self.cutter.flush(engine.now()) {
            self.launch_block(batch, cut_time, engine);
        }
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.receipts.drain()
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.receipts.take_completions()
    }

    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.receipts.swap_completions(buf)
    }

    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.receipts.swap_receipts(buf)
    }

    fn footprint(&self) -> StorageBreakdown {
        // Fabric ≥ v1 has no authenticated state index: state DB + ledger.
        self.state_db.footprint().merged(&self.ledger.footprint())
    }

    fn node_count(&self) -> usize {
        self.config.peers + self.config.orderers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::drive_arrivals;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn rmw(seq: u64, key: &str, size: usize, arrival: Timestamp) -> Transaction {
        let mut t = Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::read_modify_write(
                Key::from_str(key),
                Value::filler(size),
            )],
        );
        t.submit_time = arrival;
        t
    }

    fn seed_keys(f: &mut Fabric, n: usize) {
        let records: Vec<(Key, Value)> = (0..n)
            .map(|i| (Key::from_str(&format!("k{i}")), Value::filler(100)))
            .collect();
        f.load(&records);
    }

    #[test]
    fn non_conflicting_writes_commit_through_all_three_phases() {
        let mut f = Fabric::new(FabricConfig {
            max_block_txns: 10,
            // This test exercises the happy path; endorsement divergence has
            // its own test below.
            endorsement_divergence: 0.0,
            ..FabricConfig::default()
        });
        seed_keys(&mut f, 50);
        let receipts = drive_arrivals(
            &mut f,
            (0..20u64).map(|seq| {
                let arrival = seq * 2_000;
                (rmw(seq, &format!("k{seq}"), 100, arrival), arrival)
            }),
        );
        assert_eq!(receipts.len(), 20);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        let phases: Vec<&str> = receipts[0]
            .phase_latencies
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(phases, vec!["execute", "order", "validate"]);
        assert_eq!(f.ledger.txn_count(), 20);
        assert!(f.ledger.verify_chain().is_none());
    }

    #[test]
    fn conflicting_writes_in_one_block_produce_read_write_aborts() {
        let mut f = Fabric::new(FabricConfig {
            max_block_txns: 50,
            endorsement_divergence: 0.0,
            ..FabricConfig::default()
        });
        seed_keys(&mut f, 5);
        // Everyone hammers the same key: only the first in each block commits.
        let receipts = drive_arrivals(
            &mut f,
            (0..30u64).map(|seq| {
                let arrival = seq * 500;
                (rmw(seq, "k0", 100, arrival), arrival)
            }),
        );
        let committed = receipts.iter().filter(|r| r.status.is_committed()).count();
        let aborted = receipts
            .iter()
            .filter(|r| {
                r.status == dichotomy_common::TxnStatus::Aborted(AbortReason::ReadWriteConflict)
            })
            .count();
        assert!(committed >= 1);
        assert!(aborted > 20, "aborted {aborted}");
        let (c, rw, _) = f.outcome_counts();
        assert_eq!(c as usize, committed);
        assert_eq!(rw as usize, aborted);
        // Invalid transactions are still recorded on the ledger.
        assert_eq!(f.ledger.txn_count(), 30);
        assert_eq!(f.ledger.valid_txn_count() as usize, committed);
    }

    #[test]
    fn query_path_is_dominated_by_authentication() {
        let mut f = Fabric::new(FabricConfig::default());
        seed_keys(&mut f, 10);
        let mut t = Transaction::new(
            TxnId::new(ClientId(2), 1),
            vec![Operation::read(Key::from_str("k1"))],
        );
        t.submit_time = 100;
        let receipts = drive_arrivals(&mut f, vec![(t, 100)]);
        let r = &receipts[0];
        let auth = r
            .phase_latencies
            .iter()
            .find(|(n, _)| *n == "authentication")
            .unwrap()
            .1;
        let total: u64 = r.phase_latencies.iter().map(|(_, v)| v).sum();
        assert!(auth as f64 / total as f64 > 0.7, "auth share too small");
        // Read latency in the single-digit millisecond range (Figure 5b).
        assert!(r.latency_us() > 3_000 && r.latency_us() < 30_000);
    }

    #[test]
    fn more_peers_mean_slower_validation() {
        let throughput = |peers: usize| {
            let mut f = Fabric::new(FabricConfig {
                peers,
                max_block_txns: 50,
                endorsement_divergence: 0.0,
                ..FabricConfig::default()
            });
            seed_keys(&mut f, 500);
            let n = 400u64;
            let receipts = drive_arrivals(
                &mut f,
                (0..n).map(|seq| {
                    let arrival = seq * 100;
                    (rmw(seq, &format!("k{}", seq % 500), 1000, arrival), arrival)
                }),
            );
            let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
            n as f64 / (last as f64 / 1e6)
        };
        let small = throughput(3);
        let large = throughput(19);
        assert!(
            small > large * 1.5,
            "3 peers {small:.0} tps vs 19 peers {large:.0} tps"
        );
    }

    #[test]
    fn saturation_inflates_the_validation_phase() {
        let mut f = Fabric::new(FabricConfig {
            max_block_txns: 50,
            endorsement_divergence: 0.0,
            ..FabricConfig::default()
        });
        seed_keys(&mut f, 2000);
        // Offer far more load than the serial validator can absorb.
        let n = 1500u64;
        let mut receipts = drive_arrivals(
            &mut f,
            (0..n).map(|seq| {
                let arrival = seq * 50;
                (
                    rmw(seq, &format!("k{}", seq % 2000), 1000, arrival),
                    arrival,
                )
            }),
        );
        receipts.sort_by_key(|r| r.submit_time);
        let validate_of = |r: &TxnReceipt| {
            r.phase_latencies
                .iter()
                .find(|(n, _)| *n == "validate")
                .unwrap()
                .1
        };
        let early: u64 = receipts[..50].iter().map(validate_of).sum::<u64>() / 50;
        let late: u64 = receipts[receipts.len() - 50..]
            .iter()
            .map(validate_of)
            .sum::<u64>()
            / 50;
        assert!(late > early * 3, "early {early} late {late}");
    }

    #[test]
    fn an_orderer_crash_stalls_ordering_until_heal_plus_failover() {
        use dichotomy_simnet::fault::NodeFault;
        let run = |faults: FaultPlan| {
            let mut f = Fabric::new(FabricConfig {
                max_block_txns: 5,
                endorsement_divergence: 0.0,
                faults,
                failover_us: 50_000,
                ..FabricConfig::default()
            });
            seed_keys(&mut f, 50);
            drive_arrivals(
                &mut f,
                (0..20u64).map(|seq| {
                    let arrival = seq * 2_000;
                    (rmw(seq, &format!("k{seq}"), 100, arrival), arrival)
                }),
            )
        };
        let healthy = run(FaultPlan::none());
        let mut faults = FaultPlan::none();
        // Crash the lead orderer across the middle of the run.
        faults.add(NodeFault::crash_until(NodeId(0), 10_000, 600_000));
        let crashed = run(faults);
        assert_eq!(crashed.len(), healthy.len());
        assert!(crashed.iter().all(|r| r.status.is_committed()));
        // Blocks cut inside the outage wait for heal + failover; nothing
        // orders inside the window.
        let healed = 600_000 + 50_000;
        for r in &crashed {
            assert!(
                r.finish_time < 10_000 || r.finish_time >= healed,
                "receipt finished inside the crash window: {}",
                r.finish_time
            );
        }
        let stalled = crashed.iter().filter(|r| r.finish_time >= healed).count();
        assert!(stalled >= 10, "only {stalled} receipts rode out the crash");
        // The healthy run is strictly faster overall.
        let max = |rs: &[TxnReceipt]| rs.iter().map(|r| r.finish_time).max().unwrap();
        assert!(max(&healthy) < max(&crashed));
    }

    #[test]
    fn a_permanent_orderer_outage_aborts_queued_batches_as_overload() {
        let mut faults = FaultPlan::none();
        faults.add(dichotomy_simnet::fault::NodeFault::crash(NodeId(0), 10_000));
        let mut f = Fabric::new(FabricConfig {
            max_block_txns: 5,
            endorsement_divergence: 0.0,
            faults,
            ..FabricConfig::default()
        });
        seed_keys(&mut f, 50);
        let receipts = drive_arrivals(
            &mut f,
            (0..20u64).map(|seq| {
                let arrival = seq * 2_000;
                (rmw(seq, &format!("k{seq}"), 100, arrival), arrival)
            }),
        );
        // Every transaction still gets a receipt (conservation), and
        // everything cut after the outage aborts with Overload.
        assert_eq!(receipts.len(), 20);
        let aborted = receipts
            .iter()
            .filter(|r| r.status == dichotomy_common::TxnStatus::Aborted(AbortReason::Overload))
            .count();
        assert!(aborted >= 10, "only {aborted} overload aborts");
    }
}
