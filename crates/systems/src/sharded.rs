//! The sharded systems of Figure 14: a Spanner-like NewSQL database
//! (Paxos-replicated shards, pessimistic wound-wait locking, trusted 2PC), a
//! sharded TiDB (sharding enabled, i.e. no full replication), and AHL — the
//! sharded permissioned blockchain (PBFT shards, trusted-hardware-reduced
//! shard size, BFT-replicated 2PC coordinator shard, periodic
//! reconfiguration).
//!
//! Event pipeline: conflict detection (lock acquisition or optimistic abort)
//! happens at arrival, and the surviving transaction's `Execute` stage event
//! carries it through the per-shard service processes, replication and 2PC,
//! emitting the receipt when the decision lands.

use std::collections::BTreeMap;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{AbortReason, Key, NodeId, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_merkle::MerkleBucketTree;
use dichotomy_sharding::{CoordinatorKind, Partitioner, ShardPlan, TwoPhaseCommit};
use dichotomy_simnet::fault::Reconfiguration;
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig, ProcessId, StageEvent};
use dichotomy_storage::{KvEngine, LsmTree, MvccStore};
use dichotomy_txn::locking::{LockManager, LockMode, LockOutcome};

use crate::pipeline::{
    Completion, Engine, ReceiptLog, SysEvent, SystemKind, TokenMap, TransactionalSystem,
};

/// Stage: a decided transaction's receipt surfaces to the client at its
/// commit time (token = in-flight id). Shared by all three sharded models.
const ST_COMMITTED: u32 = 0;

/// Configuration of the Spanner-like model.
#[derive(Debug, Clone)]
pub struct SpannerLikeConfig {
    /// Number of shards; each shard is a Paxos group of `nodes_per_shard`.
    pub shards: u32,
    /// Replicas per shard (3 in the Figure 14 setup).
    pub nodes_per_shard: usize,
    /// Lock wait time charged per conflicting older holder (pessimistic
    /// blocking, the contrast with TiDB's instant aborts), in µs.
    pub lock_wait_us: u64,
    /// Network and cost models.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
    /// Fault schedule. `NodeId(0)` addresses the 2PC coordinator role,
    /// `NodeId(1 + shard)` a shard's replication leader.
    pub faults: FaultPlan,
    /// Leader re-election pause after a crash heals (µs).
    pub failover_us: u64,
}

impl Default for SpannerLikeConfig {
    fn default() -> Self {
        SpannerLikeConfig {
            shards: 4,
            nodes_per_shard: 3,
            lock_wait_us: 8_000,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
            faults: FaultPlan::none(),
            failover_us: 10_000,
        }
    }
}

/// Shared plumbing of the sharded database models.
struct ShardedDb {
    partitioner: Partitioner,
    shards: u32,
    /// One serial apply/commit process per shard (the shard's Paxos/Raft
    /// leader pipeline), registered at attach time.
    shard_procs: Option<Vec<ProcessId>>,
    replication: ReplicationProfile,
    two_pc: TwoPhaseCommit,
    state: MvccStore,
    engine_db: LsmTree,
    receipts: ReceiptLog,
    /// Until when each key is held by an in-flight (not yet committed)
    /// transaction — the window in which a contending arrival either waits
    /// (pessimistic locking) or aborts (optimistic/TiDB).
    busy_until: BTreeMap<Key, Timestamp>,
    /// Receipts scheduled to surface at their finish time (token-keyed).
    finishing: TokenMap<TxnReceipt>,
    /// Fault schedule: `NodeId(0)` is the 2PC coordinator role,
    /// `NodeId(1 + shard)` a shard's replication leader.
    faults: FaultPlan,
    /// Leader re-election pause after a crash heals (µs).
    failover_us: u64,
    committed: u64,
    aborted: u64,
}

impl ShardedDb {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shards: u32,
        protocol: ProtocolKind,
        nodes_per_shard: usize,
        coordinator: CoordinatorKind,
        network: NetworkConfig,
        costs: CostModel,
        faults: FaultPlan,
        failover_us: u64,
    ) -> Self {
        ShardedDb {
            partitioner: Partitioner::hash(shards),
            shards: shards.max(1),
            shard_procs: None,
            replication: ReplicationProfile::new(
                protocol,
                nodes_per_shard,
                network.clone(),
                costs.clone(),
            ),
            two_pc: TwoPhaseCommit::new(coordinator, network, costs),
            state: MvccStore::new(),
            engine_db: LsmTree::new(),
            receipts: ReceiptLog::new(),
            busy_until: BTreeMap::new(),
            finishing: TokenMap::new(),
            faults,
            failover_us,
            committed: 0,
            aborted: 0,
        }
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.shard_procs = Some(
            (0..self.shards)
                .map(|_| engine.add_process("shard-pipe", 1))
                .collect(),
        );
    }

    fn shard_procs(&self) -> &[ProcessId] {
        self.shard_procs
            .as_deref()
            .expect("system not attached to an engine")
    }

    /// Park a decided receipt and schedule the `Committed` stage event that
    /// surfaces it at its finish time.
    fn schedule_receipt(&mut self, receipt: TxnReceipt, engine: &mut Engine) {
        let at = receipt.finish_time;
        let token = self.finishing.insert(receipt);
        engine.schedule_at(at, SysEvent::stage(ST_COMMITTED, token));
    }

    /// The `Committed` stage fired: hand the parked receipt to the client.
    fn surface_receipt(&mut self, token: u64) {
        let receipt = self.finishing.remove(token);
        self.receipts.push_back(receipt);
    }

    /// Latest time at which any of `keys` is still held by an in-flight
    /// transaction (0 if none).
    fn busy_window(&self, keys: &[&Key]) -> Timestamp {
        keys.iter()
            .filter_map(|k| self.busy_until.get(*k).copied())
            .max()
            .unwrap_or(0)
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        let version = self.state.begin_commit();
        for (k, v) in records {
            self.state.commit_write(k.clone(), version, Some(v.clone()));
            self.engine_db.put(k.clone(), v.clone());
        }
    }

    /// Per-shard work + cross-shard 2PC for a transaction whose per-shard
    /// processing cost is `shard_cost_us`. Returns the commit time, or
    /// `Err(finish)` when a permanent outage makes the decision unreachable
    /// (the caller emits an `Overload` abort at `finish`).
    fn replicate_and_commit(
        &mut self,
        txn: &Transaction,
        start: Timestamp,
        shard_cost_us: u64,
        engine: &mut Engine,
    ) -> Result<Timestamp, Timestamp> {
        let write_keys = txn.write_set();
        let shards = self.partitioner.shards_of(&write_keys);
        let mut slowest = start;
        let pipe_count = self.shard_procs().len();
        for shard in &shards {
            // The shard's replication leader must be up and reachable from
            // the coordinator before its prepare round can start.
            let shard_node = NodeId(1 + u64::from(shard.0));
            let shard_start = self
                .faults
                .release_at(shard_node, start, self.failover_us)
                .and_then(|t| self.faults.partition_release(NodeId(0), shard_node, t));
            let shard_start = match shard_start {
                Some(t) => t,
                None => return Err(start),
            };
            let pipe = self.shard_procs()[shard.0 as usize % pipe_count];
            let (_, done) = engine.service(pipe, shard_start, shard_cost_us);
            slowest = slowest.max(done);
        }
        let replication = self.replication.commit_latency_us(txn.payload_bytes() + 64);
        // The 2PC coordinator role itself may be down or partitioned away.
        let decide_input = match self
            .faults
            .primary_release(slowest + replication, self.failover_us)
        {
            Some(t) => t,
            None => return Err(slowest + replication),
        };
        let votes: Vec<_> = shards.iter().map(|&s| (s, true)).collect();
        let decided = self.two_pc.run(decide_input, &votes, txn.payload_bytes());
        // Apply the writes and mark the written keys busy until commit.
        let version = self.state.begin_commit();
        for op in txn.ops.iter().filter(|o| o.writes()) {
            let value = op.value.clone().unwrap_or_else(|| Value::filler(1));
            self.state
                .commit_write(op.key.clone(), version, Some(value.clone()));
            self.engine_db.put(op.key.clone(), value);
            self.busy_until.insert(op.key.clone(), decided.decided_at);
        }
        Ok(decided.decided_at)
    }
}

/// The Spanner-like model.
pub struct SpannerLike {
    config: SpannerLikeConfig,
    db: ShardedDb,
    locks: LockManager,
    next_ts: u64,
}

impl SpannerLike {
    /// Build a Spanner-like deployment.
    pub fn new(config: SpannerLikeConfig) -> Self {
        let db = ShardedDb::new(
            config.shards,
            ProtocolKind::Raft, // Paxos-class majority replication
            config.nodes_per_shard,
            CoordinatorKind::Trusted,
            config.network.clone(),
            config.costs.clone(),
            config.faults.clone(),
            config.failover_us,
        );
        SpannerLike {
            config,
            db,
            locks: LockManager::new(),
            next_ts: 1,
        }
    }

    /// (committed, aborted) counters.
    pub fn outcome_counts(&self) -> (u64, u64) {
        (self.db.committed, self.db.aborted)
    }
}

impl TransactionalSystem for SpannerLike {
    fn kind(&self) -> SystemKind {
        SystemKind::SpannerLike
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        self.db.load(records);
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.db.attach(engine);
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        let arrival = engine.now();
        let c = &self.config.costs;
        if txn.is_read_only() {
            let mut reads = Vec::new();
            let mut cost = 0;
            for op in txn.ops.iter().filter(|o| o.reads()) {
                let v = self.db.state.get_latest(&op.key);
                cost += c.storage_get_us(v.as_ref().map_or(64, Value::len));
                reads.push((op.key.clone(), v));
            }
            let finish = arrival + c.sql_frontend_us() + cost + self.config.network.base_latency_us;
            let mut r = TxnReceipt::committed(txn.id, arrival, finish);
            r.reads = reads;
            self.db.receipts.push_back(r);
            return;
        }
        // Acquire locks pessimistically: wait until every touched key's
        // in-flight holder commits (plus lock-manager round trips), then hold
        // the locks through commit. This waiting — instead of TiDB's instant
        // abort — is what Figure 14 penalizes under contention.
        self.next_ts += 1;
        self.locks.register(txn.id, self.next_ts);
        let touched: Vec<&Key> = txn.ops.iter().map(|o| &o.key).collect();
        let busy = self.db.busy_window(&touched);
        let mut wait_us = busy.saturating_sub(arrival);
        let mut wounded = false;
        for op in &txn.ops {
            let mode = if op.writes() {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            match self.locks.acquire(txn.id, &op.key, mode) {
                LockOutcome::Granted | LockOutcome::Wounded(_) => {}
                LockOutcome::Wait(holders) => {
                    wait_us += self.config.lock_wait_us * holders.len().max(1) as u64;
                }
            }
            if self.locks.is_wounded(txn.id) {
                wounded = true;
                break;
            }
        }
        if wounded {
            let _ = self.locks.finish(txn.id);
            self.db.aborted += 1;
            let finish =
                arrival + wait_us + c.sql_frontend_us() + self.config.network.base_latency_us;
            self.db.receipts.push_back(TxnReceipt::aborted(
                txn.id,
                AbortReason::LockConflict,
                arrival,
                finish,
            ));
            return;
        }
        // The lock decision is made; the hold window itself is modelled by
        // `busy_until` (set through commit), so the manager entry can go.
        let _ = self.locks.finish(txn.id);
        // Pessimistic locking reserves the keys *now*: book the shard work
        // and the 2PC decision eagerly so later arrivals see the hold window,
        // and surface the receipt through its `Execute→commit` stage event.
        let c = &self.config.costs;
        let per_shard = c.sql_frontend_us()
            + txn
                .ops
                .iter()
                .map(|op| {
                    if op.writes() {
                        c.storage_put_us(op.value.as_ref().map_or(0, Value::len))
                    } else {
                        c.storage_get_us(1000)
                    }
                })
                .sum::<u64>();
        let start = arrival + wait_us;
        let commit_at = match self.db.replicate_and_commit(&txn, start, per_shard, engine) {
            Ok(t) => t,
            Err(stalled_at) => {
                self.db.aborted += 1;
                let finish = stalled_at + self.config.network.base_latency_us;
                self.db.receipts.push_back(TxnReceipt::aborted(
                    txn.id,
                    AbortReason::Overload,
                    arrival,
                    finish,
                ));
                return;
            }
        };
        self.db.committed += 1;
        let finish = commit_at + self.config.network.base_latency_us;
        let mut r = TxnReceipt::committed(txn.id, arrival, finish);
        r.phase_latencies = vec![
            ("locking", wait_us),
            ("commit", commit_at.saturating_sub(start)),
        ];
        self.db.schedule_receipt(r, engine);
    }

    fn on_stage(&mut self, event: StageEvent, _engine: &mut Engine) {
        debug_assert_eq!(event.stage, ST_COMMITTED);
        self.db.surface_receipt(event.token);
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.db.receipts.drain()
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.db.receipts.take_completions()
    }

    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.db.receipts.swap_completions(buf)
    }

    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.db.receipts.swap_receipts(buf)
    }

    fn footprint(&self) -> StorageBreakdown {
        self.db.engine_db.footprint()
    }

    fn node_count(&self) -> usize {
        (self.config.shards as usize) * self.config.nodes_per_shard
    }
}

/// Sharded TiDB for Figure 14: identical to the full-replication model in
/// spirit, but each shard is its own 3-node Raft group and cross-shard
/// transactions pay trusted 2PC; conflicts abort immediately (optimistic).
pub struct ShardedTiDb {
    db: ShardedDb,
    costs: CostModel,
    network: NetworkConfig,
}

impl ShardedTiDb {
    /// Build a sharded TiDB with `shards` regions of 3 nodes each.
    pub fn new(shards: u32, network: NetworkConfig, costs: CostModel) -> Self {
        ShardedTiDb::with_faults(shards, network, costs, FaultPlan::none(), 10_000)
    }

    /// Build a sharded TiDB with a fault schedule (`NodeId(0)` = 2PC
    /// coordinator, `NodeId(1 + shard)` = a region's Raft leader).
    pub fn with_faults(
        shards: u32,
        network: NetworkConfig,
        costs: CostModel,
        faults: FaultPlan,
        failover_us: u64,
    ) -> Self {
        ShardedTiDb {
            db: ShardedDb::new(
                shards,
                ProtocolKind::Raft,
                3,
                CoordinatorKind::Trusted,
                network.clone(),
                costs.clone(),
                faults,
                failover_us,
            ),
            costs,
            network,
        }
    }

    /// (committed, aborted) counters.
    pub fn outcome_counts(&self) -> (u64, u64) {
        (self.db.committed, self.db.aborted)
    }
}

impl TransactionalSystem for ShardedTiDb {
    fn kind(&self) -> SystemKind {
        SystemKind::TiDb
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        self.db.load(records);
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.db.attach(engine);
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        let arrival = engine.now();
        let c = &self.costs;
        // Optimistic conflict handling: if any written key is still held by
        // an in-flight transaction, abort immediately (TiDB "instantly aborts
        // a transaction once detecting a conflict", Section 5.5) instead of
        // waiting for the lock to clear.
        let write_keys = txn.write_set();
        let conflict = self.db.busy_window(&write_keys) > arrival;
        if conflict {
            self.db.aborted += 1;
            let finish = arrival + c.sql_frontend_us() + self.network.base_latency_us;
            self.db.receipts.push_back(TxnReceipt::aborted(
                txn.id,
                AbortReason::WriteWriteConflict,
                arrival,
                finish,
            ));
            return;
        }
        let per_shard = c.sql_frontend_us()
            + txn
                .ops
                .iter()
                .map(|op| {
                    if op.writes() {
                        2 * c.storage_put_us(op.value.as_ref().map_or(0, Value::len))
                    } else {
                        c.storage_get_us(1000)
                    }
                })
                .sum::<u64>();
        let commit_at = match self
            .db
            .replicate_and_commit(&txn, arrival, per_shard, engine)
        {
            Ok(t) => t,
            Err(stalled_at) => {
                self.db.aborted += 1;
                let finish = stalled_at + self.network.base_latency_us;
                self.db.receipts.push_back(TxnReceipt::aborted(
                    txn.id,
                    AbortReason::Overload,
                    arrival,
                    finish,
                ));
                return;
            }
        };
        self.db.committed += 1;
        let receipt =
            TxnReceipt::committed(txn.id, arrival, commit_at + self.network.base_latency_us);
        self.db.schedule_receipt(receipt, engine);
    }

    fn on_stage(&mut self, event: StageEvent, _engine: &mut Engine) {
        debug_assert_eq!(event.stage, ST_COMMITTED);
        self.db.surface_receipt(event.token);
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.db.receipts.drain()
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.db.receipts.take_completions()
    }

    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.db.receipts.swap_completions(buf)
    }

    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.db.receipts.swap_receipts(buf)
    }

    fn footprint(&self) -> StorageBreakdown {
        self.db.engine_db.footprint()
    }

    fn node_count(&self) -> usize {
        self.db.shards as usize * 3
    }
}

/// Configuration of the AHL (Attested HyperLedger) model.
#[derive(Debug, Clone)]
pub struct AhlConfig {
    /// Number of shards.
    pub shards: u32,
    /// Nodes per shard (trusted hardware lets AHL keep this small — 3 in the
    /// Figure 14 setup).
    pub nodes_per_shard: usize,
    /// Whether shards are periodically re-formed (the security/performance
    /// trade-off the paper quantifies at ≈30 %).
    pub periodic_reconfiguration: bool,
    /// Epoch length between reconfigurations (µs).
    pub epoch_us: u64,
    /// Pause caused by one reconfiguration (state hand-off, re-attestation).
    pub reconfig_pause_us: u64,
    /// Network and cost models.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
    /// Fault schedule. Beyond the crash/partition/failover algebra shared
    /// with the other sharded models, AHL also consumes declarative
    /// [`Reconfiguration`] events: each pauses every shard pipeline for its
    /// `pause_us` at its scheduled time, and `churn` additionally bumps the
    /// epoch so the secure-random shard formation reshuffles.
    pub faults: FaultPlan,
    /// Leader re-election pause after a crash heals (µs).
    pub failover_us: u64,
}

impl Default for AhlConfig {
    fn default() -> Self {
        AhlConfig {
            shards: 4,
            nodes_per_shard: 3,
            periodic_reconfiguration: true,
            epoch_us: 10_000_000,
            reconfig_pause_us: 3_000_000,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
            faults: FaultPlan::none(),
            failover_us: 10_000,
        }
    }
}

/// The AHL sharded-blockchain model.
pub struct Ahl {
    config: AhlConfig,
    db: ShardedDb,
    /// Authenticated state index (Fabric v0.6 heritage: Merkle Bucket Tree).
    mbt: MerkleBucketTree,
    /// Time already swallowed by reconfiguration pauses.
    next_reconfig_at: Timestamp,
    /// Declarative reconfiguration events from the fault plan, sorted by
    /// time; `next_declared` indexes the first not yet applied.
    declared_reconfigs: Vec<Reconfiguration>,
    next_declared: usize,
    epoch: u64,
}

impl Ahl {
    /// Build an AHL deployment.
    pub fn new(config: AhlConfig) -> Self {
        let db = ShardedDb::new(
            config.shards,
            ProtocolKind::Pbft,
            config.nodes_per_shard,
            CoordinatorKind::Replicated {
                protocol: ProtocolKind::Pbft,
                n: config.nodes_per_shard,
            },
            config.network.clone(),
            config.costs.clone(),
            config.faults.clone(),
            config.failover_us,
        );
        let mut declared_reconfigs = config.faults.reconfigurations().to_vec();
        declared_reconfigs.sort_by_key(|r| r.at);
        Ahl {
            mbt: MerkleBucketTree::fabric_default(),
            next_reconfig_at: config.epoch_us,
            declared_reconfigs,
            next_declared: 0,
            epoch: 0,
            db,
            config,
        }
    }

    /// (committed, aborted) counters.
    pub fn outcome_counts(&self) -> (u64, u64) {
        (self.db.committed, self.db.aborted)
    }

    /// The node-to-shard plan of the current epoch (secure random formation).
    pub fn shard_plan(&self) -> ShardPlan {
        let nodes: Vec<_> = (0..(self.config.shards as u64 * self.config.nodes_per_shard as u64))
            .map(dichotomy_common::NodeId)
            .collect();
        ShardPlan::form(
            &nodes,
            self.config.nodes_per_shard,
            dichotomy_sharding::ShardFormation::SecureRandom {
                epoch_us: self.config.epoch_us,
            },
            self.epoch,
            7,
        )
    }

    /// If a reconfiguration epoch boundary falls before `arrival`, stall every
    /// shard pipeline for the pause (state hand-off and re-attestation block
    /// transaction processing) and advance the epoch. Returns the total pause
    /// charged, for the receipt's phase breakdown.
    fn reconfiguration_delay(&mut self, arrival: Timestamp, engine: &mut Engine) -> u64 {
        let mut paused = 0;
        // Declarative reconfiguration events from the fault plan apply even
        // when periodic reconfiguration is off: each pauses every shard
        // pipeline at its scheduled time, and churn reshuffles membership.
        while let Some(r) = self.declared_reconfigs.get(self.next_declared).copied() {
            if arrival < r.at {
                break;
            }
            for pipe in self.db.shard_procs().to_vec() {
                engine.service(pipe, r.at, r.pause_us);
            }
            paused += r.pause_us;
            if r.churn {
                self.epoch += 1;
            }
            self.next_declared += 1;
        }
        if !self.config.periodic_reconfiguration {
            return paused;
        }
        while arrival >= self.next_reconfig_at {
            let boundary = self.next_reconfig_at;
            for pipe in self.db.shard_procs().to_vec() {
                engine.service(pipe, boundary, self.config.reconfig_pause_us);
            }
            paused += self.config.reconfig_pause_us;
            self.next_reconfig_at += self.config.epoch_us;
            self.epoch += 1;
        }
        paused
    }
}

impl TransactionalSystem for Ahl {
    fn kind(&self) -> SystemKind {
        SystemKind::Ahl
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        self.db.load(records);
        for (k, v) in records {
            self.mbt.put(k, v);
        }
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.db.attach(engine);
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        let arrival = engine.now();
        let c = self.config.costs.clone();
        let reconfig = self.reconfiguration_delay(arrival, engine);
        if txn.is_read_only() {
            let mut reads = Vec::new();
            let mut cost = c.client_auth();
            for op in txn.ops.iter().filter(|o| o.reads()) {
                let v = self.db.state.get_latest(&op.key);
                cost += c.storage_get_us(v.as_ref().map_or(64, Value::len));
                reads.push((op.key.clone(), v));
            }
            let mut r = TxnReceipt::committed(txn.id, arrival, arrival + cost);
            r.reads = reads;
            self.db.receipts.push_back(r);
            return;
        }
        // Per-shard blockchain work: client auth, chaincode execution, MBT
        // update and endorsement verification, all serial within the shard.
        let mut per_shard = c.client_auth()
            + c.chaincode_exec_us(txn.op_count(), txn.payload_bytes())
            + c.verify_signatures_us(self.config.nodes_per_shard);
        for op in txn.ops.iter().filter(|o| o.writes()) {
            let value = op.value.clone().unwrap_or_else(|| Value::filler(1));
            let stats = self.mbt.put(&op.key, &value);
            per_shard += c.adr_update_us(stats.nodes_touched, stats.leaf_bytes);
            per_shard += c.storage_put_us(value.len());
        }
        let commit_at = match self
            .db
            .replicate_and_commit(&txn, arrival, per_shard, engine)
        {
            Ok(t) => t,
            Err(stalled_at) => {
                self.db.aborted += 1;
                let finish = stalled_at + self.config.network.base_latency_us;
                self.db.receipts.push_back(TxnReceipt::aborted(
                    txn.id,
                    AbortReason::Overload,
                    arrival,
                    finish,
                ));
                return;
            }
        };
        self.db.committed += 1;
        let mut r = TxnReceipt::committed(
            txn.id,
            arrival,
            commit_at + self.config.network.base_latency_us,
        );
        r.phase_latencies = vec![
            ("reconfiguration", reconfig),
            ("shard-consensus", commit_at.saturating_sub(arrival)),
        ];
        self.db.schedule_receipt(r, engine);
    }

    fn on_stage(&mut self, event: StageEvent, _engine: &mut Engine) {
        debug_assert_eq!(event.stage, ST_COMMITTED);
        self.db.surface_receipt(event.token);
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.db.receipts.drain()
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.db.receipts.take_completions()
    }

    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.db.receipts.swap_completions(buf)
    }

    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.db.receipts.swap_receipts(buf)
    }

    fn footprint(&self) -> StorageBreakdown {
        self.db.engine_db.footprint().merged(&self.mbt.footprint())
    }

    fn node_count(&self) -> usize {
        self.config.shards as usize * self.config.nodes_per_shard + self.config.nodes_per_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::drive_arrivals;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn two_key_txn(seq: u64, a: &str, b: &str) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(seq % 8), seq),
            vec![
                Operation::read_modify_write(Key::from_str(a), Value::filler(1000)),
                Operation::read_modify_write(Key::from_str(b), Value::filler(1000)),
            ],
        )
    }

    fn records(n: usize) -> Vec<(Key, Value)> {
        (0..n)
            .map(|i| (Key::from_str(&format!("k{i:06}")), Value::filler(1000)))
            .collect()
    }

    /// Skewed two-record transactions (the Figure 14 workload shape): keys
    /// drawn from a small hot set so in-flight transactions collide.
    fn throughput_skewed(sys: &mut dyn TransactionalSystem, n: u64, gap_us: u64, hot: u64) -> f64 {
        let arrivals: Vec<_> = (0..n)
            .map(|seq| {
                let a = format!("k{:06}", seq % hot);
                let b = format!("k{:06}", (seq * 7 + 13) % hot);
                (two_key_txn(seq, &a, &b), seq * gap_us)
            })
            .collect();
        let receipts = drive_arrivals(sys, arrivals);
        let committed = receipts.iter().filter(|r| r.status.is_committed()).count();
        let last = receipts.iter().map(|r| r.finish_time).max().unwrap_or(1);
        committed as f64 / (last as f64 / 1e6)
    }

    #[test]
    fn sharded_tidb_beats_spanner_beats_ahl() {
        let mut tidb = ShardedTiDb::new(4, NetworkConfig::lan_1gbps(), CostModel::calibrated());
        let mut spanner = SpannerLike::new(SpannerLikeConfig::default());
        let mut ahl = Ahl::new(AhlConfig::default());
        tidb.load(&records(1000));
        spanner.load(&records(1000));
        ahl.load(&records(1000));
        let t_tidb = throughput_skewed(&mut tidb, 400, 100, 20);
        let t_spanner = throughput_skewed(&mut spanner, 400, 100, 20);
        let t_ahl = throughput_skewed(&mut ahl, 400, 100, 20);
        assert!(
            t_tidb > t_spanner,
            "TiDB {t_tidb:.0} should beat Spanner {t_spanner:.0}"
        );
        assert!(
            t_spanner > t_ahl,
            "Spanner {t_spanner:.0} should beat AHL {t_ahl:.0}"
        );
    }

    #[test]
    fn ahl_reconfiguration_costs_throughput() {
        // Short epochs so the 200-transaction run spans several
        // reconfigurations.
        let fast_epochs = AhlConfig {
            epoch_us: 100_000,
            reconfig_pause_us: 30_000,
            ..AhlConfig::default()
        };
        let mut with = Ahl::new(fast_epochs.clone());
        let mut without = Ahl::new(AhlConfig {
            periodic_reconfiguration: false,
            ..fast_epochs
        });
        with.load(&records(500));
        without.load(&records(500));
        let t_with = throughput_skewed(&mut with, 200, 2_000, 500);
        let t_without = throughput_skewed(&mut without, 200, 2_000, 500);
        assert!(
            t_without > t_with * 1.1,
            "fixed {t_without:.0} vs reconfig {t_with:.0}"
        );
    }

    #[test]
    fn more_shards_scale_the_databases() {
        let t = |shards: u32| {
            let mut s =
                ShardedTiDb::new(shards, NetworkConfig::lan_1gbps(), CostModel::calibrated());
            s.load(&records(1000));
            throughput_skewed(&mut s, 600, 50, 900)
        };
        let small = t(1);
        let large = t(16);
        assert!(
            large > small * 1.5,
            "1 shard {small:.0} vs 16 shards {large:.0}"
        );
    }

    #[test]
    fn spanner_lock_waits_show_up_in_latency() {
        let mut s = SpannerLike::new(SpannerLikeConfig::default());
        s.load(&records(10));
        // Two transactions contending on the same key: the second waits.
        let receipts = drive_arrivals(
            &mut s,
            vec![
                (two_key_txn(1, "k000001", "k000002"), 0),
                (two_key_txn(2, "k000001", "k000002"), 10),
            ],
        );
        assert_eq!(receipts.len(), 2);
        let second = receipts
            .iter()
            .find(|r| r.txn_id.seq == 2)
            .expect("second receipt");
        let lock_wait = second
            .phase_latencies
            .iter()
            .find(|(n, _)| *n == "locking")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        let committed = receipts.iter().filter(|r| r.status.is_committed()).count();
        assert!(committed >= 1);
        // Either the second waited, or it was wounded and aborted.
        assert!(
            lock_wait > 0 || committed == 1,
            "wait {lock_wait} committed {committed}"
        );
    }

    #[test]
    fn a_shard_leader_crash_stalls_transactions_touching_that_shard() {
        use dichotomy_simnet::fault::NodeFault;
        // Find two single-key transactions landing on different shards.
        let p = Partitioner::hash(4);
        let key_a = Key::from_str("k000000");
        let shard_a = p.shard_of(&key_a);
        let key_b = (1..100)
            .map(|i| Key::from_str(&format!("k{i:06}")))
            .find(|k| p.shard_of(k) != shard_a)
            .unwrap();
        let mut faults = FaultPlan::none();
        faults.add(NodeFault::crash_until(
            NodeId(1 + u64::from(shard_a.0)),
            0,
            400_000,
        ));
        let mut s = ShardedTiDb::with_faults(
            4,
            NetworkConfig::lan_1gbps(),
            CostModel::calibrated(),
            faults,
            10_000,
        );
        s.load(&[
            (key_a.clone(), Value::filler(1000)),
            (key_b.clone(), Value::filler(1000)),
        ]);
        let txn = |seq: u64, key: &Key| {
            Transaction::new(
                TxnId::new(ClientId(seq), seq),
                vec![Operation::read_modify_write(
                    key.clone(),
                    Value::filler(100),
                )],
            )
        };
        let receipts = drive_arrivals(
            &mut s,
            vec![(txn(1, &key_a), 1_000), (txn(2, &key_b), 1_000)],
        );
        let on_a = receipts.iter().find(|r| r.txn_id.seq == 1).unwrap();
        let on_b = receipts.iter().find(|r| r.txn_id.seq == 2).unwrap();
        assert!(on_a.status.is_committed() && on_b.status.is_committed());
        assert!(on_a.finish_time >= 410_000, "crashed shard did not stall");
        assert!(on_b.finish_time < 100_000, "healthy shard was stalled");
    }

    #[test]
    fn a_coordinator_partition_stalls_cross_shard_commits_until_it_heals() {
        let mut faults = FaultPlan::none();
        // The 2PC coordinator role is cut off from everything until 300 ms.
        faults.add_partition(vec![NodeId(0)], 0, Some(300_000));
        let mut s = SpannerLike::new(SpannerLikeConfig {
            faults,
            ..SpannerLikeConfig::default()
        });
        s.load(&records(10));
        let receipts = drive_arrivals(&mut s, vec![(two_key_txn(1, "k000001", "k000002"), 1_000)]);
        assert_eq!(receipts.len(), 1);
        assert!(receipts[0].status.is_committed());
        assert!(
            receipts[0].finish_time >= 300_000,
            "commit decided inside the partition: {}",
            receipts[0].finish_time
        );
    }

    #[test]
    fn a_permanent_coordinator_outage_aborts_writes_as_overload() {
        let mut faults = FaultPlan::none();
        faults.add_partition(vec![NodeId(0)], 0, None);
        let mut s = SpannerLike::new(SpannerLikeConfig {
            faults,
            ..SpannerLikeConfig::default()
        });
        s.load(&records(10));
        let receipts = drive_arrivals(&mut s, vec![(two_key_txn(1, "k000001", "k000002"), 1_000)]);
        assert_eq!(receipts.len(), 1);
        assert_eq!(
            receipts[0].status,
            dichotomy_common::TxnStatus::Aborted(AbortReason::Overload)
        );
    }

    #[test]
    fn a_declarative_reconfiguration_pauses_shards_and_churn_reshuffles() {
        let mut faults = FaultPlan::none();
        faults.add_reconfiguration(50_000, 100_000, true);
        let mut ahl = Ahl::new(AhlConfig {
            periodic_reconfiguration: false,
            faults,
            ..AhlConfig::default()
        });
        ahl.load(&records(100));
        let plan0 = ahl.shard_plan();
        let receipts = drive_arrivals(
            &mut ahl,
            vec![
                (two_key_txn(1, "k000001", "k000002"), 1_000),
                (two_key_txn(2, "k000003", "k000004"), 60_000),
            ],
        );
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        let early = receipts.iter().find(|r| r.txn_id.seq == 1).unwrap();
        let late = receipts.iter().find(|r| r.txn_id.seq == 2).unwrap();
        // The event pauses every shard pipe for 100 ms at t=50 ms: the
        // transaction arriving after it queues behind the pause.
        assert!(early.finish_time < 50_000);
        assert!(
            late.finish_time >= 150_000,
            "reconfiguration pause not felt: {}",
            late.finish_time
        );
        // Churn reshuffled the secure-random shard formation.
        assert_ne!(plan0.assignment, ahl.shard_plan().assignment);
    }

    #[test]
    fn ahl_shard_plan_reshuffles_each_epoch() {
        let mut ahl = Ahl::new(AhlConfig::default());
        ahl.load(&records(10));
        let plan0 = ahl.shard_plan();
        // Force time past one epoch.
        let _ = drive_arrivals(
            &mut ahl,
            vec![(two_key_txn(1, "k000001", "k000002"), 11_000_000)],
        );
        let plan1 = ahl.shard_plan();
        assert_ne!(plan0.assignment, plan1.assignment);
        assert_eq!(plan0.shard_count(), 4);
    }
}
