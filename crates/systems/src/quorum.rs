//! The Quorum model: an **order-execute** permissioned blockchain
//! (Section 4.1, Figure 3a).
//!
//! Write path: the proposer pre-executes pending transactions serially
//! against the tip of the ledger (EVM execution + Merkle Patricia Trie
//! update), batches them into a block, runs consensus (Raft or IBFT), and
//! then *every* node re-executes the block serially to validate and commit —
//! the "double execution" the paper blames for Quorum's sensitivity to record
//! size (Section 5.3.3). Read path: any node answers locally (EVM call +
//! state read), with no consensus and no client-authentication overhead
//! beyond signature checking.
//!
//! Event pipeline: arrivals fill the block cutter (a timer event cuts a
//! partially filled block at the minting interval), and each cut block walks
//! `Propose → Consensus → Commit` stage events across the proposer,
//! consensus and committer processes — so block backlog queues up on the
//! engine instead of being folded into a synchronous submit call.

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, NodeId, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_ledger::Ledger;
use dichotomy_merkle::MerklePatriciaTrie;
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig, ProcessId, StageEvent};
use dichotomy_storage::{KvEngine, LsmTree};

use crate::pipeline::{
    Completion, Engine, ReceiptLog, SysEvent, SystemKind, TimedCutter, TokenMap,
    TransactionalSystem,
};

/// Configuration of a Quorum deployment.
#[derive(Debug, Clone)]
pub struct QuorumConfig {
    /// Number of validator nodes (all participate in consensus).
    pub nodes: usize,
    /// Consensus protocol: Raft (CFT) or IBFT (BFT) — Section 5.2.3.
    pub consensus: ProtocolKind,
    /// Maximum transactions per block.
    pub max_block_txns: usize,
    /// Block minting period (µs): a partially filled block is cut after this.
    pub block_interval_us: u64,
    /// Extra state-commit amplification: geth updates the account trie, the
    /// per-contract storage tries and the receipt trie per transaction, so
    /// the MPT work measured for a single key update is paid roughly twice.
    pub commit_amplification: f64,
    /// Network model.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
    /// Fault schedule. `NodeId(0)` addresses the consensus leader (the block
    /// proposer): crash/failover windows stall block proposal, so cut blocks
    /// queue and the post-heal recovery burst emerges from that backlog.
    pub faults: FaultPlan,
    /// Leader re-election pause after a crash heals (µs).
    pub failover_us: u64,
    /// RNG seed (reserved for future stochastic extensions).
    pub seed: u64,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            nodes: 5,
            consensus: ProtocolKind::Raft,
            max_block_txns: 200,
            block_interval_us: 250_000,
            commit_amplification: 2.0,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
            faults: FaultPlan::none(),
            failover_us: 10_000,
            seed: dichotomy_common::rng::DEFAULT_SEED,
        }
    }
}

/// Stage: the block-interval timer for the open block (token = epoch).
const ST_CUT_TIMER: u32 = 0;
/// Stage: the proposer starts pre-executing a cut block (token = block id).
const ST_PROPOSE: u32 = 1;
/// Stage: the block enters consensus (token = block id).
const ST_CONSENSUS: u32 = 2;
/// Stage: validators re-execute and commit the block (token = block id).
const ST_COMMIT: u32 = 3;

/// A block in flight between its `Propose` and `Commit` stages.
struct BlockInFlight {
    batch: Vec<(Transaction, Timestamp)>,
    cut_time: Timestamp,
    proposal_done: Timestamp,
    consensus_done: Timestamp,
}

/// Engine process handles, created at attach time.
#[derive(Clone, Copy)]
struct QuorumProcs {
    /// The proposer's serial pre-execution engine.
    proposer: ProcessId,
    /// The consensus leader's dissemination pipe.
    consensus: ProcessId,
    /// A representative validator's serial commit engine.
    committer: ProcessId,
}

/// The Quorum system model.
pub struct Quorum {
    config: QuorumConfig,
    profile: ReplicationProfile,
    cutter: TimedCutter,
    procs: Option<QuorumProcs>,
    /// Blocks between cut and commit, by block id (= cut order).
    in_flight: TokenMap<BlockInFlight>,
    /// Latest scheduled `Commit` stage time: commits are clamped to be
    /// non-decreasing in block order, so a small block whose consensus
    /// round finishes early can never overtake an earlier, larger block
    /// (the chain applies blocks in consensus order).
    commit_sched_at: Timestamp,
    /// Authenticated world state.
    state_trie: MerklePatriciaTrie,
    /// State storage engine (LevelDB role).
    state_db: LsmTree,
    /// The chain.
    ledger: Ledger,
    receipts: ReceiptLog,
}

impl Quorum {
    /// Build a Quorum deployment.
    pub fn new(config: QuorumConfig) -> Self {
        let profile = ReplicationProfile::new(
            config.consensus,
            config.nodes,
            config.network.clone(),
            config.costs.clone(),
        );
        Quorum {
            cutter: TimedCutter::new(
                config.max_block_txns,
                config.block_interval_us,
                ST_CUT_TIMER,
            ),
            profile,
            procs: None,
            in_flight: TokenMap::new(),
            commit_sched_at: 0,
            state_trie: MerklePatriciaTrie::new(),
            state_db: LsmTree::new(),
            ledger: Ledger::new(NodeId(0)),
            receipts: ReceiptLog::new(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &QuorumConfig {
        &self.config
    }

    fn procs(&self) -> QuorumProcs {
        self.procs.expect("system not attached to an engine")
    }

    /// Serial CPU cost of executing one transaction and committing its writes
    /// into the EVM state (used for both pre-execution and validation).
    fn execution_cost_us(&mut self, txn: &Transaction, apply: bool) -> u64 {
        let c = &self.config.costs;
        let mut cost = c.evm_exec_us(txn.payload_bytes());
        for op in &txn.ops {
            if op.reads() {
                cost += c.storage_get_us(op.value.as_ref().map_or(64, Value::len));
            }
            if op.writes() {
                let value = op.value.clone().unwrap_or_else(|| Value::filler(1));
                let stats = if apply {
                    self.state_trie.insert(&op.key, &value)
                } else {
                    // Cost-only estimate for the pre-execution pass: same path
                    // length as an applied update would have.
                    dichotomy_merkle::UpdateStats {
                        nodes_touched: 9,
                        leaf_bytes: value.len(),
                    }
                };
                if apply {
                    self.state_db.put(op.key.clone(), value);
                }
                cost += (c.adr_update_us(stats.nodes_touched, stats.leaf_bytes) as f64
                    * self.config.commit_amplification) as u64;
                cost += c.storage_put_us(stats.leaf_bytes);
            }
        }
        cost
    }

    /// A block was cut: register it and schedule its `Propose` stage.
    fn launch_block(
        &mut self,
        batch: Vec<(Transaction, Timestamp)>,
        cut_time: Timestamp,
        engine: &mut Engine,
    ) {
        if batch.is_empty() {
            return;
        }
        // The consensus leader may be crashed, failing over, or partitioned
        // away: proposal waits until the role is back and reachable.
        let cut_time = match self
            .config
            .faults
            .primary_release(cut_time, self.config.failover_us)
        {
            Some(t) => t,
            None => {
                // No leader ever again: the batch times out at the clients.
                use dichotomy_common::{AbortReason, TxnReceipt};
                for (txn, arrival) in &batch {
                    let finish = cut_time + 2 * self.config.network.base_latency_us;
                    self.receipts.push_back(TxnReceipt::aborted(
                        txn.id,
                        AbortReason::Overload,
                        *arrival,
                        finish,
                    ));
                }
                return;
            }
        };
        let id = self.in_flight.insert(BlockInFlight {
            batch,
            cut_time,
            proposal_done: 0,
            consensus_done: 0,
        });
        engine.schedule_at(cut_time, SysEvent::stage(ST_PROPOSE, id));
    }

    fn serve_read(&mut self, txn: &Transaction, arrival: Timestamp) {
        let c = &self.config.costs;
        let mut cost = c.verify_signatures_us(1) + c.evm_exec_us(128);
        let mut reads = Vec::new();
        for op in txn.ops.iter().filter(|o| o.reads()) {
            let value = self.state_db.get(&op.key);
            cost += c.storage_get_us(value.as_ref().map_or(64, Value::len));
            reads.push((op.key.clone(), value));
        }
        let finish = arrival + cost;
        let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
        receipt.reads = reads;
        receipt.phase_latencies = vec![("query", cost)];
        self.receipts.push_back(receipt);
    }
}

impl TransactionalSystem for Quorum {
    fn kind(&self) -> SystemKind {
        SystemKind::Quorum
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        for (k, v) in records {
            self.state_trie.insert(k, v);
            self.state_db.put(k.clone(), v.clone());
        }
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.procs = Some(QuorumProcs {
            proposer: engine.add_process("quorum-proposer", 1),
            consensus: engine.add_process("quorum-consensus", 1),
            committer: engine.add_process("quorum-committer", 1),
        });
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        let arrival = engine.now();
        if txn.is_read_only() {
            self.serve_read(&txn, arrival);
            return;
        }
        if let Some((batch, cut_time)) = self.cutter.add(txn, arrival, engine) {
            self.launch_block(batch, cut_time, engine);
        }
    }

    fn on_stage(&mut self, event: StageEvent, engine: &mut Engine) {
        match event.stage {
            ST_CUT_TIMER => {
                if let Some((batch, cut_time)) = self.cutter.on_timer(event.token, engine.now()) {
                    self.launch_block(batch, cut_time, engine);
                }
            }
            ST_PROPOSE => {
                let id = event.token;
                let mut block = self.in_flight.remove(id);
                // Phase 1: proposer pre-executes serially (order-execute).
                let mut proposal_cost = 0u64;
                for (txn, _) in &block.batch {
                    proposal_cost += self.config.costs.verify_signatures_us(1);
                    proposal_cost += self.execution_cost_us(txn, false);
                }
                let (_, proposal_done) =
                    engine.service(self.procs().proposer, block.cut_time, proposal_cost);
                block.proposal_done = proposal_done;
                self.in_flight.restore(id, block);
                engine.schedule_at(proposal_done, SysEvent::stage(ST_CONSENSUS, id));
            }
            ST_CONSENSUS => {
                let id = event.token;
                let block = self.in_flight.get_mut(id);
                // Phase 2: consensus over the serialized block.
                let block_bytes: usize = block
                    .batch
                    .iter()
                    .map(|(t, _)| t.wire_bytes())
                    .sum::<usize>()
                    + 160;
                let occupancy = self.profile.leader_occupancy_us(block_bytes);
                let now = engine.now();
                let (_, dissemination_done) =
                    engine.service(self.procs().consensus, now, occupancy);
                let consensus_done =
                    dissemination_done + self.profile.commit_latency_us(block_bytes);
                self.in_flight.get_mut(id).consensus_done = consensus_done;
                // Blocks apply in consensus order: a later block whose
                // (size-dependent) commit latency ends earlier must not
                // overtake an earlier block, so the Commit stage time is
                // clamped to be non-decreasing in block order (ties break by
                // insertion order, which follows block order).
                let commit_at = consensus_done.max(self.commit_sched_at);
                self.commit_sched_at = commit_at;
                engine.schedule_at(commit_at, SysEvent::stage(ST_COMMIT, id));
            }
            ST_COMMIT => {
                let block = self.in_flight.remove(event.token);
                // Phase 3: every validator re-executes serially and commits.
                let mut commit_cost = self.config.costs.block_header_check();
                for (txn, _) in &block.batch {
                    commit_cost += self.execution_cost_us(txn, true);
                }
                let (_, commit_done) =
                    engine.service(self.procs().committer, block.consensus_done, commit_cost);

                // Ledger append with the new state root; keep (id, arrival)
                // for the receipts before the transactions move into it.
                let ids: Vec<(dichotomy_common::TxnId, Timestamp)> =
                    block.batch.iter().map(|(t, a)| (t.id, *a)).collect();
                let txns: Vec<Transaction> = block.batch.into_iter().map(|(t, _)| t).collect();
                let root = self.state_trie.root_hash();
                self.ledger
                    .append_txns(txns, NodeId(0), commit_done, Some(root))
                    .expect("chain grows monotonically");

                // Receipts: block-granular completion, per-txn phase breakdown.
                for (txn_id, arrival) in ids {
                    let mut receipt = TxnReceipt::committed(txn_id, arrival, commit_done);
                    receipt.phase_latencies = vec![
                        ("proposal", block.proposal_done.saturating_sub(arrival)),
                        (
                            "consensus",
                            block.consensus_done.saturating_sub(block.proposal_done),
                        ),
                        ("commit", commit_done.saturating_sub(block.consensus_done)),
                    ];
                    receipt.commit_version = Some(self.ledger.tip_height());
                    self.receipts.push_back(receipt);
                }
            }
            _ => unreachable!("unknown Quorum stage {}", event.stage),
        }
    }

    fn on_drain(&mut self, engine: &mut Engine) {
        // Defensive: with minting timers armed for every open block, the
        // cutter is normally empty by the time the queue runs dry.
        if let Some((batch, cut_time)) = self.cutter.flush(engine.now()) {
            self.launch_block(batch, cut_time, engine);
        }
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.receipts.drain()
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.receipts.take_completions()
    }

    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.receipts.swap_completions(buf)
    }

    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.receipts.swap_receipts(buf)
    }

    fn footprint(&self) -> StorageBreakdown {
        self.state_trie
            .footprint()
            .merged(&self.state_db.footprint())
            .merged(&self.ledger.footprint())
    }

    fn node_count(&self) -> usize {
        self.config.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::drive_arrivals;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn write_txn(seq: u64, key: &str, size: usize) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::write(Key::from_str(key), Value::filler(size))],
        )
    }

    fn read_txn(seq: u64, key: &str) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::read(Key::from_str(key))],
        )
    }

    #[test]
    fn writes_commit_in_blocks_and_land_in_the_ledger() {
        let mut q = Quorum::new(QuorumConfig {
            max_block_txns: 5,
            ..QuorumConfig::default()
        });
        let receipts = drive_arrivals(
            &mut q,
            (0..10).map(|seq| (write_txn(seq, &format!("k{seq}"), 100), seq * 1000)),
        );
        assert_eq!(receipts.len(), 10);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        assert_eq!(q.ledger.txn_count(), 10);
        assert!(q.ledger.verify_chain().is_none());
        // Phases present on every write receipt.
        let phases: Vec<&str> = receipts[0]
            .phase_latencies
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(phases, vec!["proposal", "consensus", "commit"]);
    }

    #[test]
    fn a_partial_block_is_cut_by_the_minting_timer() {
        let mut q = Quorum::new(QuorumConfig {
            max_block_txns: 100,
            block_interval_us: 50_000,
            ..QuorumConfig::default()
        });
        // Three transactions, never enough to size-cut: only the timer at
        // first-arrival + interval can cut the block.
        let receipts = drive_arrivals(
            &mut q,
            (0..3).map(|seq| (write_txn(seq, &format!("k{seq}"), 100), 1_000 + seq * 100)),
        );
        assert_eq!(receipts.len(), 3);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        // The block could not have committed before the timer fired.
        assert!(receipts.iter().all(|r| r.finish_time >= 51_000));
    }

    #[test]
    fn blocks_commit_in_consensus_order_even_when_a_small_block_finishes_early() {
        let mut q = Quorum::new(QuorumConfig {
            max_block_txns: 50,
            block_interval_us: 1_000,
            ..QuorumConfig::default()
        });
        // Block 1: 50 large writes to one key (size cut at ~490 µs). Block 2:
        // a single tiny write to the same key, timer-cut shortly after. The
        // small block's consensus round is far cheaper, so without the
        // ordered-commit clamp it would overtake block 1 and lose the
        // last-writer race on the shared key.
        let mut arrivals: Vec<(Transaction, Timestamp)> = (0..50)
            .map(|seq| (write_txn(seq, "shared", 5000), seq * 10))
            .collect();
        arrivals.push((write_txn(99, "shared", 10), 600));
        let receipts = drive_arrivals(&mut q, arrivals);
        assert_eq!(receipts.len(), 51);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        let late = receipts.iter().find(|r| r.txn_id.seq == 99).unwrap();
        for r in receipts.iter().filter(|r| r.txn_id.seq != 99) {
            assert!(
                r.commit_version < late.commit_version,
                "block 1 (height {:?}) must commit before block 2 (height {:?})",
                r.commit_version,
                late.commit_version
            );
            assert!(r.finish_time <= late.finish_time);
        }
        // The later block is the last writer of the shared key.
        assert_eq!(
            q.state_db.get(&Key::from_str("shared")).unwrap().len(),
            10,
            "block 2's write must win the last-writer race"
        );
    }

    #[test]
    fn reads_bypass_consensus_and_are_fast() {
        let mut q = Quorum::new(QuorumConfig::default());
        q.load(&[(Key::from_str("hot"), Value::filler(1000))]);
        let receipts = drive_arrivals(&mut q, vec![(read_txn(1, "hot"), 50)]);
        assert_eq!(receipts.len(), 1);
        let latency = receipts[0].latency_us();
        // Milliseconds-range read path (Figure 5b: ~4 ms), far below the
        // block interval.
        assert!(latency < 20_000, "latency {latency}");
        assert_eq!(receipts[0].reads[0].1.as_ref().unwrap().len(), 1000);
    }

    #[test]
    fn larger_records_slow_the_commit_path_disproportionately() {
        let throughput = |record: usize| {
            let mut q = Quorum::new(QuorumConfig {
                max_block_txns: 50,
                ..QuorumConfig::default()
            });
            let n = 200u64;
            let receipts = drive_arrivals(
                &mut q,
                (0..n).map(|seq| (write_txn(seq, &format!("k{seq}"), record), seq * 10)),
            );
            let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
            n as f64 / (last as f64 / 1e6)
        };
        let small = throughput(10);
        let large = throughput(5000);
        assert!(
            small > large * 5.0,
            "10-byte {small:.0} tps vs 5000-byte {large:.0} tps"
        );
    }

    #[test]
    fn ibft_and_raft_reach_similar_throughput_when_consensus_is_not_the_bottleneck() {
        let run = |consensus| {
            let mut q = Quorum::new(QuorumConfig {
                consensus,
                nodes: 7,
                ..QuorumConfig::default()
            });
            let receipts = drive_arrivals(
                &mut q,
                (0..300u64).map(|seq| (write_txn(seq, &format!("k{}", seq % 50), 1000), seq * 100)),
            );
            let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
            300.0 / (last as f64 / 1e6)
        };
        let raft = run(ProtocolKind::Raft);
        let ibft = run(ProtocolKind::Ibft);
        let ratio = raft / ibft;
        assert!((0.8..1.4).contains(&ratio), "raft {raft:.0} ibft {ibft:.0}");
    }

    #[test]
    fn a_leader_crash_stalls_proposal_until_heal_plus_failover() {
        use dichotomy_simnet::fault::NodeFault;
        let run = |faults: FaultPlan| {
            let mut q = Quorum::new(QuorumConfig {
                max_block_txns: 5,
                faults,
                failover_us: 50_000,
                ..QuorumConfig::default()
            });
            drive_arrivals(
                &mut q,
                (0..20).map(|seq| (write_txn(seq, &format!("k{seq}"), 100), seq * 2_000)),
            )
        };
        let healthy = run(FaultPlan::none());
        let mut faults = FaultPlan::none();
        faults.add(NodeFault::crash_until(NodeId(0), 10_000, 600_000));
        let crashed = run(faults);
        assert_eq!(crashed.len(), healthy.len());
        assert!(crashed.iter().all(|r| r.status.is_committed()));
        // Blocks launched before the crash may finish mid-window (the fault
        // gates proposal admission, not in-flight blocks), but anything cut
        // inside the window waits for heal + failover.
        let healed = 600_000 + 50_000;
        for r in crashed.iter().filter(|r| r.submit_time >= 10_000) {
            assert!(
                r.finish_time >= healed,
                "receipt submitted in the outage finished inside it: {}",
                r.finish_time
            );
        }
        let stalled = crashed.iter().filter(|r| r.finish_time >= healed).count();
        assert!(stalled >= 10, "only {stalled} receipts rode out the crash");
        let max = |rs: &[TxnReceipt]| rs.iter().map(|r| r.finish_time).max().unwrap();
        assert!(max(&healthy) < max(&crashed));
    }

    #[test]
    fn a_partition_cutting_off_the_leader_stalls_blocks_until_it_heals() {
        let mut faults = FaultPlan::none();
        // Leader on one side, every follower on the other, until 400 ms.
        faults.add_partition(vec![NodeId(0)], 10_000, Some(400_000));
        let mut q = Quorum::new(QuorumConfig {
            max_block_txns: 5,
            faults,
            ..QuorumConfig::default()
        });
        let receipts = drive_arrivals(
            &mut q,
            (0..20).map(|seq| (write_txn(seq, &format!("k{seq}"), 100), seq * 2_000)),
        );
        assert_eq!(receipts.len(), 20);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        for r in receipts.iter().filter(|r| r.submit_time >= 10_000) {
            assert!(
                r.finish_time >= 400_000,
                "receipt submitted inside the partition finished inside it: {}",
                r.finish_time
            );
        }
    }

    #[test]
    fn footprint_includes_state_trie_and_ledger_history() {
        let mut q = Quorum::new(QuorumConfig {
            max_block_txns: 10,
            ..QuorumConfig::default()
        });
        let receipts = drive_arrivals(
            &mut q,
            (0..20).map(|seq| (write_txn(seq, &format!("k{seq}"), 500), seq * 10)),
        );
        assert_eq!(receipts.len(), 20);
        let fp = q.footprint();
        assert!(fp.history_bytes > 20 * 500, "ledger history missing");
        assert!(fp.index_bytes > 20 * 100, "MPT index overhead missing");
        assert_eq!(q.node_count(), 5);
        assert_eq!(q.kind().name(), "Quorum");
    }
}
