//! The Quorum model: an **order-execute** permissioned blockchain
//! (Section 4.1, Figure 3a).
//!
//! Write path: the proposer pre-executes pending transactions serially
//! against the tip of the ledger (EVM execution + Merkle Patricia Trie
//! update), batches them into a block, runs consensus (Raft or IBFT), and
//! then *every* node re-executes the block serially to validate and commit —
//! the "double execution" the paper blames for Quorum's sensitivity to record
//! size (Section 5.3.3). Read path: any node answers locally (EVM call +
//! state read), with no consensus and no client-authentication overhead
//! beyond signature checking.

use std::collections::VecDeque;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, NodeId, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_ledger::Ledger;
use dichotomy_merkle::MerklePatriciaTrie;
use dichotomy_simnet::{CostModel, NetworkConfig, Resource};
use dichotomy_storage::{KvEngine, LsmTree};

use crate::pipeline::{BlockCutter, SystemKind, TransactionalSystem};

/// Configuration of a Quorum deployment.
#[derive(Debug, Clone)]
pub struct QuorumConfig {
    /// Number of validator nodes (all participate in consensus).
    pub nodes: usize,
    /// Consensus protocol: Raft (CFT) or IBFT (BFT) — Section 5.2.3.
    pub consensus: ProtocolKind,
    /// Maximum transactions per block.
    pub max_block_txns: usize,
    /// Block minting period (µs): a partially filled block is cut after this.
    pub block_interval_us: u64,
    /// Extra state-commit amplification: geth updates the account trie, the
    /// per-contract storage tries and the receipt trie per transaction, so
    /// the MPT work measured for a single key update is paid roughly twice.
    pub commit_amplification: f64,
    /// Network model.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
    /// RNG seed (reserved for future stochastic extensions).
    pub seed: u64,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            nodes: 5,
            consensus: ProtocolKind::Raft,
            max_block_txns: 200,
            block_interval_us: 250_000,
            commit_amplification: 2.0,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
            seed: dichotomy_common::rng::DEFAULT_SEED,
        }
    }
}

/// The Quorum system model.
pub struct Quorum {
    config: QuorumConfig,
    profile: ReplicationProfile,
    cutter: BlockCutter,
    /// The proposer's serial pre-execution engine.
    proposer: Resource,
    /// The consensus leader's dissemination pipe.
    consensus: Resource,
    /// A representative validator's serial commit engine.
    committer: Resource,
    /// Authenticated world state.
    state_trie: MerklePatriciaTrie,
    /// State storage engine (LevelDB role).
    state_db: LsmTree,
    /// The chain.
    ledger: Ledger,
    receipts: VecDeque<TxnReceipt>,
}

impl Quorum {
    /// Build a Quorum deployment.
    pub fn new(config: QuorumConfig) -> Self {
        let profile = ReplicationProfile::new(
            config.consensus,
            config.nodes,
            config.network.clone(),
            config.costs.clone(),
        );
        Quorum {
            cutter: BlockCutter::new(config.max_block_txns, config.block_interval_us),
            profile,
            proposer: Resource::new(),
            consensus: Resource::new(),
            committer: Resource::new(),
            state_trie: MerklePatriciaTrie::new(),
            state_db: LsmTree::new(),
            ledger: Ledger::new(NodeId(0)),
            receipts: VecDeque::new(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &QuorumConfig {
        &self.config
    }

    /// Serial CPU cost of executing one transaction and committing its writes
    /// into the EVM state (used for both pre-execution and validation).
    fn execution_cost_us(&mut self, txn: &Transaction, apply: bool) -> u64 {
        let c = &self.config.costs;
        let mut cost = c.evm_exec_us(txn.payload_bytes());
        for op in &txn.ops {
            if op.reads() {
                cost += c.storage_get_us(op.value.as_ref().map_or(64, Value::len));
            }
            if op.writes() {
                let value = op.value.clone().unwrap_or_else(|| Value::filler(1));
                let stats = if apply {
                    self.state_trie.insert(&op.key, &value)
                } else {
                    // Cost-only estimate for the pre-execution pass: same path
                    // length as an applied update would have.
                    dichotomy_merkle::UpdateStats {
                        nodes_touched: 9,
                        leaf_bytes: value.len(),
                    }
                };
                if apply {
                    self.state_db.put(op.key.clone(), value);
                }
                cost += (c.adr_update_us(stats.nodes_touched, stats.leaf_bytes) as f64
                    * self.config.commit_amplification) as u64;
                cost += c.storage_put_us(stats.leaf_bytes);
            }
        }
        cost
    }

    /// Process a cut block through proposal → consensus → commit.
    fn process_block(&mut self, batch: Vec<(Transaction, Timestamp)>, cut_time: Timestamp) {
        if batch.is_empty() {
            return;
        }
        // Phase 1: proposer pre-executes serially (order-execute model).
        let mut proposal_cost = 0u64;
        for (txn, _) in &batch {
            proposal_cost += self.config.costs.verify_signatures_us(1);
            proposal_cost += self.execution_cost_us(txn, false);
        }
        let (_, proposal_done) = self.proposer.schedule(cut_time, proposal_cost);

        // Phase 2: consensus over the serialized block.
        let block_bytes: usize = batch.iter().map(|(t, _)| t.wire_bytes()).sum::<usize>() + 160;
        let occupancy = self.profile.leader_occupancy_us(block_bytes);
        let (_, dissemination_done) = self.consensus.schedule(proposal_done, occupancy);
        let consensus_done = dissemination_done + self.profile.commit_latency_us(block_bytes);

        // Phase 3: every validator re-executes serially and commits.
        let mut commit_cost = self.config.costs.block_header_check();
        let txns: Vec<Transaction> = batch.iter().map(|(t, _)| t.clone()).collect();
        for txn in &txns {
            commit_cost += self.execution_cost_us(&txn.clone(), true);
        }
        let (_, commit_done) = self.committer.schedule(consensus_done, commit_cost);

        // Ledger append with the new state root.
        let root = self.state_trie.root_hash();
        self.ledger
            .append_txns(txns, NodeId(0), commit_done, Some(root))
            .expect("chain grows monotonically");

        // Receipts: block-granular completion, per-txn phase breakdown.
        for (txn, arrival) in batch {
            let mut receipt = TxnReceipt::committed(txn.id, arrival, commit_done);
            receipt.phase_latencies = vec![
                ("proposal", proposal_done.saturating_sub(arrival)),
                ("consensus", consensus_done.saturating_sub(proposal_done)),
                ("commit", commit_done.saturating_sub(consensus_done)),
            ];
            receipt.commit_version = Some(self.ledger.tip_height());
            self.receipts.push_back(receipt);
        }
    }

    fn serve_read(&mut self, txn: &Transaction, arrival: Timestamp) {
        let c = &self.config.costs;
        let mut cost = c.verify_signatures_us(1) + c.evm_exec_us(128);
        let mut reads = Vec::new();
        for op in txn.ops.iter().filter(|o| o.reads()) {
            let value = self.state_db.get(&op.key);
            cost += c.storage_get_us(value.as_ref().map_or(64, Value::len));
            reads.push((op.key.clone(), value));
        }
        let finish = arrival + cost;
        let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
        receipt.reads = reads;
        receipt.phase_latencies = vec![("query", cost)];
        self.receipts.push_back(receipt);
    }
}

impl TransactionalSystem for Quorum {
    fn kind(&self) -> SystemKind {
        SystemKind::Quorum
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        for (k, v) in records {
            self.state_trie.insert(k, v);
            self.state_db.put(k.clone(), v.clone());
        }
    }

    fn submit(&mut self, txn: Transaction, arrival: Timestamp) {
        if txn.is_read_only() {
            self.serve_read(&txn, arrival);
            return;
        }
        if let Some((batch, cut_time)) = self.cutter.add(txn, arrival) {
            self.process_block(batch, cut_time);
        }
    }

    fn flush(&mut self, now: Timestamp) {
        if let Some((batch, cut_time)) = self.cutter.cut(now) {
            self.process_block(batch, cut_time);
        }
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.receipts.drain(..).collect()
    }

    fn footprint(&self) -> StorageBreakdown {
        self.state_trie
            .footprint()
            .merged(&self.state_db.footprint())
            .merged(&self.ledger.footprint())
    }

    fn node_count(&self) -> usize {
        self.config.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn write_txn(seq: u64, key: &str, size: usize) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::write(Key::from_str(key), Value::filler(size))],
        )
    }

    fn read_txn(seq: u64, key: &str) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::read(Key::from_str(key))],
        )
    }

    #[test]
    fn writes_commit_in_blocks_and_land_in_the_ledger() {
        let mut q = Quorum::new(QuorumConfig {
            max_block_txns: 5,
            ..QuorumConfig::default()
        });
        for seq in 0..10 {
            q.submit(write_txn(seq, &format!("k{seq}"), 100), seq * 1000);
        }
        q.flush(1_000_000);
        let receipts = q.drain_receipts();
        assert_eq!(receipts.len(), 10);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        assert_eq!(q.ledger.txn_count(), 10);
        assert!(q.ledger.verify_chain().is_none());
        // Phases present on every write receipt.
        let phases: Vec<&str> = receipts[0]
            .phase_latencies
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(phases, vec!["proposal", "consensus", "commit"]);
    }

    #[test]
    fn reads_bypass_consensus_and_are_fast() {
        let mut q = Quorum::new(QuorumConfig::default());
        q.load(&[(Key::from_str("hot"), Value::filler(1000))]);
        q.submit(read_txn(1, "hot"), 50);
        let receipts = q.drain_receipts();
        assert_eq!(receipts.len(), 1);
        let latency = receipts[0].latency_us();
        // Milliseconds-range read path (Figure 5b: ~4 ms), far below the
        // block interval.
        assert!(latency < 20_000, "latency {latency}");
        assert_eq!(receipts[0].reads[0].1.as_ref().unwrap().len(), 1000);
    }

    #[test]
    fn larger_records_slow_the_commit_path_disproportionately() {
        let throughput = |record: usize| {
            let mut q = Quorum::new(QuorumConfig {
                max_block_txns: 50,
                ..QuorumConfig::default()
            });
            let n = 200u64;
            for seq in 0..n {
                q.submit(write_txn(seq, &format!("k{seq}"), record), seq * 10);
            }
            q.flush(10_000_000);
            let receipts = q.drain_receipts();
            let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
            n as f64 / (last as f64 / 1e6)
        };
        let small = throughput(10);
        let large = throughput(5000);
        assert!(
            small > large * 5.0,
            "10-byte {small:.0} tps vs 5000-byte {large:.0} tps"
        );
    }

    #[test]
    fn ibft_and_raft_reach_similar_throughput_when_consensus_is_not_the_bottleneck() {
        let run = |consensus| {
            let mut q = Quorum::new(QuorumConfig {
                consensus,
                nodes: 7,
                ..QuorumConfig::default()
            });
            for seq in 0..300u64 {
                q.submit(write_txn(seq, &format!("k{}", seq % 50), 1000), seq * 100);
            }
            q.flush(60_000_000);
            let receipts = q.drain_receipts();
            let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
            300.0 / (last as f64 / 1e6)
        };
        let raft = run(ProtocolKind::Raft);
        let ibft = run(ProtocolKind::Ibft);
        let ratio = raft / ibft;
        assert!((0.8..1.4).contains(&ratio), "raft {raft:.0} ibft {ibft:.0}");
    }

    #[test]
    fn footprint_includes_state_trie_and_ledger_history() {
        let mut q = Quorum::new(QuorumConfig {
            max_block_txns: 10,
            ..QuorumConfig::default()
        });
        for seq in 0..20 {
            q.submit(write_txn(seq, &format!("k{seq}"), 500), seq * 10);
        }
        q.flush(1_000_000);
        let fp = q.footprint();
        assert!(fp.history_bytes > 20 * 500, "ledger history missing");
        assert!(fp.index_bytes > 20 * 100, "MPT index overhead missing");
        assert_eq!(q.node_count(), 5);
        assert_eq!(q.kind().name(), "Quorum");
    }
}
