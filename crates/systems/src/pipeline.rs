//! The shared system-model interface and batching helpers.

use dichotomy_common::size::StorageBreakdown;
use dichotomy_common::{Key, Timestamp, Transaction, TxnReceipt, Value};

/// Which of the benchmarked systems a model stands for (used in reports and
/// as the lookup key of the [`SystemRegistry`](crate::spec::SystemRegistry)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SystemKind {
    Quorum,
    Fabric,
    TiDb,
    Etcd,
    Tikv,
    SpannerLike,
    Ahl,
}

impl SystemKind {
    /// Every kind with a built-in model, in the paper's plotting order.
    pub const ALL: [SystemKind; 7] = [
        SystemKind::Fabric,
        SystemKind::Quorum,
        SystemKind::TiDb,
        SystemKind::Etcd,
        SystemKind::Tikv,
        SystemKind::SpannerLike,
        SystemKind::Ahl,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Quorum => "Quorum",
            SystemKind::Fabric => "Fabric",
            SystemKind::TiDb => "TiDB",
            SystemKind::Etcd => "etcd",
            SystemKind::Tikv => "TiKV",
            SystemKind::SpannerLike => "Spanner-like",
            SystemKind::Ahl => "AHL",
        }
    }
}

/// The interface every system model exposes to the experiment driver.
pub trait TransactionalSystem {
    /// Which system this is.
    fn kind(&self) -> SystemKind;

    /// Bulk-load the initial records (not timed).
    fn load(&mut self, records: &[(Key, Value)]);

    /// Submit a transaction arriving at `arrival` (simulated µs). Read-write
    /// transactions may be batched internally; their receipts appear from
    /// [`drain_receipts`](Self::drain_receipts) after the batch commits.
    fn submit(&mut self, txn: Transaction, arrival: Timestamp);

    /// Force any partially filled batch to be processed (end of run, or a
    /// block-interval tick with an empty arrival stream).
    fn flush(&mut self, now: Timestamp);

    /// Receipts completed since the last drain.
    fn drain_receipts(&mut self) -> Vec<TxnReceipt>;

    /// Current storage footprint across state, indexes and ledger/history.
    fn footprint(&self) -> StorageBreakdown;

    /// Number of nodes in the deployment.
    fn node_count(&self) -> usize;
}

/// Groups submitted transactions into blocks the way a blockchain's block
/// producer / ordering service cuts them: a block is emitted when it holds
/// `max_txns` transactions or when `timeout_us` has elapsed since its first
/// transaction arrived, whichever comes first.
#[derive(Debug)]
pub struct BlockCutter {
    max_txns: usize,
    timeout_us: u64,
    pending: Vec<(Transaction, Timestamp)>,
    first_arrival: Option<Timestamp>,
}

impl BlockCutter {
    /// A cutter with the given limits.
    pub fn new(max_txns: usize, timeout_us: u64) -> Self {
        BlockCutter {
            max_txns: max_txns.max(1),
            timeout_us: timeout_us.max(1),
            pending: Vec::new(),
            first_arrival: None,
        }
    }

    /// Number of transactions waiting in the open block.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Add a transaction; returns a cut batch if this arrival closed a block
    /// (either because an older pending block timed out before `arrival`, or
    /// because the size limit was reached).
    pub fn add(
        &mut self,
        txn: Transaction,
        arrival: Timestamp,
    ) -> Option<(Vec<(Transaction, Timestamp)>, Timestamp)> {
        // If the open block has already timed out by the time this arrival
        // happens, cut it first and start a new block with this transaction.
        if let Some(first) = self.first_arrival {
            if arrival >= first + self.timeout_us && !self.pending.is_empty() {
                let cut_time = first + self.timeout_us;
                let batch = std::mem::take(&mut self.pending);
                self.pending.push((txn, arrival));
                self.first_arrival = Some(arrival);
                return Some((batch, cut_time));
            }
        }
        if self.first_arrival.is_none() {
            self.first_arrival = Some(arrival);
        }
        self.pending.push((txn, arrival));
        if self.pending.len() >= self.max_txns {
            let cut_time = arrival;
            let batch = std::mem::take(&mut self.pending);
            self.first_arrival = None;
            return Some((batch, cut_time));
        }
        None
    }

    /// Cut whatever is pending (end of run / timer tick at `now`).
    pub fn cut(&mut self, now: Timestamp) -> Option<(Vec<(Transaction, Timestamp)>, Timestamp)> {
        if self.pending.is_empty() {
            return None;
        }
        let first = self.first_arrival.take().unwrap_or(now);
        // The block is cut when the timer fires: never before the first
        // arrival, never after the block's timeout expires.
        let cut_time = now.clamp(first, first.saturating_add(self.timeout_us));
        let batch = std::mem::take(&mut self.pending);
        Some((batch, cut_time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn txn(seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::write(Key::from_str("k"), Value::filler(4))],
        )
    }

    #[test]
    fn cuts_on_size_limit() {
        let mut c = BlockCutter::new(3, 1_000_000);
        assert!(c.add(txn(1), 10).is_none());
        assert!(c.add(txn(2), 20).is_none());
        let (batch, at) = c.add(txn(3), 30).expect("size cut");
        assert_eq!(batch.len(), 3);
        assert_eq!(at, 30);
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn cuts_on_timeout_when_a_late_arrival_shows_up() {
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(1), 0);
        c.add(txn(2), 100);
        // This arrival is past the timeout of the open block.
        let (batch, at) = c.add(txn(3), 900).expect("timeout cut");
        assert_eq!(batch.len(), 2);
        assert_eq!(at, 500);
        assert_eq!(c.pending_len(), 1);
    }

    #[test]
    fn cut_time_is_clamped_to_the_blocks_lifetime() {
        // `now` before the first arrival (a stale timer tick): the cut is
        // dated at the first arrival, never earlier.
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(1), 1_000);
        let (_, at) = c.cut(400).expect("cut");
        assert_eq!(at, 1_000);
        // `now` past the timeout: the cut is dated when the timeout expired.
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(2), 1_000);
        let (_, at) = c.cut(9_999).expect("cut");
        assert_eq!(at, 1_500);
        // `now` inside the window: the cut happens exactly at `now`.
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(3), 1_000);
        let (_, at) = c.cut(1_200).expect("cut");
        assert_eq!(at, 1_200);
    }

    #[test]
    fn explicit_cut_flushes_pending() {
        let mut c = BlockCutter::new(100, 500);
        assert!(c.cut(0).is_none());
        c.add(txn(1), 100);
        let (batch, at) = c.cut(10_000).expect("flush");
        assert_eq!(batch.len(), 1);
        assert_eq!(at, 600);
        assert!(c.cut(20_000).is_none());
    }

    #[test]
    fn system_kind_names() {
        assert_eq!(SystemKind::Quorum.name(), "Quorum");
        assert_eq!(SystemKind::TiDb.name(), "TiDB");
        assert_eq!(SystemKind::Ahl.name(), "AHL");
    }
}
