//! The shared system-model interface and batching helpers.
//!
//! Every system model is an event-driven process on the simulation engine:
//! the driver schedules [`SysEvent::Arrival`]s, the model reacts by booking
//! work on its engine-registered service [`Process`](dichotomy_simnet::Process)es
//! and scheduling its own pipeline [`StageEvent`]s (endorse → order →
//! validate → commit for Fabric, propose → replicate → apply for the
//! databases, block-cut timers for the batching blockchains), and receipts
//! fall out as stages complete. Nothing executes synchronously at submit
//! time, so backlog, saturation and fault stalls emerge from the queues.

use dichotomy_common::size::StorageBreakdown;
use dichotomy_common::{ClientId, Key, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_simnet::{SimEngine, StageEvent};

/// Which of the benchmarked systems a model stands for (used in reports and
/// as the lookup key of the [`SystemRegistry`](crate::spec::SystemRegistry)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SystemKind {
    Quorum,
    Fabric,
    TiDb,
    Etcd,
    Tikv,
    SpannerLike,
    Ahl,
}

impl dichotomy_common::Encode for SystemKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            SystemKind::Quorum => 0,
            SystemKind::Fabric => 1,
            SystemKind::TiDb => 2,
            SystemKind::Etcd => 3,
            SystemKind::Tikv => 4,
            SystemKind::SpannerLike => 5,
            SystemKind::Ahl => 6,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl SystemKind {
    /// Every kind with a built-in model, in the paper's plotting order.
    pub const ALL: [SystemKind; 7] = [
        SystemKind::Fabric,
        SystemKind::Quorum,
        SystemKind::TiDb,
        SystemKind::Etcd,
        SystemKind::Tikv,
        SystemKind::SpannerLike,
        SystemKind::Ahl,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Quorum => "Quorum",
            SystemKind::Fabric => "Fabric",
            SystemKind::TiDb => "TiDB",
            SystemKind::Etcd => "etcd",
            SystemKind::Tikv => "TiKV",
            SystemKind::SpannerLike => "Spanner-like",
            SystemKind::Ahl => "AHL",
        }
    }

    /// Lowercase label safe for machine-readable keys (candidate names,
    /// cache paths): no spaces, dashes or case surprises.
    pub fn slug(&self) -> &'static str {
        match self {
            SystemKind::Quorum => "quorum",
            SystemKind::Fabric => "fabric",
            SystemKind::TiDb => "tidb",
            SystemKind::Etcd => "etcd",
            SystemKind::Tikv => "tikv",
            SystemKind::SpannerLike => "spanner",
            SystemKind::Ahl => "ahl",
        }
    }

    /// Whether the model batches transactions into blocks, i.e. whether the
    /// block-cut knobs (`block_txns`, `block_interval_us`) change anything.
    /// Enumeration grids use this to skip no-op block axes on the database
    /// kinds instead of multiplying the grid by dead configurations.
    pub fn cuts_blocks(&self) -> bool {
        matches!(self, SystemKind::Quorum | SystemKind::Fabric)
    }

    /// Whether the model honors a shard count above one (the partitioned
    /// NewSQL builders and AHL's BFT-sharded deployment; the etcd/TiKV KV
    /// models ignore the knob).
    pub fn shards_scale(&self) -> bool {
        matches!(
            self,
            SystemKind::TiDb | SystemKind::SpannerLike | SystemKind::Ahl
        )
    }
}

/// The event vocabulary of the transaction-processing simulation: what the
/// driver and the system models exchange through the engine's queue.
#[derive(Debug, Clone)]
pub enum SysEvent {
    /// A client transaction arriving at the system boundary.
    Arrival(Transaction),
    /// A pipeline stage a model scheduled for itself firing.
    Stage(StageEvent),
}

impl SysEvent {
    /// A stage event for model-defined stage `stage` and payload `token`.
    pub fn stage(stage: u32, token: u64) -> Self {
        SysEvent::Stage(StageEvent::new(stage, token))
    }
}

/// The concrete engine every system model runs on.
pub type Engine = SimEngine<SysEvent>;

/// An incremental completion notification: one transaction finished
/// (committed *or* aborted) for `client` at simulated time `finish`.
///
/// The driver polls these through
/// [`take_completions`](TransactionalSystem::take_completions) after every
/// dispatched event, which is what lets closed-loop clients schedule their
/// next submission at `finish + think_time` while the run is still going.
/// `finish` may lie ahead of the engine clock: models stamp receipts with
/// tail latencies (replication round trips, network hops) that need no
/// further events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The submitting client.
    pub client: ClientId,
    /// The simulated submit time of the transaction (client models use it
    /// to attribute a completion to the population that emitted it — e.g. a
    /// load phase ignores completions submitted before it began).
    pub submitted: Timestamp,
    /// The simulated finish time of the transaction.
    pub finish: Timestamp,
}

/// The outcome buffer every system model records receipts into: a receipt
/// log that doubles as the incremental completion channel.
///
/// [`push_back`](Self::push_back) records the receipt *and* its
/// [`Completion`]; [`drain`](Self::drain) hands the receipts out once at the
/// end of a run (unchanged semantics), while
/// [`take_completions`](Self::take_completions) surfaces the completion
/// stream incrementally for the driver's closed-loop clients.
#[derive(Debug, Default)]
pub struct ReceiptLog {
    receipts: Vec<TxnReceipt>,
    completions: Vec<Completion>,
}

impl ReceiptLog {
    /// An empty log.
    pub fn new() -> Self {
        ReceiptLog::default()
    }

    /// Record a finished transaction (commit or abort).
    pub fn push_back(&mut self, receipt: TxnReceipt) {
        self.completions.push(Completion {
            client: receipt.txn_id.client,
            submitted: receipt.submit_time,
            finish: receipt.finish_time,
        });
        self.receipts.push(receipt);
    }

    /// Take every receipt recorded so far, in recording order.
    pub fn drain(&mut self) -> Vec<TxnReceipt> {
        std::mem::take(&mut self.receipts)
    }

    /// Take the completions recorded since the last call, in recording
    /// order.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Swap-drain the completions recorded since the last call: clears
    /// `buf`, then exchanges it with the internal completion vector. The
    /// caller reads the batch out of `buf` and hands the same buffer back on
    /// the next call, so the two allocations ping-pong between the log and
    /// the driver's event loop — no per-event `Vec` allocation.
    pub fn swap_completions(&mut self, buf: &mut Vec<Completion>) {
        buf.clear();
        std::mem::swap(&mut self.completions, buf);
    }

    /// Swap-drain the receipts recorded since the last drain, with the same
    /// buffer-reuse protocol as [`swap_completions`](Self::swap_completions)
    /// (the streaming-metrics path consumes receipts incrementally).
    pub fn swap_receipts(&mut self, buf: &mut Vec<TxnReceipt>) {
        buf.clear();
        std::mem::swap(&mut self.receipts, buf);
    }

    /// Test-only corruption hook for oracle-sensitivity tests: hands the raw
    /// receipt vector to `f` so a test can drop, duplicate, or reorder
    /// receipts and assert the invariant oracles catch it. Completions are
    /// untouched, exactly as a buggy model would leave them.
    #[doc(hidden)]
    pub fn corrupt_receipts_for_test(&mut self, f: impl FnOnce(&mut Vec<TxnReceipt>)) {
        f(&mut self.receipts);
    }

    /// Number of receipts currently held.
    pub fn len(&self) -> usize {
        self.receipts.len()
    }

    /// Whether no receipts are held.
    pub fn is_empty(&self) -> bool {
        self.receipts.is_empty()
    }
}

/// The interface every system model exposes to the experiment driver.
///
/// Lifecycle: [`load`](Self::load) (untimed bulk load), then exactly one
/// [`attach`](Self::attach) on a fresh engine, then any number of
/// [`on_arrival`](Self::on_arrival) / [`on_stage`](Self::on_stage) callbacks
/// in event order, then [`on_drain`](Self::on_drain) once the arrival stream
/// has ended and the queue has run dry. Receipts accumulate internally and
/// are collected with [`drain_receipts`](Self::drain_receipts).
pub trait TransactionalSystem {
    /// Which system this is.
    fn kind(&self) -> SystemKind;

    /// Bulk-load the initial records (not timed).
    fn load(&mut self, records: &[(Key, Value)]);

    /// Register the model's service processes (pipeline-stage servers) on
    /// the engine. Called once, before any event fires.
    fn attach(&mut self, engine: &mut Engine) {
        let _ = engine;
    }

    /// A transaction arrives at `engine.now()`. The model books service time
    /// on its processes and schedules the stage events that will carry the
    /// transaction through its pipeline; receipts appear from
    /// [`drain_receipts`](Self::drain_receipts) once the final stage fires.
    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine);

    /// A stage event previously scheduled by this model fires at
    /// `engine.now()`.
    fn on_stage(&mut self, event: StageEvent, engine: &mut Engine) {
        let _ = (event, engine);
    }

    /// The arrival stream has ended and the event queue has drained: flush
    /// any partially filled batch by scheduling its remaining stages (the
    /// events are drained again afterwards).
    fn on_drain(&mut self, engine: &mut Engine) {
        let _ = engine;
    }

    /// Receipts completed since the last drain.
    fn drain_receipts(&mut self) -> Vec<TxnReceipt>;

    /// Completions recorded since the last call, in recording order. The
    /// driver polls this after every dispatched event so closed-loop client
    /// models can react to finishes while the run is live; the receipts
    /// themselves still drain once, at the end, through
    /// [`drain_receipts`](Self::drain_receipts). Models that buffer their
    /// outcomes in a [`ReceiptLog`] implement this as
    /// `self.receipts.take_completions()`.
    fn take_completions(&mut self) -> Vec<Completion>;

    /// Swap-drain the completions recorded since the last call into `buf`
    /// (cleared first). This is the allocation-free variant of
    /// [`take_completions`](Self::take_completions): the driver's event loop
    /// hands the same buffer back every call, so models backed by a
    /// [`ReceiptLog`] ping-pong two vectors via
    /// [`ReceiptLog::swap_completions`] instead of allocating per event. The
    /// default delegates to `take_completions` for implementations that
    /// don't buffer in a `ReceiptLog`.
    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        buf.clear();
        buf.append(&mut self.take_completions());
    }

    /// Swap-drain the receipts completed since the last drain into `buf`
    /// (cleared first). Streaming-metrics runs consume receipts
    /// incrementally through this instead of retaining the run's full
    /// receipt vector; models backed by a [`ReceiptLog`] implement it as
    /// [`ReceiptLog::swap_receipts`]. The default delegates to
    /// [`drain_receipts`](Self::drain_receipts).
    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        buf.clear();
        buf.append(&mut self.drain_receipts());
    }

    /// Current storage footprint across state, indexes and ledger/history.
    fn footprint(&self) -> StorageBreakdown;

    /// Number of nodes in the deployment.
    fn node_count(&self) -> usize;
}

/// Pump the engine dry: dispatch every queued event to `system`, invoking
/// `after_arrival` once per dispatched arrival (the open-loop driver uses it
/// to schedule the next arrival), give the system an
/// [`on_drain`](TransactionalSystem::on_drain), and keep going until no
/// events remain (drain hooks may schedule follow-up stages).
pub fn run_to_completion_with(
    system: &mut dyn TransactionalSystem,
    engine: &mut Engine,
    mut after_arrival: impl FnMut(&mut Engine),
) {
    loop {
        while let Some((_, event)) = engine.pop() {
            match event {
                SysEvent::Arrival(txn) => {
                    system.on_arrival(txn, engine);
                    after_arrival(engine);
                }
                SysEvent::Stage(stage) => system.on_stage(stage, engine),
            }
        }
        system.on_drain(engine);
        if engine.is_empty() {
            break;
        }
    }
}

/// [`run_to_completion_with`] without a per-arrival hook.
pub fn run_to_completion(system: &mut dyn TransactionalSystem, engine: &mut Engine) {
    run_to_completion_with(system, engine, |_| {});
}

/// Drive a fixed arrival schedule through `system` on a fresh engine and
/// return the receipts — the unit-test / bench counterpart of the open-loop
/// driver in `dichotomy-core`. Each transaction's `submit_time` is stamped
/// with its arrival when unset.
///
/// Reusing one system across calls is supported only when the later call's
/// arrival timestamps continue *after* the previous run's finish times: the
/// engine (and its clock) is fresh per call, but model state keyed to
/// absolute time — contention hold windows, reconfiguration epochs, ordered
/// commit clamps — survives in the system.
pub fn drive_arrivals(
    system: &mut dyn TransactionalSystem,
    arrivals: impl IntoIterator<Item = (Transaction, Timestamp)>,
) -> Vec<TxnReceipt> {
    let mut engine = Engine::new();
    system.attach(&mut engine);
    for (mut txn, at) in arrivals {
        if txn.submit_time == 0 {
            txn.submit_time = at;
        }
        engine.schedule_at(at, SysEvent::Arrival(txn));
    }
    run_to_completion(system, &mut engine);
    system.drain_receipts()
}

/// A token-keyed store for model state that is in flight between two stage
/// events: `insert` hands out the token to embed in the [`StageEvent`],
/// `remove` claims it back when the stage fires.
#[derive(Debug)]
pub struct TokenMap<T> {
    entries: std::collections::BTreeMap<u64, T>,
    next: u64,
}

impl<T> Default for TokenMap<T> {
    fn default() -> Self {
        TokenMap {
            entries: std::collections::BTreeMap::new(),
            next: 0,
        }
    }
}

impl<T> TokenMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        TokenMap::default()
    }

    /// Store `value` and return the token that retrieves it.
    pub fn insert(&mut self, value: T) -> u64 {
        let token = self.next;
        self.next += 1;
        self.entries.insert(token, value);
        token
    }

    /// Claim the value behind `token`. Panics if the token was never issued
    /// or was already claimed — a stage event fired twice.
    pub fn remove(&mut self, token: u64) -> T {
        self.entries.remove(&token).expect("stage token in flight")
    }

    /// Put a value back under a token previously claimed with
    /// [`remove`](Self::remove) (the take/compute/put-back pattern models
    /// use to work on an entry while keeping `&mut self` free).
    pub fn restore(&mut self, token: u64, value: T) {
        let prev = self.entries.insert(token, value);
        debug_assert!(prev.is_none(), "token {token} restored while occupied");
    }

    /// Access the value behind `token` without claiming it.
    pub fn get_mut(&mut self, token: u64) -> &mut T {
        self.entries.get_mut(&token).expect("stage token in flight")
    }

    /// Number of entries in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A [`BlockCutter`] driven by engine timer events: arms one timer stage
/// event per open block (tagged with an epoch token so stale timers no-op),
/// cuts on size from [`add`](Self::add) and on timeout from
/// [`on_timer`](Self::on_timer). Both batching blockchains share this state
/// machine instead of hand-rolling the epoch/re-arm invariants.
#[derive(Debug)]
pub struct TimedCutter {
    cutter: BlockCutter,
    timeout_us: u64,
    /// Which stage id the timer events carry (model-defined).
    timer_stage: u32,
    /// Epoch of the currently open (uncut) block; timer tokens must match.
    epoch: u64,
}

impl TimedCutter {
    /// A cutter with the given limits whose timers fire as `timer_stage`
    /// stage events.
    pub fn new(max_txns: usize, timeout_us: u64, timer_stage: u32) -> Self {
        TimedCutter {
            cutter: BlockCutter::new(max_txns, timeout_us),
            timeout_us: timeout_us.max(1),
            timer_stage,
            epoch: 0,
        }
    }

    /// Number of transactions waiting in the open block.
    pub fn pending_len(&self) -> usize {
        self.cutter.pending_len()
    }

    fn arm_timer(&self, at: Timestamp, engine: &mut Engine) {
        engine.schedule_at(
            at + self.timeout_us,
            SysEvent::stage(self.timer_stage, self.epoch),
        );
    }

    /// Add a transaction at `at`, arming the timeout timer when this opens a
    /// new block. Returns the cut batch if this arrival closed one.
    #[allow(clippy::type_complexity)]
    pub fn add(
        &mut self,
        txn: Transaction,
        at: Timestamp,
        engine: &mut Engine,
    ) -> Option<(Vec<(Transaction, Timestamp)>, Timestamp)> {
        if self.cutter.pending_len() == 0 {
            self.arm_timer(at, engine);
        }
        let cut = self.cutter.add(txn, at);
        if cut.is_some() {
            self.epoch += 1;
            if self.cutter.pending_len() > 0 {
                // The cut left a fresh open block behind (a late-arrival
                // cut): arm its timer too.
                self.arm_timer(at, engine);
            }
        }
        cut
    }

    /// A timer stage event fired with `token`: cut the open block if the
    /// timer is current (stale epochs no-op).
    #[allow(clippy::type_complexity)]
    pub fn on_timer(
        &mut self,
        token: u64,
        now: Timestamp,
    ) -> Option<(Vec<(Transaction, Timestamp)>, Timestamp)> {
        if token != self.epoch {
            return None;
        }
        let cut = self.cutter.cut(now);
        if cut.is_some() {
            self.epoch += 1;
        }
        cut
    }

    /// Cut whatever is pending (drain hook). With timers armed for every
    /// open block this is normally empty by the time the queue runs dry.
    #[allow(clippy::type_complexity)]
    pub fn flush(&mut self, now: Timestamp) -> Option<(Vec<(Transaction, Timestamp)>, Timestamp)> {
        let cut = self.cutter.cut(now);
        if cut.is_some() {
            self.epoch += 1;
        }
        cut
    }
}

/// Groups submitted transactions into blocks the way a blockchain's block
/// producer / ordering service cuts them: a block is emitted when it holds
/// `max_txns` transactions or when `timeout_us` has elapsed since its first
/// transaction arrived, whichever comes first.
#[derive(Debug)]
pub struct BlockCutter {
    max_txns: usize,
    timeout_us: u64,
    pending: Vec<(Transaction, Timestamp)>,
    first_arrival: Option<Timestamp>,
}

impl BlockCutter {
    /// A cutter with the given limits.
    pub fn new(max_txns: usize, timeout_us: u64) -> Self {
        BlockCutter {
            max_txns: max_txns.max(1),
            timeout_us: timeout_us.max(1),
            pending: Vec::new(),
            first_arrival: None,
        }
    }

    /// Number of transactions waiting in the open block.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Add a transaction; returns a cut batch if this arrival closed a block
    /// (either because an older pending block timed out before `arrival`, or
    /// because the size limit was reached).
    pub fn add(
        &mut self,
        txn: Transaction,
        arrival: Timestamp,
    ) -> Option<(Vec<(Transaction, Timestamp)>, Timestamp)> {
        // If the open block has already timed out by the time this arrival
        // happens, cut it first and start a new block with this transaction.
        if let Some(first) = self.first_arrival {
            if arrival >= first + self.timeout_us && !self.pending.is_empty() {
                let cut_time = first + self.timeout_us;
                let batch = std::mem::take(&mut self.pending);
                self.pending.push((txn, arrival));
                self.first_arrival = Some(arrival);
                return Some((batch, cut_time));
            }
        }
        if self.first_arrival.is_none() {
            self.first_arrival = Some(arrival);
        }
        self.pending.push((txn, arrival));
        if self.pending.len() >= self.max_txns {
            let cut_time = arrival;
            let batch = std::mem::take(&mut self.pending);
            self.first_arrival = None;
            return Some((batch, cut_time));
        }
        None
    }

    /// Cut whatever is pending (end of run / timer tick at `now`).
    pub fn cut(&mut self, now: Timestamp) -> Option<(Vec<(Transaction, Timestamp)>, Timestamp)> {
        if self.pending.is_empty() {
            return None;
        }
        let first = self.first_arrival.take().unwrap_or(now);
        // The block is cut when the timer fires: never before the first
        // arrival, never after the block's timeout expires.
        let cut_time = now.clamp(first, first.saturating_add(self.timeout_us));
        let batch = std::mem::take(&mut self.pending);
        Some((batch, cut_time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn txn(seq: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::write(Key::from_str("k"), Value::filler(4))],
        )
    }

    #[test]
    fn cuts_on_size_limit() {
        let mut c = BlockCutter::new(3, 1_000_000);
        assert!(c.add(txn(1), 10).is_none());
        assert!(c.add(txn(2), 20).is_none());
        let (batch, at) = c.add(txn(3), 30).expect("size cut");
        assert_eq!(batch.len(), 3);
        assert_eq!(at, 30);
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn cuts_on_timeout_when_a_late_arrival_shows_up() {
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(1), 0);
        c.add(txn(2), 100);
        // This arrival is past the timeout of the open block.
        let (batch, at) = c.add(txn(3), 900).expect("timeout cut");
        assert_eq!(batch.len(), 2);
        assert_eq!(at, 500);
        assert_eq!(c.pending_len(), 1);
    }

    #[test]
    fn cut_time_is_clamped_to_the_blocks_lifetime() {
        // `now` before the first arrival (a stale timer tick): the cut is
        // dated at the first arrival, never earlier.
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(1), 1_000);
        let (_, at) = c.cut(400).expect("cut");
        assert_eq!(at, 1_000);
        // `now` past the timeout: the cut is dated when the timeout expired.
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(2), 1_000);
        let (_, at) = c.cut(9_999).expect("cut");
        assert_eq!(at, 1_500);
        // `now` inside the window: the cut happens exactly at `now`.
        let mut c = BlockCutter::new(100, 500);
        c.add(txn(3), 1_000);
        let (_, at) = c.cut(1_200).expect("cut");
        assert_eq!(at, 1_200);
    }

    #[test]
    fn explicit_cut_flushes_pending() {
        let mut c = BlockCutter::new(100, 500);
        assert!(c.cut(0).is_none());
        c.add(txn(1), 100);
        let (batch, at) = c.cut(10_000).expect("flush");
        assert_eq!(batch.len(), 1);
        assert_eq!(at, 600);
        assert!(c.cut(20_000).is_none());
    }

    #[test]
    fn system_kind_names() {
        assert_eq!(SystemKind::Quorum.name(), "Quorum");
        assert_eq!(SystemKind::TiDb.name(), "TiDB");
        assert_eq!(SystemKind::Ahl.name(), "AHL");
    }

    #[test]
    fn token_map_issues_sequential_tokens_and_supports_put_back() {
        let mut m: TokenMap<&str> = TokenMap::new();
        assert!(m.is_empty());
        let a = m.insert("a");
        let b = m.insert("b");
        assert_eq!((a, b), (0, 1));
        assert_eq!(m.len(), 2);
        let taken = m.remove(a);
        assert_eq!(taken, "a");
        m.restore(a, "a2");
        assert_eq!(*m.get_mut(a), "a2");
        assert_eq!(m.remove(b), "b");
        // Tokens keep increasing after removals (they are never reused).
        assert_eq!(m.insert("c"), 2);
    }

    #[test]
    fn timed_cutter_cuts_on_size_and_arms_one_timer_per_open_block() {
        let mut engine = Engine::new();
        let mut c = TimedCutter::new(2, 500, 7);
        assert!(c.add(txn(1), 10, &mut engine).is_none());
        // One timer armed for the block opened at t=10.
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.peek_time(), Some(510));
        let (batch, at) = c.add(txn(2), 20, &mut engine).expect("size cut");
        assert_eq!((batch.len(), at), (2, 20));
        // The size cut does not arm another timer (no open block remains).
        assert_eq!(engine.len(), 1);
        // The stale timer for the cut block no-ops.
        let (_, ev) = engine.pop().unwrap();
        let token = match ev {
            SysEvent::Stage(se) => {
                assert_eq!(se.stage, 7);
                se.token
            }
            SysEvent::Arrival(_) => panic!("expected the timer stage event"),
        };
        assert!(c.on_timer(token, 510).is_none());
    }

    #[test]
    fn timed_cutter_timer_cuts_the_open_block_and_flush_drains() {
        let mut engine = Engine::new();
        let mut c = TimedCutter::new(100, 500, 7);
        c.add(txn(1), 10, &mut engine);
        // The armed timer's token is current: it cuts at the timeout.
        let (_, ev) = engine.pop().unwrap();
        let token = match ev {
            SysEvent::Stage(se) => se.token,
            SysEvent::Arrival(_) => panic!("expected the timer stage event"),
        };
        let (batch, at) = c.on_timer(token, 510).expect("timeout cut");
        assert_eq!((batch.len(), at), (1, 510));
        // A re-fired stale timer no-ops; flush on an empty cutter no-ops.
        assert!(c.on_timer(token, 600).is_none());
        assert!(c.flush(1_000).is_none());
        c.add(txn(2), 700, &mut engine);
        let (batch, _) = c.flush(800).expect("drain flush");
        assert_eq!(batch.len(), 1);
    }
}
