//! The etcd model (NoSQL key-value store over a single Raft group and a
//! BoltDB-style B+ tree) and the standalone TiKV model (the replicated LSM
//! storage layer of TiDB, measured separately in Figure 4).
//!
//! Both replicate *storage operations* (not transactions) through one Raft
//! group, apply them serially at the leader, and serve linearizable reads
//! from the leader without consensus. Neither runs a SQL layer, a
//! transaction coordinator, client authentication, or an authenticated
//! index — which is exactly why they top Figure 4.

use std::collections::VecDeque;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Key, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_simnet::{CostModel, MultiResource, NetworkConfig, Resource};
use dichotomy_storage::{BPlusTree, KvEngine, LsmTree};

use crate::pipeline::{SystemKind, TransactionalSystem};

/// Configuration shared by the etcd and TiKV models.
#[derive(Debug, Clone)]
pub struct EtcdConfig {
    /// Number of replicas in the Raft group.
    pub nodes: usize,
    /// How many operations the leader batches into one Raft proposal.
    pub raft_batch: usize,
    /// Network model.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
}

impl Default for EtcdConfig {
    fn default() -> Self {
        EtcdConfig {
            nodes: 3,
            raft_batch: 32,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
        }
    }
}

/// Shared machinery for both storage-replicated KV systems.
struct KvSystem<E: KvEngine> {
    config: EtcdConfig,
    raft: ReplicationProfile,
    /// The leader's serial apply loop.
    apply: Resource,
    /// Read-serving capacity (reads do not go through consensus).
    readers: MultiResource,
    engine: E,
    receipts: VecDeque<TxnReceipt>,
    /// Fixed per-operation apply cost beyond the engine write (grpc, fsync
    /// amortized across the raft batch).
    apply_overhead_us: u64,
}

impl<E: KvEngine> KvSystem<E> {
    fn new(config: EtcdConfig, engine: E, apply_overhead_us: u64) -> Self {
        let raft = ReplicationProfile::new(
            ProtocolKind::Raft,
            config.nodes,
            config.network.clone(),
            config.costs.clone(),
        );
        KvSystem {
            raft,
            apply: Resource::new(),
            readers: MultiResource::new(config.nodes.max(1) * 4),
            engine,
            receipts: VecDeque::new(),
            apply_overhead_us,
            config,
        }
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        for (k, v) in records {
            self.engine.put(k.clone(), v.clone());
        }
    }

    fn submit(&mut self, txn: Transaction, arrival: Timestamp) {
        let c = &self.config.costs;
        if txn.is_read_only() {
            let mut cost = 0;
            let mut reads = Vec::new();
            for op in txn.ops.iter().filter(|o| o.reads()) {
                let value = self.engine.get(&op.key);
                // B+ tree / LSM probe cost scaled by structural depth.
                cost += (c.storage_get_us(value.as_ref().map_or(64, Value::len)) / 4)
                    * self.engine.read_amplification(&op.key).max(1) as u64
                    / 2
                    + 20;
                reads.push((op.key.clone(), value));
            }
            let (_, done) = self.readers.schedule(arrival, cost.max(1));
            let finish = done + self.config.network.base_latency_us;
            let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
            receipt.reads = reads;
            receipt.phase_latencies = vec![("storage-get", cost)];
            self.receipts.push_back(receipt);
            return;
        }
        // Write path: the operation is appended to the Raft log (batched with
        // its neighbours), then applied serially at the leader.
        let bytes = txn.payload_bytes();
        let batch = self.config.raft_batch.max(1);
        let occupancy = (self.raft.leader_occupancy_us(bytes * batch) / batch as u64).max(1);
        let replication_latency = self.raft.commit_latency_us(bytes + 64);
        let mut apply_cost = self.apply_overhead_us;
        for op in txn.ops.iter().filter(|o| o.writes()) {
            let value = op.value.clone().unwrap_or_else(|| Value::filler(1));
            apply_cost += c.storage_put_us(value.len());
            self.engine.put(op.key.clone(), value);
        }
        let (_, applied) = self.apply.schedule(arrival, occupancy + apply_cost);
        let finish = applied + replication_latency + self.config.network.base_latency_us;
        let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
        receipt.phase_latencies = vec![
            ("apply", occupancy + apply_cost),
            ("replication", replication_latency),
        ];
        self.receipts.push_back(receipt);
    }
}

/// The etcd model: B+ tree storage, single Raft group.
pub struct Etcd {
    inner: KvSystem<BPlusTree>,
}

impl Etcd {
    /// Build an etcd deployment.
    pub fn new(config: EtcdConfig) -> Self {
        Etcd {
            inner: KvSystem::new(config, BPlusTree::new(), 18),
        }
    }
}

impl TransactionalSystem for Etcd {
    fn kind(&self) -> SystemKind {
        SystemKind::Etcd
    }
    fn load(&mut self, records: &[(Key, Value)]) {
        self.inner.load(records);
    }
    fn submit(&mut self, txn: Transaction, arrival: Timestamp) {
        self.inner.submit(txn, arrival);
    }
    fn flush(&mut self, _now: Timestamp) {}
    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.inner.receipts.drain(..).collect()
    }
    fn footprint(&self) -> StorageBreakdown {
        self.inner.engine.footprint()
    }
    fn node_count(&self) -> usize {
        self.inner.config.nodes
    }
}

/// The standalone TiKV model: LSM storage, Raft replication, no SQL or
/// transaction layer on top.
pub struct Tikv {
    inner: KvSystem<LsmTree>,
}

impl Tikv {
    /// Build a standalone TiKV deployment.
    pub fn new(config: EtcdConfig) -> Self {
        Tikv {
            inner: KvSystem::new(config, LsmTree::new(), 30),
        }
    }
}

impl TransactionalSystem for Tikv {
    fn kind(&self) -> SystemKind {
        SystemKind::Tikv
    }
    fn load(&mut self, records: &[(Key, Value)]) {
        self.inner.load(records);
    }
    fn submit(&mut self, txn: Transaction, arrival: Timestamp) {
        self.inner.submit(txn, arrival);
    }
    fn flush(&mut self, _now: Timestamp) {}
    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.inner.receipts.drain(..).collect()
    }
    fn footprint(&self) -> StorageBreakdown {
        self.inner.engine.footprint()
    }
    fn node_count(&self) -> usize {
        self.inner.config.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn write(seq: u64, key: &str, size: usize) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::write(Key::from_str(key), Value::filler(size))],
        )
    }

    fn read(seq: u64, key: &str) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::read(Key::from_str(key))],
        )
    }

    #[test]
    fn etcd_writes_commit_with_millisecond_latency() {
        let mut e = Etcd::new(EtcdConfig::default());
        for seq in 0..100 {
            e.submit(write(seq, &format!("k{seq}"), 1000), seq * 500);
        }
        let receipts = e.drain_receipts();
        assert_eq!(receipts.len(), 100);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        let mean: u64 = receipts.iter().map(TxnReceipt::latency_us).sum::<u64>() / 100;
        assert!(mean < 10_000, "mean write latency {mean} µs");
    }

    #[test]
    fn etcd_reads_are_sub_millisecond() {
        let mut e = Etcd::new(EtcdConfig::default());
        e.load(&[(Key::from_str("k"), Value::filler(1000))]);
        e.submit(read(1, "k"), 0);
        let r = &e.drain_receipts()[0];
        assert!(r.latency_us() < 1_000, "latency {}", r.latency_us());
        assert_eq!(r.reads[0].1.as_ref().unwrap().len(), 1000);
    }

    #[test]
    fn etcd_outpaces_a_serial_blockchain_on_the_same_workload() {
        let n = 500u64;
        let mut e = Etcd::new(EtcdConfig::default());
        for seq in 0..n {
            e.submit(write(seq, &format!("k{}", seq % 100), 1000), seq * 20);
        }
        let receipts = e.drain_receipts();
        let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
        let etcd_tps = n as f64 / (last as f64 / 1e6);
        // The paper's Figure 4a: etcd ≈ 16.8 k tps vs Quorum ≈ 245 tps. Here
        // we only require the model to sustain a clearly database-class rate.
        assert!(etcd_tps > 3_000.0, "etcd {etcd_tps:.0} tps");
    }

    #[test]
    fn tikv_behaves_like_etcd_but_with_lsm_storage() {
        let mut t = Tikv::new(EtcdConfig::default());
        for seq in 0..50 {
            t.submit(write(seq, &format!("k{seq}"), 1000), seq * 100);
        }
        let receipts = t.drain_receipts();
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        assert_eq!(t.kind(), SystemKind::Tikv);
        assert!(t.footprint().payload_bytes > 0);
    }

    #[test]
    fn throughput_degrades_as_the_raft_group_grows() {
        let tput = |nodes: usize| {
            let mut e = Etcd::new(EtcdConfig {
                nodes,
                ..EtcdConfig::default()
            });
            let n = 1000u64;
            for seq in 0..n {
                e.submit(write(seq, &format!("k{}", seq % 100), 1000), seq * 10);
            }
            let receipts = e.drain_receipts();
            let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
            n as f64 / (last as f64 / 1e6)
        };
        let small = tput(3);
        let large = tput(19);
        assert!(small > large, "3 nodes {small:.0} vs 19 nodes {large:.0}");
    }
}
