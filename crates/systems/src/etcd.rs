//! The etcd model (NoSQL key-value store over a single Raft group and a
//! BoltDB-style B+ tree) and the standalone TiKV model (the replicated LSM
//! storage layer of TiDB, measured separately in Figure 4).
//!
//! Both replicate *storage operations* (not transactions) through one Raft
//! group, apply them serially at the leader, and serve linearizable reads
//! from the leader without consensus. Neither runs a SQL layer, a
//! transaction coordinator, client authentication, or an authenticated
//! index — which is exactly why they top Figure 4.
//!
//! Event pipeline (propose → apply → replicate): an arriving write is
//! proposed into the leader's Raft batch and queued on the serial apply
//! process; the `Applied` stage event fires when the apply completes, at
//! which point the write lands in the storage engine and the receipt is
//! stamped with the replication round trip. A [`FaultPlan`] on the config
//! makes the leader crash-stop: writes arriving (or due to start) inside a
//! crash window stall until the crash heals plus a failover pause, which is
//! what the crash-and-recover scenario measures.

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{AbortReason, Key, NodeId, Timestamp, Transaction, TxnReceipt, Value};
use dichotomy_consensus::{ProtocolKind, ReplicationProfile};
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig, ProcessId, StageEvent};
use dichotomy_storage::{BPlusTree, KvEngine, LsmTree};

use crate::pipeline::{
    Completion, Engine, ReceiptLog, SysEvent, SystemKind, TokenMap, TransactionalSystem,
};

/// Configuration shared by the etcd and TiKV models.
#[derive(Debug, Clone)]
pub struct EtcdConfig {
    /// Number of replicas in the Raft group.
    pub nodes: usize,
    /// How many operations the leader batches into one Raft proposal.
    pub raft_batch: usize,
    /// Fault schedule. Crashing the leader (node 0) stalls the replicated
    /// write path until the crash heals plus `failover_us`.
    pub faults: FaultPlan,
    /// Leader re-election pause charged after a leader crash heals.
    pub failover_us: u64,
    /// Network model.
    pub network: NetworkConfig,
    /// CPU cost model.
    pub costs: CostModel,
}

impl Default for EtcdConfig {
    fn default() -> Self {
        EtcdConfig {
            nodes: 3,
            raft_batch: 32,
            faults: FaultPlan::none(),
            failover_us: 10_000,
            network: NetworkConfig::lan_1gbps(),
            costs: CostModel::calibrated(),
        }
    }
}

/// The Raft leader the fault plan can crash.
const LEADER: NodeId = NodeId(0);

/// Stage: a write finished its serial apply at the leader.
const ST_APPLIED: u32 = 0;

/// A write waiting for its `Applied` stage event.
struct PendingWrite {
    txn: Transaction,
    arrival: Timestamp,
    /// Raft-batch occupancy plus engine-write cost (the "apply" phase).
    apply_us: u64,
}

/// Engine process handles, created at attach time.
#[derive(Clone, Copy)]
struct KvProcs {
    /// The leader's serial apply loop.
    apply: ProcessId,
    /// Read-serving capacity (reads do not go through consensus).
    readers: ProcessId,
}

/// Shared machinery for both storage-replicated KV systems.
struct KvSystem<E: KvEngine> {
    config: EtcdConfig,
    raft: ReplicationProfile,
    procs: Option<KvProcs>,
    store: E,
    receipts: ReceiptLog,
    pending: TokenMap<PendingWrite>,
    /// Fixed per-operation apply cost beyond the engine write (grpc, fsync
    /// amortized across the raft batch).
    apply_overhead_us: u64,
}

impl<E: KvEngine> KvSystem<E> {
    fn new(config: EtcdConfig, store: E, apply_overhead_us: u64) -> Self {
        let raft = ReplicationProfile::new(
            ProtocolKind::Raft,
            config.nodes,
            config.network.clone(),
            config.costs.clone(),
        );
        KvSystem {
            raft,
            procs: None,
            store,
            receipts: ReceiptLog::new(),
            pending: TokenMap::new(),
            apply_overhead_us,
            config,
        }
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.procs = Some(KvProcs {
            apply: engine.add_process("kv-apply", 1),
            readers: engine.add_process("kv-readers", self.config.nodes.max(1) * 4),
        });
    }

    fn procs(&self) -> KvProcs {
        self.procs.expect("system not attached to an engine")
    }

    /// When a write wanting to start at `t` may actually enter the apply
    /// pipeline: `None` while the leader is permanently down, `Some(t)` when
    /// no crash interferes, otherwise the heal time plus the failover pause.
    fn crash_release(&self, t: Timestamp) -> Option<Timestamp> {
        match self.config.faults.crashed_until(LEADER, t) {
            None => Some(t),
            Some(Some(heal)) => Some(heal + self.config.failover_us),
            Some(None) => None,
        }
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        let arrival = engine.now();
        let c = &self.config.costs;
        if txn.is_read_only() {
            let mut cost = 0;
            let mut reads = Vec::new();
            for op in txn.ops.iter().filter(|o| o.reads()) {
                let value = self.store.get(&op.key);
                // B+ tree / LSM probe cost scaled by structural depth.
                cost += (c.storage_get_us(value.as_ref().map_or(64, Value::len)) / 4)
                    * self.store.read_amplification(&op.key).max(1) as u64
                    / 2
                    + 20;
                reads.push((op.key.clone(), value));
            }
            let (_, done) = engine.service(self.procs().readers, arrival, cost.max(1));
            let finish = done + self.config.network.base_latency_us;
            let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
            receipt.reads = reads;
            receipt.phase_latencies = vec![("storage-get", cost)];
            self.receipts.push_back(receipt);
            return;
        }
        // Write path: the operation is proposed into the Raft log (batched
        // with its neighbours) and queued on the leader's serial apply loop;
        // the Applied stage fires when that completes. A crash window over
        // the leader pushes the start past heal + failover — iterate because
        // the queueing delay itself can land the start inside a crash. Fail
        // closed: a fault plan that chains more crash windows than the
        // iteration budget resolves is treated like an unavailable leader
        // rather than silently committing inside a crash.
        let mut start_at = arrival;
        let mut settled = false;
        for _ in 0..16 {
            let predicted_start = start_at + engine.queue_delay(self.procs().apply, start_at);
            match self.crash_release(predicted_start) {
                None => break, // permanently down
                Some(release) if release > predicted_start => start_at = release,
                Some(_) => {
                    settled = true;
                    break;
                }
            }
        }
        if !settled {
            // Leader permanently down (or crash windows beyond the budget):
            // the request times out.
            let finish = arrival + self.config.network.base_latency_us * 4;
            self.receipts.push_back(TxnReceipt::aborted(
                txn.id,
                AbortReason::Overload,
                arrival,
                finish,
            ));
            return;
        }
        let bytes = txn.payload_bytes();
        let batch = self.config.raft_batch.max(1);
        let occupancy = (self.raft.leader_occupancy_us(bytes * batch) / batch as u64).max(1);
        let mut apply_cost = self.apply_overhead_us;
        for op in txn.ops.iter().filter(|o| o.writes()) {
            let len = op.value.as_ref().map_or(1, Value::len).max(1);
            apply_cost += c.storage_put_us(len);
        }
        let apply_us = occupancy + apply_cost;
        let (_, applied) = engine.service(self.procs().apply, start_at, apply_us);
        let token = self.pending.insert(PendingWrite {
            txn,
            arrival,
            apply_us,
        });
        engine.schedule_at(applied, SysEvent::stage(ST_APPLIED, token));
    }

    fn on_stage(&mut self, event: StageEvent, engine: &mut Engine) {
        debug_assert_eq!(event.stage, ST_APPLIED);
        let PendingWrite {
            txn,
            arrival,
            apply_us,
        } = self.pending.remove(event.token);
        // The apply is done: the write becomes visible, and the receipt pays
        // the replication round trip on top.
        for op in txn.ops.iter().filter(|o| o.writes()) {
            let value = op.value.clone().unwrap_or_else(|| Value::filler(1));
            self.store.put(op.key.clone(), value);
        }
        let replication_latency = self.raft.commit_latency_us(txn.payload_bytes() + 64);
        let finish = engine.now() + replication_latency + self.config.network.base_latency_us;
        let mut receipt = TxnReceipt::committed(txn.id, arrival, finish);
        receipt.phase_latencies = vec![("apply", apply_us), ("replication", replication_latency)];
        self.receipts.push_back(receipt);
    }
}

/// The etcd model: B+ tree storage, single Raft group.
pub struct Etcd {
    inner: KvSystem<BPlusTree>,
}

impl Etcd {
    /// Build an etcd deployment.
    pub fn new(config: EtcdConfig) -> Self {
        Etcd {
            inner: KvSystem::new(config, BPlusTree::new(), 18),
        }
    }
}

impl TransactionalSystem for Etcd {
    fn kind(&self) -> SystemKind {
        SystemKind::Etcd
    }
    fn load(&mut self, records: &[(Key, Value)]) {
        for (k, v) in records {
            self.inner.store.put(k.clone(), v.clone());
        }
    }
    fn attach(&mut self, engine: &mut Engine) {
        self.inner.attach(engine);
    }
    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        self.inner.on_arrival(txn, engine);
    }
    fn on_stage(&mut self, event: StageEvent, engine: &mut Engine) {
        self.inner.on_stage(event, engine);
    }
    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.inner.receipts.drain()
    }
    fn take_completions(&mut self) -> Vec<Completion> {
        self.inner.receipts.take_completions()
    }
    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.inner.receipts.swap_completions(buf)
    }
    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.inner.receipts.swap_receipts(buf)
    }
    fn footprint(&self) -> StorageBreakdown {
        self.inner.store.footprint()
    }
    fn node_count(&self) -> usize {
        self.inner.config.nodes
    }
}

/// The standalone TiKV model: LSM storage, Raft replication, no SQL or
/// transaction layer on top.
pub struct Tikv {
    inner: KvSystem<LsmTree>,
}

impl Tikv {
    /// Build a standalone TiKV deployment.
    pub fn new(config: EtcdConfig) -> Self {
        Tikv {
            inner: KvSystem::new(config, LsmTree::new(), 30),
        }
    }
}

impl TransactionalSystem for Tikv {
    fn kind(&self) -> SystemKind {
        SystemKind::Tikv
    }
    fn load(&mut self, records: &[(Key, Value)]) {
        for (k, v) in records {
            self.inner.store.put(k.clone(), v.clone());
        }
    }
    fn attach(&mut self, engine: &mut Engine) {
        self.inner.attach(engine);
    }
    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        self.inner.on_arrival(txn, engine);
    }
    fn on_stage(&mut self, event: StageEvent, engine: &mut Engine) {
        self.inner.on_stage(event, engine);
    }
    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        self.inner.receipts.drain()
    }
    fn take_completions(&mut self) -> Vec<Completion> {
        self.inner.receipts.take_completions()
    }
    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.inner.receipts.swap_completions(buf)
    }
    fn drain_receipts_into(&mut self, buf: &mut Vec<TxnReceipt>) {
        self.inner.receipts.swap_receipts(buf)
    }
    fn footprint(&self) -> StorageBreakdown {
        self.inner.store.footprint()
    }
    fn node_count(&self) -> usize {
        self.inner.config.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::drive_arrivals;
    use dichotomy_common::{ClientId, Operation, TxnId};
    use dichotomy_simnet::NodeFault;

    fn write(seq: u64, key: &str, size: usize) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::write(Key::from_str(key), Value::filler(size))],
        )
    }

    fn read(seq: u64, key: &str) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::read(Key::from_str(key))],
        )
    }

    #[test]
    fn etcd_writes_commit_with_millisecond_latency() {
        let mut e = Etcd::new(EtcdConfig::default());
        let receipts = drive_arrivals(
            &mut e,
            (0..100).map(|seq| (write(seq, &format!("k{seq}"), 1000), seq * 500)),
        );
        assert_eq!(receipts.len(), 100);
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        let mean: u64 = receipts.iter().map(TxnReceipt::latency_us).sum::<u64>() / 100;
        assert!(mean < 10_000, "mean write latency {mean} µs");
    }

    #[test]
    fn etcd_reads_are_sub_millisecond() {
        let mut e = Etcd::new(EtcdConfig::default());
        e.load(&[(Key::from_str("k"), Value::filler(1000))]);
        let receipts = drive_arrivals(&mut e, vec![(read(1, "k"), 0)]);
        let r = &receipts[0];
        assert!(r.latency_us() < 1_000, "latency {}", r.latency_us());
        assert_eq!(r.reads[0].1.as_ref().unwrap().len(), 1000);
    }

    #[test]
    fn etcd_outpaces_a_serial_blockchain_on_the_same_workload() {
        let n = 500u64;
        let mut e = Etcd::new(EtcdConfig::default());
        let receipts = drive_arrivals(
            &mut e,
            (0..n).map(|seq| (write(seq, &format!("k{}", seq % 100), 1000), seq * 20)),
        );
        let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
        let etcd_tps = n as f64 / (last as f64 / 1e6);
        // The paper's Figure 4a: etcd ≈ 16.8 k tps vs Quorum ≈ 245 tps. Here
        // we only require the model to sustain a clearly database-class rate.
        assert!(etcd_tps > 3_000.0, "etcd {etcd_tps:.0} tps");
    }

    #[test]
    fn tikv_behaves_like_etcd_but_with_lsm_storage() {
        let mut t = Tikv::new(EtcdConfig::default());
        let receipts = drive_arrivals(
            &mut t,
            (0..50).map(|seq| (write(seq, &format!("k{seq}"), 1000), seq * 100)),
        );
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        assert_eq!(t.kind(), SystemKind::Tikv);
        assert!(t.footprint().payload_bytes > 0);
    }

    #[test]
    fn throughput_degrades_as_the_raft_group_grows() {
        let tput = |nodes: usize| {
            let mut e = Etcd::new(EtcdConfig {
                nodes,
                ..EtcdConfig::default()
            });
            let n = 1000u64;
            let receipts = drive_arrivals(
                &mut e,
                (0..n).map(|seq| (write(seq, &format!("k{}", seq % 100), 1000), seq * 10)),
            );
            let last = receipts.iter().map(|r| r.finish_time).max().unwrap();
            n as f64 / (last as f64 / 1e6)
        };
        let small = tput(3);
        let large = tput(19);
        assert!(small > large, "3 nodes {small:.0} vs 19 nodes {large:.0}");
    }

    #[test]
    fn a_leader_crash_stalls_writes_until_heal_plus_failover() {
        let mut faults = FaultPlan::none();
        faults.add(NodeFault::crash_until(LEADER, 10_000, 60_000));
        let mut e = Etcd::new(EtcdConfig {
            faults,
            failover_us: 5_000,
            ..EtcdConfig::default()
        });
        // One write well before the crash, one inside the window.
        let receipts = drive_arrivals(
            &mut e,
            vec![
                (write(1, "a", 100), 1_000),
                (write(2, "b", 100), 20_000),
                (write(3, "c", 100), 120_000),
            ],
        );
        assert!(receipts.iter().all(|r| r.status.is_committed()));
        let by_seq = |seq: u64| {
            receipts
                .iter()
                .find(|r| r.txn_id.seq == seq)
                .expect("receipt")
        };
        assert!(by_seq(1).finish_time < 10_000, "pre-crash write unaffected");
        // The mid-crash write cannot finish before heal (60 ms) + failover.
        assert!(
            by_seq(2).finish_time >= 65_000,
            "stalled write finished at {}",
            by_seq(2).finish_time
        );
        assert!(by_seq(3).latency_us() < 10_000, "post-heal write recovered");
    }

    #[test]
    fn a_permanent_leader_crash_rejects_writes() {
        let mut faults = FaultPlan::none();
        faults.add(NodeFault::crash(LEADER, 5_000));
        let mut e = Etcd::new(EtcdConfig {
            faults,
            ..EtcdConfig::default()
        });
        let receipts = drive_arrivals(&mut e, vec![(write(1, "a", 100), 10_000)]);
        assert_eq!(
            receipts[0].status,
            dichotomy_common::TxnStatus::Aborted(AbortReason::Overload)
        );
    }
}
