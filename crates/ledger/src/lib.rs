//! The append-only, hash-chained ledger (Section 3.3.1).
//!
//! Every blockchain model in the workspace commits blocks into a [`Ledger`]:
//! a chain whose integrity can be re-verified end to end, whose storage
//! footprint counts as *history* (this is the "significant storage overhead"
//! of Figure 12), and which records, per transaction, enough metadata to
//! support the verifiability arguments of Section 3.1.1 (client signature,
//! block height, validation flag).

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{Block, Hash, NodeId, Timestamp, Transaction, TxnId};

/// Validation outcome recorded next to each transaction in a block (Fabric
/// marks invalid transactions in the block rather than removing them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnValidationFlag {
    /// The transaction's effects were applied to the state.
    Valid,
    /// The transaction was recorded but its effects were discarded
    /// (e.g. MVCC validation failure in Fabric).
    Invalid,
}

/// A committed block plus the per-transaction validation flags.
#[derive(Debug, Clone)]
pub struct CommittedBlock {
    /// The block as agreed by consensus.
    pub block: Block,
    /// One flag per transaction, same order as `block.txns`.
    pub flags: Vec<TxnValidationFlag>,
    /// When the block was committed locally (simulated µs).
    pub commit_time: Timestamp,
}

/// Errors returned when appending to the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The block's `prev_hash` does not match the current tip.
    BrokenChain { expected: Hash, found: Hash },
    /// The block height is not `tip_height + 1`.
    WrongHeight { expected: u64, found: u64 },
    /// The block body does not match its header digest.
    BadTxnsDigest,
    /// The number of flags does not match the number of transactions.
    FlagMismatch,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::BrokenChain { expected, found } => {
                write!(
                    f,
                    "broken chain: expected prev {expected:?}, found {found:?}"
                )
            }
            LedgerError::WrongHeight { expected, found } => {
                write!(f, "wrong height: expected {expected}, found {found}")
            }
            LedgerError::BadTxnsDigest => write!(f, "block body does not match header digest"),
            LedgerError::FlagMismatch => write!(f, "validation flag count mismatch"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// The hash-chained ledger of one node.
#[derive(Debug)]
pub struct Ledger {
    blocks: Vec<CommittedBlock>,
    /// Total committed transactions (valid + invalid).
    txn_count: u64,
    valid_txn_count: u64,
}

impl Default for Ledger {
    fn default() -> Self {
        Self::new(NodeId(0))
    }
}

impl Ledger {
    /// A ledger holding only the genesis block produced by `proposer`.
    pub fn new(proposer: NodeId) -> Self {
        Ledger {
            blocks: vec![CommittedBlock {
                block: Block::genesis(proposer),
                flags: Vec::new(),
                commit_time: 0,
            }],
            txn_count: 0,
            valid_txn_count: 0,
        }
    }

    /// Height of the chain tip.
    pub fn tip_height(&self) -> u64 {
        self.blocks
            .last()
            .expect("genesis always present")
            .block
            .header
            .height
    }

    /// Hash of the chain tip.
    pub fn tip_hash(&self) -> Hash {
        self.blocks
            .last()
            .expect("genesis always present")
            .block
            .hash()
    }

    /// Number of blocks including genesis.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total transactions recorded (valid and invalid).
    pub fn txn_count(&self) -> u64 {
        self.txn_count
    }

    /// Transactions recorded as valid.
    pub fn valid_txn_count(&self) -> u64 {
        self.valid_txn_count
    }

    /// Append a block with its validation flags, enforcing chain integrity.
    pub fn append(
        &mut self,
        block: Block,
        flags: Vec<TxnValidationFlag>,
        commit_time: Timestamp,
    ) -> Result<(), LedgerError> {
        let expected_height = self.tip_height() + 1;
        if block.header.height != expected_height {
            return Err(LedgerError::WrongHeight {
                expected: expected_height,
                found: block.header.height,
            });
        }
        let expected_prev = self.tip_hash();
        if block.header.prev_hash != expected_prev {
            return Err(LedgerError::BrokenChain {
                expected: expected_prev,
                found: block.header.prev_hash,
            });
        }
        if !block.verify_txns_digest() {
            return Err(LedgerError::BadTxnsDigest);
        }
        if flags.len() != block.txns.len() {
            return Err(LedgerError::FlagMismatch);
        }
        self.txn_count += block.txns.len() as u64;
        self.valid_txn_count += flags
            .iter()
            .filter(|f| **f == TxnValidationFlag::Valid)
            .count() as u64;
        self.blocks.push(CommittedBlock {
            block,
            flags,
            commit_time,
        });
        Ok(())
    }

    /// Convenience: assemble and append a block of `txns` (all flagged valid)
    /// proposed by `proposer` at `time`, optionally committing a state root.
    pub fn append_txns(
        &mut self,
        txns: Vec<Transaction>,
        proposer: NodeId,
        time: Timestamp,
        state_root: Option<Hash>,
    ) -> Result<&CommittedBlock, LedgerError> {
        let flags = vec![TxnValidationFlag::Valid; txns.len()];
        let block = Block::assemble(
            self.tip_height() + 1,
            self.tip_hash(),
            txns,
            proposer,
            time,
            state_root,
        );
        self.append(block, flags, time)?;
        Ok(self.blocks.last().expect("just appended"))
    }

    /// The committed block at `height`, if present.
    pub fn block_at(&self, height: u64) -> Option<&CommittedBlock> {
        self.blocks.get(height as usize)
    }

    /// Find the block height containing the given transaction id (historical
    /// query — the ability databases lack per Section 3.3.1).
    pub fn find_txn(&self, id: TxnId) -> Option<(u64, &Transaction)> {
        for cb in &self.blocks {
            for txn in &cb.block.txns {
                if txn.id == id {
                    return Some((cb.block.header.height, txn));
                }
            }
        }
        None
    }

    /// Re-verify the whole chain: heights, hash links and body digests.
    /// Returns the height of the first broken block, or `None` if intact.
    pub fn verify_chain(&self) -> Option<u64> {
        for w in self.blocks.windows(2) {
            let (prev, next) = (&w[0].block, &w[1].block);
            if next.header.height != prev.header.height + 1
                || next.header.prev_hash != prev.hash()
                || !next.verify_txns_digest()
            {
                return Some(next.header.height);
            }
        }
        None
    }

    /// Iterate over committed blocks in order.
    pub fn blocks(&self) -> impl Iterator<Item = &CommittedBlock> {
        self.blocks.iter()
    }

    /// Test hook: tamper with a stored transaction to demonstrate that
    /// [`verify_chain`](Self::verify_chain) catches it.
    #[doc(hidden)]
    pub fn tamper_for_test(&mut self, height: u64) {
        if let Some(cb) = self.blocks.get_mut(height as usize) {
            if let Some(txn) = cb.block.txns.first_mut() {
                txn.ops.clear();
            }
        }
    }
}

impl StorageFootprint for Ledger {
    fn footprint(&self) -> StorageBreakdown {
        // Blocks (headers + full transaction envelopes + per-txn flag byte)
        // are pure history: the state they produce lives in the state storage
        // of the system that owns this ledger.
        let history: u64 = self
            .blocks
            .iter()
            .map(|cb| cb.block.wire_bytes() as u64 + cb.flags.len() as u64)
            .sum();
        StorageBreakdown {
            payload_bytes: 0,
            index_bytes: 0,
            history_bytes: history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Key, Operation, Value};

    fn txn(seq: u64, size: usize) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::write(
                Key::from_str(&format!("k{seq}")),
                Value::filler(size),
            )],
        )
    }

    #[test]
    fn genesis_only_ledger() {
        let l = Ledger::new(NodeId(0));
        assert_eq!(l.tip_height(), 0);
        assert_eq!(l.block_count(), 1);
        assert_eq!(l.txn_count(), 0);
        assert_eq!(l.verify_chain(), None);
    }

    #[test]
    fn append_txns_grows_the_chain() {
        let mut l = Ledger::new(NodeId(0));
        l.append_txns(vec![txn(1, 10), txn(2, 10)], NodeId(0), 100, None)
            .unwrap();
        l.append_txns(vec![txn(3, 10)], NodeId(1), 200, None)
            .unwrap();
        assert_eq!(l.tip_height(), 2);
        assert_eq!(l.txn_count(), 3);
        assert_eq!(l.valid_txn_count(), 3);
        assert_eq!(l.verify_chain(), None);
        let (h, t) = l.find_txn(TxnId::new(ClientId(1), 3)).unwrap();
        assert_eq!(h, 2);
        assert_eq!(t.id.seq, 3);
        assert!(l.find_txn(TxnId::new(ClientId(9), 9)).is_none());
    }

    #[test]
    fn append_rejects_wrong_height_and_broken_chain() {
        let mut l = Ledger::new(NodeId(0));
        let bogus = Block::assemble(5, l.tip_hash(), vec![], NodeId(0), 0, None);
        assert!(matches!(
            l.append(bogus, vec![], 0),
            Err(LedgerError::WrongHeight {
                expected: 1,
                found: 5
            })
        ));
        let unlinked = Block::assemble(1, Hash::of(b"nope"), vec![], NodeId(0), 0, None);
        assert!(matches!(
            l.append(unlinked, vec![], 0),
            Err(LedgerError::BrokenChain { .. })
        ));
    }

    #[test]
    fn append_rejects_tampered_body_and_flag_mismatch() {
        let mut l = Ledger::new(NodeId(0));
        let mut block = Block::assemble(1, l.tip_hash(), vec![txn(1, 10)], NodeId(0), 0, None);
        block.txns.push(txn(2, 10));
        assert_eq!(
            l.append(block, vec![TxnValidationFlag::Valid; 2], 0),
            Err(LedgerError::BadTxnsDigest)
        );

        let ok_block = Block::assemble(1, l.tip_hash(), vec![txn(1, 10)], NodeId(0), 0, None);
        assert_eq!(
            l.append(ok_block, vec![], 0),
            Err(LedgerError::FlagMismatch)
        );
    }

    #[test]
    fn invalid_flags_are_counted_separately() {
        let mut l = Ledger::new(NodeId(0));
        let block = Block::assemble(
            1,
            l.tip_hash(),
            vec![txn(1, 10), txn(2, 10)],
            NodeId(0),
            0,
            None,
        );
        l.append(
            block,
            vec![TxnValidationFlag::Valid, TxnValidationFlag::Invalid],
            0,
        )
        .unwrap();
        assert_eq!(l.txn_count(), 2);
        assert_eq!(l.valid_txn_count(), 1);
    }

    #[test]
    fn verify_chain_detects_tampering() {
        let mut l = Ledger::new(NodeId(0));
        for i in 1..=5 {
            l.append_txns(vec![txn(i, 50)], NodeId(0), i * 100, None)
                .unwrap();
        }
        assert_eq!(l.verify_chain(), None);
        l.tamper_for_test(3);
        assert_eq!(l.verify_chain(), Some(3));
    }

    #[test]
    fn footprint_is_history_and_grows_with_record_size() {
        let mut small = Ledger::new(NodeId(0));
        let mut large = Ledger::new(NodeId(0));
        for i in 1..=10 {
            small
                .append_txns(vec![txn(i, 10)], NodeId(0), i, None)
                .unwrap();
            large
                .append_txns(vec![txn(i, 5000)], NodeId(0), i, None)
                .unwrap();
        }
        let fs = small.footprint();
        let fl = large.footprint();
        assert_eq!(fs.payload_bytes, 0);
        assert!(fl.history_bytes > fs.history_bytes + 10 * 4900);
    }

    #[test]
    fn block_at_and_iteration() {
        let mut l = Ledger::new(NodeId(0));
        l.append_txns(vec![txn(1, 10)], NodeId(0), 1, None).unwrap();
        assert!(l.block_at(0).is_some());
        assert!(l.block_at(1).is_some());
        assert!(l.block_at(2).is_none());
        assert_eq!(l.blocks().count(), 2);
    }
}
