//! Exhaustive Encode⇄Decode round-trip over every `Decode`-bearing type the
//! measurement layer defines: `LatencySummary`, `Metrics`, `TimeWindow`,
//! `TimeSeries`, `OracleOutcome`, `OracleReport`, `RowSeries` and the full
//! `ProbeResult` nesting the persistent probe cache stores. (The base codec
//! types live in `crates/common/tests/codec_roundtrip.rs`; the
//! `dichotomy-lint` D001/D002 checks keep this enumeration honest — a codec
//! impl that drops a field is a deny finding at the source level.)

use std::collections::BTreeMap;

use dichotomy_core::chaos::{OracleOutcome, OracleReport};
use dichotomy_core::common::size::StorageBreakdown;
use dichotomy_core::common::{AbortReason, Decode, Encode};
use dichotomy_core::experiments::RowSeries;
use dichotomy_core::scenario::ProbeResult;
use dichotomy_core::{LatencySummary, Metrics, TimeSeries, TimeWindow};

fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
    let bytes = value.encode();
    let decoded = T::decode(&bytes).expect("decode of a canonical encoding");
    assert_eq!(decoded, value);
    assert_eq!(decoded.encode(), bytes, "re-encoding must be byte-stable");
}

fn sample_latency() -> LatencySummary {
    LatencySummary {
        mean_us: 812.25,
        p50_us: 640,
        p95_us: 2_100,
        p99_us: 4_400,
        max_us: 9_999,
    }
}

fn sample_metrics() -> Metrics {
    Metrics {
        committed: 1_234,
        aborts: BTreeMap::from([(AbortReason::LockConflict, 17), (AbortReason::Overload, 3)]),
        throughput_tps: 2_468.5,
        latency: sample_latency(),
        phase_means_us: BTreeMap::from([("execute", 480.0), ("order", 1_200.5)]),
        duration_us: 5_000_000,
    }
}

fn sample_window(start: u64) -> TimeWindow {
    TimeWindow {
        start_us: start,
        end_us: start + 100_000,
        submitted: 120,
        committed: 100,
        aborted: 5,
        offered_tps: 1_200.0,
        throughput_tps: 1_000.0,
        abort_rate_percent: 4.76,
        latency: sample_latency(),
    }
}

fn sample_series() -> TimeSeries {
    TimeSeries {
        window_us: 100_000,
        warmup_us: 50_000,
        windows: vec![sample_window(50_000), sample_window(150_000)],
    }
}

fn sample_oracles() -> OracleReport {
    OracleReport {
        outcomes: vec![
            OracleOutcome {
                name: "receipt-conservation",
                violation: None,
            },
            OracleOutcome {
                name: "commit-order",
                violation: Some("version 7 observed before 6".to_string()),
            },
        ],
    }
}

#[test]
fn latency_summary() {
    roundtrip(LatencySummary::default());
    roundtrip(sample_latency());
}

#[test]
fn metrics_with_abort_and_phase_maps() {
    roundtrip(Metrics::default());
    roundtrip(sample_metrics());
}

#[test]
fn time_window_and_series() {
    roundtrip(sample_window(0));
    roundtrip(TimeSeries::default());
    roundtrip(sample_series());
}

#[test]
fn oracle_outcome_and_report() {
    roundtrip(OracleOutcome {
        name: "clamp-free-queueing",
        violation: None,
    });
    roundtrip(OracleReport::default());
    roundtrip(sample_oracles());
}

#[test]
fn row_series() {
    roundtrip(RowSeries {
        name: "etcd".to_string(),
        events_clamped: 0,
        oracles: sample_oracles(),
        series: sample_series(),
    });
}

#[test]
fn probe_result_full_nesting() {
    // The exact shape the persistent probe cache persists: every layer of
    // the result, populated, through one round-trip.
    roundtrip(ProbeResult {
        metrics: sample_metrics(),
        footprint: StorageBreakdown {
            payload_bytes: 10_000_000,
            index_bytes: 1_500_000,
            history_bytes: 42_000_000,
        },
        records: 5_000,
        extras: vec![("size_mb".to_string(), 51.2), ("knee".to_string(), 2_000.0)],
        series: Some(RowSeries {
            name: "TiDB".to_string(),
            events_clamped: 2,
            oracles: sample_oracles(),
            series: sample_series(),
        }),
    });
    // The sparse form (non-driving probes) must round-trip too.
    roundtrip(ProbeResult {
        metrics: Metrics::default(),
        footprint: StorageBreakdown::default(),
        records: 0,
        extras: Vec::new(),
        series: None,
    });
}
