//! Every semantic plan-lint code (`S0xx`) proven live against a synthetic
//! scenario, plus the zero-finding baseline a well-formed scenario must hit.
//! The real experiments are covered end-to-end by `repro lint` in ci.sh;
//! these tests pin the *detectors* themselves.

use dichotomy_core::common::{Diagnostic, NodeId, Severity};
use dichotomy_core::scenario::{ColumnSpec, Metric, Scenario, SystemEntry};
use dichotomy_core::simnet::{FaultPlan, NodeFault};
use dichotomy_core::systems::{SystemKind, SystemSpec};
use dichotomy_core::workload::{WorkloadSpec, YcsbMix};
use dichotomy_core::{lint_plan, lint_scenario, ArrivalSpec, DriverConfig, Sweep};

/// A minimal healthy scenario: one system, a short saturating open-loop run.
/// `saturating(100)` keeps the arrival horizon tiny (100 txns at 200 K tps
/// ≈ 500 µs), which the fault/window tests exploit.
fn base_scenario() -> Scenario {
    Scenario {
        id: "lint-test",
        title: "synthetic lint scenario",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Etcd).with_nodes(3),
            columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
        }],
        workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly),
        driver: DriverConfig::saturating(100),
        sweep: Sweep::None,
        row_labels: None,
        faults: None,
        seed: 7,
    }
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn well_formed_scenario_is_clean() {
    assert_eq!(codes(&lint_scenario(&base_scenario())), Vec::<&str>::new());
}

#[test]
fn s001_fault_past_horizon() {
    let mut scenario = base_scenario();
    let mut faults = FaultPlan::none();
    // The horizon is ~500 µs; a crash at 1 s never happens.
    faults.add(NodeFault::crash(NodeId(1), 1_000_000));
    scenario.faults = Some(faults);

    let diags = lint_scenario(&scenario);
    assert_eq!(codes(&diags), vec!["S001"]);
    assert_eq!(diags[0].severity, Severity::Warn);
    assert!(diags[0].message.contains("horizon"), "{}", diags[0].message);
}

#[test]
fn s001_surfaces_identically_via_plan_diagnostics_and_fresh_validation() {
    // The bugfix under test: `Scenario::plan()` records expansion-time
    // warnings on `plan.diagnostics`, and `lint_plan` re-validates
    // hand-built plans. Both paths must report the same finding once.
    let mut scenario = base_scenario();
    let mut faults = FaultPlan::none();
    faults.add(NodeFault::crash(NodeId(1), 1_000_000));
    scenario.faults = Some(faults);

    let plan = scenario.plan();
    assert_eq!(codes(&plan.diagnostics), vec!["S001"]);

    // lint_plan must not double-report what expansion already sanitized.
    assert_eq!(codes(&lint_plan(&plan)), vec!["S001"]);
}

#[test]
fn s002_overlapping_crash_windows() {
    let mut scenario = base_scenario();
    let mut faults = FaultPlan::none();
    faults.add(NodeFault::crash_until(NodeId(1), 100, 300));
    faults.add(NodeFault::crash_until(NodeId(1), 200, 400));
    scenario.faults = Some(faults);

    let diags = lint_scenario(&scenario);
    assert_eq!(codes(&diags), vec!["S002"]);
    assert_eq!(diags[0].severity, Severity::Warn);
    assert!(diags[0].message.contains("merged"), "{}", diags[0].message);
}

#[test]
fn s003_duplicate_sweep_points() {
    let mut scenario = base_scenario();
    scenario.sweep = Sweep::Theta(vec![0.5, 0.9, 0.5]);

    let diags = lint_scenario(&scenario);
    // Scenario form: the duplicate sweep value; plan form: the expanded row
    // whose probe carries the same content key. Both are S003.
    assert!(!diags.is_empty());
    assert!(diags
        .iter()
        .all(|d| d.code == "S003" && d.severity == Severity::Warn));
    assert!(
        diags.iter().any(|d| d.message.contains("sweep point")),
        "scenario-level duplicate not reported: {:?}",
        codes(&diags)
    );
    assert!(
        diags.iter().any(|d| d.message.contains("content key")),
        "plan-level duplicate not reported: {:?}",
        codes(&diags)
    );
}

#[test]
fn s004_offered_tps_sweep_over_closed_loop() {
    let mut scenario = base_scenario();
    scenario.sweep = Sweep::OfferedTps(vec![1_000.0, 2_000.0]);
    scenario.driver.arrival = Some(ArrivalSpec::ClosedLoop {
        clients: 4,
        think_time_us: 1_000,
        max_outstanding: 1,
    });

    let diags = lint_scenario(&scenario);
    assert!(codes(&diags).contains(&"S004"), "{:?}", codes(&diags));
    let s004 = diags.iter().find(|d| d.code == "S004").unwrap();
    assert_eq!(s004.severity, Severity::Deny);
    assert!(s004.message.contains("closed-loop"), "{}", s004.message);
}

#[test]
fn s004_offered_tps_sweep_over_mixed_arrival() {
    let mut scenario = base_scenario();
    scenario.sweep = Sweep::OfferedTps(vec![1_000.0, 2_000.0]);
    scenario.driver.arrival = Some(ArrivalSpec::Mixed {
        populations: vec![
            (1.0, ArrivalSpec::OpenLoop { offered_tps: 500.0 }),
            (1.0, ArrivalSpec::OpenLoop { offered_tps: 500.0 }),
        ],
    });

    let diags = lint_scenario(&scenario);
    let s004 = diags.iter().find(|d| d.code == "S004").unwrap();
    assert_eq!(s004.severity, Severity::Deny);
}

#[test]
fn s005_mixed_population_with_zero_share() {
    let mut scenario = base_scenario();
    // Weight 1e-9 of a 100-transaction budget largest-remainder-rounds to
    // zero: the population never submits a single transaction.
    scenario.driver.arrival = Some(ArrivalSpec::Mixed {
        populations: vec![
            (
                1.0,
                ArrivalSpec::OpenLoop {
                    offered_tps: 200_000.0,
                },
            ),
            (
                1e-9,
                ArrivalSpec::OpenLoop {
                    offered_tps: 200_000.0,
                },
            ),
        ],
    });

    let diags = lint_scenario(&scenario);
    assert_eq!(codes(&diags), vec!["S005"]);
    assert_eq!(diags[0].severity, Severity::Deny);
    assert!(
        diags[0].message.contains("population 1"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("never submits"),
        "{}",
        diags[0].message
    );
}

#[test]
fn s006_window_wider_than_horizon() {
    let mut scenario = base_scenario();
    // Horizon ≈ 500 µs, window 1 s: the time series degenerates.
    scenario.driver.window_us = Some(1_000_000);

    let diags = lint_scenario(&scenario);
    assert_eq!(codes(&diags), vec!["S006"]);
    assert_eq!(diags[0].severity, Severity::Warn);
}

#[test]
fn s007_zero_probe_plan() {
    let mut scenario = base_scenario();
    // An axis with zero points legitimately expands to a zero-row plan —
    // but with no text to render it reports nothing at all.
    scenario.sweep = Sweep::Theta(vec![]);

    let diags = lint_scenario(&scenario);
    assert_eq!(codes(&diags), vec!["S007"]);
    assert_eq!(diags[0].severity, Severity::Note);
    assert!(
        diags[0].message.contains("empty sweep"),
        "{}",
        diags[0].message
    );
}

#[test]
fn deny_findings_fail_the_command_surface() {
    let mut scenario = base_scenario();
    scenario.sweep = Sweep::OfferedTps(vec![1_000.0]);
    scenario.driver.arrival = Some(ArrivalSpec::ClosedLoop {
        clients: 4,
        think_time_us: 1_000,
        max_outstanding: 1,
    });
    let diags = lint_scenario(&scenario);
    assert!(dichotomy_core::common::diag::has_deny(&diags));
}
