//! Cross-crate integration tests: the substrates composed exactly the way the
//! system models compose them, checked end to end.

use dichotomy_core::common::{ClientId, Key, Operation, Transaction, TxnId, Value};
use dichotomy_core::driver::{run_workload, DriverConfig};
use dichotomy_core::experiments;
use dichotomy_core::systems::{
    drive_arrivals, Fabric, FabricConfig, Quorum, QuorumConfig, TiDb, TiDbConfig,
    TransactionalSystem,
};
use dichotomy_core::workload::{
    SmallbankConfig, SmallbankWorkload, Workload, YcsbConfig, YcsbMix, YcsbWorkload,
};

/// The headline result (Figure 4's ordering) holds end to end through the
/// driver: databases beat blockchains on YCSB updates, and everything beats
/// Quorum's order-execute pipeline.
#[test]
fn figure4_ordering_holds_through_the_public_api() {
    let report = experiments::fig04_peak_throughput(300);
    let quorum = report.value("Quorum", "update_tps").unwrap();
    let fabric = report.value("Fabric", "update_tps").unwrap();
    let tidb = report.value("TiDB", "update_tps").unwrap();
    let etcd = report.value("etcd", "update_tps").unwrap();
    let tikv = report.value("TiKV", "update_tps").unwrap();
    assert!(
        quorum < fabric && fabric < tidb && tidb < etcd,
        "{quorum} {fabric} {tidb} {etcd}"
    );
    assert!(tikv > tidb);
}

/// Running Smallbank through Fabric leaves a verifiable ledger behind: the
/// hash chain checks out and recorded transaction counts match the receipts.
#[test]
fn fabric_smallbank_run_produces_a_consistent_ledger_and_metrics() {
    let mut fabric = Fabric::new(FabricConfig {
        max_block_txns: 50,
        block_timeout_us: 100_000,
        ..FabricConfig::default()
    });
    let mut workload = SmallbankWorkload::new(SmallbankConfig {
        accounts: 2_000,
        ..SmallbankConfig::default()
    });
    let stats = run_workload(&mut fabric, &mut workload, &DriverConfig::saturating(400));
    let finished = stats.metrics.committed + stats.metrics.aborted();
    assert_eq!(finished, 400);
    assert!(stats.metrics.throughput_tps > 10.0);
    // The storage footprint contains ledger history (blocks are kept forever).
    assert!(fabric.footprint().history_bytes > 0);
}

/// The same signed transaction is accepted by a blockchain and its signature
/// tampering is rejected before execution-side state changes (spot check that
/// the crypto layer is actually wired into the system models).
#[test]
fn signatures_travel_through_the_blockchain_pipeline() {
    let mut workload = YcsbWorkload::new(YcsbConfig {
        record_count: 100,
        record_size: 64,
        mix: YcsbMix::UpdateOnly,
        ..YcsbConfig::default()
    });
    let txn = workload.next_transaction(ClientId(3), 1);
    assert!(txn.verify_signature());
    let mut tampered = txn.clone();
    tampered.ops[0].value = Some(Value::filler(65));
    assert!(!tampered.verify_signature());
}

/// TiDB and Quorum agree on the final state produced by the same sequence of
/// transactions (different concurrency control, same serializable outcome
/// when the workload has no conflicts).
#[test]
fn different_systems_reach_the_same_final_state_without_conflicts() {
    let keys: Vec<Key> = (0..50)
        .map(|i| Key::from_str(&format!("acct{i:03}")))
        .collect();
    let txns: Vec<Transaction> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            Transaction::new(
                TxnId::new(ClientId(1), i as u64 + 1),
                vec![Operation::write(k.clone(), Value::filler(i + 1))],
            )
        })
        .collect();

    let mut quorum = Quorum::new(QuorumConfig {
        max_block_txns: 10,
        ..QuorumConfig::default()
    });
    let mut tidb = TiDb::new(TiDbConfig::default());
    let schedule: Vec<(Transaction, u64)> = txns
        .iter()
        .enumerate()
        .map(|(i, txn)| (txn.clone(), (i as u64 + 1) * 1000))
        .collect();
    let q_receipts = drive_arrivals(&mut quorum, schedule.clone());
    let t_receipts = drive_arrivals(&mut tidb, schedule);
    assert_eq!(q_receipts.len(), 50);
    assert_eq!(t_receipts.len(), 50);
    assert!(q_receipts.iter().all(|r| r.status.is_committed()));
    assert!(t_receipts.iter().all(|r| r.status.is_committed()));
    // Both systems answer subsequent reads with the same values.
    let reads: Vec<(Transaction, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, key)| {
            (
                Transaction::new(
                    TxnId::new(ClientId(2), i as u64 + 1),
                    vec![Operation::read(key.clone())],
                ),
                20_000_000 + i as u64,
            )
        })
        .collect();
    let q_reads = drive_arrivals(&mut quorum, reads.clone());
    let t_reads = drive_arrivals(&mut tidb, reads);
    for (q, t) in q_reads.iter().zip(&t_reads) {
        assert_eq!(
            q.reads[0].1.as_ref().map(Value::len),
            t.reads[0].1.as_ref().map(Value::len)
        );
    }
}

/// The storage experiments are consistent with each other: the ledger makes
/// Fabric's per-record footprint strictly larger than TiDB's, and the MPT
/// makes Quorum's state index strictly larger than Fabric's.
#[test]
fn storage_hierarchy_is_consistent_across_experiments() {
    let report = experiments::fig12_storage(500, &[1000]);
    let fabric_state = report.value("1000 B", "Fabric_state_B/rec").unwrap();
    let fabric_block = report.value("1000 B", "Fabric_block_B/rec").unwrap();
    let tidb = report.value("1000 B", "TiDB_B/rec").unwrap();
    assert!(fabric_block > 1000.0, "blocks store the full envelopes");
    assert!(
        fabric_state + fabric_block > tidb,
        "ledger overhead dominates"
    );

    let adr = experiments::fig13_adr_overhead(1_000, &[1000]);
    let mbt = adr.value("1000 B", "MBT_B/rec").unwrap();
    let mpt = adr.value("1000 B", "MPT_B/rec").unwrap();
    assert!(mpt > mbt, "MPT {mpt:.0} must exceed MBT {mbt:.0}");
}
