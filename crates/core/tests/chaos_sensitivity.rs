//! Oracle-sensitivity tests: each corruption a buggy model could commit is
//! injected into an otherwise-healthy receipt stream (through the test-only
//! [`ReceiptLog::corrupt_receipts_for_test`] hook) and must be caught by
//! exactly the invariant oracle built to see it, as a labelled probe failure.
//!
//! The vehicle is a wrapper [`TransactionalSystem`] that delegates every
//! callback to a real etcd model and routes its drained receipts through a
//! private [`ReceiptLog`] where one corruption is applied — so everything the
//! driver measures is genuine queueing, and only the receipt stream lies.

use dichotomy_core::scenario::{ColumnSpec, Metric, Probe, Scenario, Sweep, SystemEntry};
use dichotomy_core::{run_plan_with, ExecOptions};
use dichotomy_simnet::StageEvent;
use dichotomy_systems::{
    Completion, Engine, ReceiptLog, SystemKind, SystemRegistry, SystemSpec, TransactionalSystem,
};
use dichotomy_workload::{WorkloadSpec, YcsbMix};

use dichotomy_common::size::StorageBreakdown;
use dichotomy_common::{Key, Transaction, TxnReceipt, Value};
use dichotomy_core::DriverConfig;

/// Which lie the wrapper tells about its receipt stream.
#[derive(Clone, Copy)]
enum Corruption {
    /// Drop the last receipt: a transaction silently vanishes.
    DropLast,
    /// Replace the last receipt with a copy of the first: the count is
    /// conserved (so `receipt-conservation` stays quiet) but one transaction
    /// is receipted twice.
    DuplicateFirst,
    /// Rewind one receipt's finish time to before its submission: the
    /// outcome claims to precede its cause.
    BreakCausality,
}

/// A [`TransactionalSystem`] that runs a real etcd model underneath and
/// corrupts the drained receipt stream exactly once, behind the
/// [`ReceiptLog`] test hook.
struct Corrupting {
    kind: SystemKind,
    inner: Box<dyn TransactionalSystem>,
    log: ReceiptLog,
    mode: Corruption,
    applied: bool,
}

impl Corrupting {
    fn boxed(spec: &SystemSpec, mode: Corruption) -> Box<dyn TransactionalSystem> {
        let inner = SystemRegistry::with_builtins()
            .build(&SystemSpec::new(SystemKind::Etcd))
            .expect("etcd is a builtin");
        Box::new(Corrupting {
            kind: spec.kind,
            inner,
            log: ReceiptLog::new(),
            mode,
            applied: false,
        })
    }
}

impl TransactionalSystem for Corrupting {
    fn kind(&self) -> SystemKind {
        self.kind
    }

    fn load(&mut self, records: &[(Key, Value)]) {
        self.inner.load(records);
    }

    fn attach(&mut self, engine: &mut Engine) {
        self.inner.attach(engine);
    }

    fn on_arrival(&mut self, txn: Transaction, engine: &mut Engine) {
        self.inner.on_arrival(txn, engine);
    }

    fn on_stage(&mut self, event: StageEvent, engine: &mut Engine) {
        self.inner.on_stage(event, engine);
    }

    fn on_drain(&mut self, engine: &mut Engine) {
        self.inner.on_drain(engine);
    }

    fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
        for receipt in self.inner.drain_receipts() {
            self.log.push_back(receipt);
        }
        if !self.applied {
            let mode = self.mode;
            let mut touched = false;
            self.log.corrupt_receipts_for_test(|receipts| {
                touched = apply(mode, receipts);
            });
            self.applied = touched;
        }
        self.log.drain()
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.inner.take_completions()
    }

    fn drain_completions(&mut self, buf: &mut Vec<Completion>) {
        self.inner.drain_completions(buf);
    }

    fn footprint(&self) -> StorageBreakdown {
        self.inner.footprint()
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
}

/// Apply `mode` to a drained batch; returns whether the corruption landed
/// (a batch can be too small or lack a usable victim — then it waits for the
/// next one).
fn apply(mode: Corruption, receipts: &mut Vec<TxnReceipt>) -> bool {
    match mode {
        Corruption::DropLast => receipts.pop().is_some(),
        Corruption::DuplicateFirst => {
            if receipts.len() < 2 {
                return false;
            }
            let first = receipts[0].clone();
            *receipts.last_mut().expect("len >= 2") = first;
            true
        }
        Corruption::BreakCausality => {
            // A victim needs submit > 0 so the rewind lands strictly before.
            match receipts.iter_mut().find(|r| r.submit_time > 0) {
                Some(victim) => {
                    victim.finish_time = victim.submit_time - 1;
                    true
                }
                None => false,
            }
        }
    }
}

fn build_dropping(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    Corrupting::boxed(spec, Corruption::DropLast)
}

fn build_duplicating(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    Corrupting::boxed(spec, Corruption::DuplicateFirst)
}

fn build_rewinding(spec: &SystemSpec) -> Box<dyn TransactionalSystem> {
    Corrupting::boxed(spec, Corruption::BreakCausality)
}

/// One healthy etcd probe plus one corrupted probe, on a registry where
/// `corrupt_kind`'s builder is replaced by the corrupting wrapper.
fn run_corrupted(
    corrupt_kind: SystemKind,
    builder: fn(&SystemSpec) -> Box<dyn TransactionalSystem>,
) -> dichotomy_core::experiments::ExperimentReport {
    let mut registry = SystemRegistry::with_builtins();
    registry.register(corrupt_kind, builder);
    let scenario = Scenario {
        id: "CS",
        title: "oracle sensitivity",
        systems: vec![
            SystemEntry {
                spec: SystemSpec::new(SystemKind::Etcd),
                columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
            },
            SystemEntry {
                spec: SystemSpec::new(corrupt_kind),
                columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
            },
        ],
        workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(200),
        driver: DriverConfig::saturating(150),
        sweep: Sweep::None,
        row_labels: None,
        faults: None,
        seed: 11,
    };
    run_plan_with(&scenario.plan(), &registry, &ExecOptions::with_jobs(1))
}

/// The shared shape of every sensitivity case: the corrupted probe fails
/// with the expected oracle's label, the healthy sibling still completes
/// with all oracles passing.
fn assert_tripped(
    corrupt_kind: SystemKind,
    report: &dichotomy_core::experiments::ExperimentReport,
    oracle: &str,
    detail: &str,
) {
    assert!(
        report.value("etcd", "tps").unwrap() > 0.0,
        "the healthy probe must survive its corrupted sibling"
    );
    assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
    let failure = &report.failures[0];
    assert_eq!(failure.probe, corrupt_kind.name());
    let prefix = format!("oracle '{oracle}' violated: ");
    assert!(
        failure.message.starts_with(&prefix),
        "expected {prefix:?}, got {:?}",
        failure.message
    );
    assert!(
        failure.message.contains(detail),
        "expected detail {detail:?} in {:?}",
        failure.message
    );
    // The healthy row's oracle report is the positive witness.
    let healthy = report
        .rows
        .iter()
        .find(|r| r.label == "etcd")
        .expect("healthy row");
    for series in &healthy.series {
        assert!(series.oracles.passed(), "{:?}", series.oracles);
        assert_eq!(series.oracles.outcomes.len(), 4);
    }
}

#[test]
fn a_dropped_receipt_is_caught_by_receipt_conservation() {
    let report = run_corrupted(SystemKind::Tikv, build_dropping);
    assert_tripped(SystemKind::Tikv, &report, "receipt-conservation", "lost");
}

#[test]
fn a_duplicated_receipt_is_caught_by_the_duplicate_oracle() {
    let report = run_corrupted(SystemKind::TiDb, build_duplicating);
    assert_tripped(
        SystemKind::TiDb,
        &report,
        "no-duplicate-receipt",
        "receipted more than once",
    );
}

#[test]
fn a_causality_breaking_receipt_is_caught_by_commit_order_monotonic() {
    let report = run_corrupted(SystemKind::Fabric, build_rewinding);
    assert_tripped(
        SystemKind::Fabric,
        &report,
        "commit-order-monotonic",
        "before its submission",
    );
}

#[test]
fn the_corruptions_themselves_are_probe_local() {
    // Three corrupted kinds in one plan: three labelled failures, each
    // attributable, and the grid still renders.
    let mut registry = SystemRegistry::with_builtins();
    registry.register(SystemKind::Tikv, build_dropping);
    registry.register(SystemKind::TiDb, build_duplicating);
    registry.register(SystemKind::Fabric, build_rewinding);
    let scenario = Scenario {
        id: "CS3",
        title: "all three corruptions at once",
        systems: [
            SystemKind::Etcd,
            SystemKind::Tikv,
            SystemKind::TiDb,
            SystemKind::Fabric,
        ]
        .iter()
        .map(|&kind| SystemEntry {
            spec: SystemSpec::new(kind),
            columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
        })
        .collect(),
        workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(200),
        driver: DriverConfig::saturating(150),
        sweep: Sweep::None,
        row_labels: None,
        faults: None,
        seed: 11,
    };
    for jobs in [1, 4] {
        let report = run_plan_with(&scenario.plan(), &registry, &ExecOptions::with_jobs(jobs));
        assert_eq!(report.failures.len(), 3, "jobs={jobs}");
        let mut oracles: Vec<&str> = report
            .failures
            .iter()
            .map(|f| {
                f.message
                    .split('\'')
                    .nth(1)
                    .expect("oracle label quoted in message")
            })
            .collect();
        oracles.sort_unstable();
        assert_eq!(
            oracles,
            [
                "commit-order-monotonic",
                "no-duplicate-receipt",
                "receipt-conservation"
            ],
            "jobs={jobs}"
        );
        assert!(report.value("etcd", "tps").unwrap() > 0.0, "jobs={jobs}");
        assert!(!report.render().is_empty());
    }
}

// Sanity check on the vehicle itself: the sensitivity scenarios carry no
// FaultPlan, so the injected corruption is the only anomaly and any tripped
// oracle is attributable to it alone.
#[test]
fn the_sensitivity_scenarios_carry_no_fault_plans() {
    let plan = Scenario {
        id: "CS0",
        title: "plumbing check",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Etcd),
            columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
        }],
        workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(200),
        driver: DriverConfig::saturating(150),
        sweep: Sweep::None,
        row_labels: None,
        faults: None,
        seed: 11,
    }
    .plan();
    for row in &plan.rows {
        for run in &row.runs {
            if let Probe::Drive { system, .. } = &run.probe {
                assert!(system.faults.as_ref().is_none_or(|f| f.is_empty()));
            }
        }
    }
}
