//! Hybrid-system design exploration with the Figure 15 forecast framework:
//! sketch a blockchain–database hybrid (replication model, consensus,
//! concurrency) and get a back-of-the-envelope throughput estimate plus the
//! qualitative band, next to the published hybrids for context.
//!
//! ```text
//! cargo run -p dichotomy-core --release --example hybrid_designer
//! ```

use dichotomy_core::consensus::ProtocolKind;
use dichotomy_core::hybrid::{
    all_systems, forecast_throughput, ConcurrencyChoice, HybridSpec, ReplicationModel,
    SystemCategory,
};
use dichotomy_core::simnet::{CostModel, NetworkConfig};

fn main() {
    let network = NetworkConfig::lan_1gbps();
    let costs = CostModel::calibrated();

    println!("Published hybrids (forecast vs reported):");
    for profile in all_systems() {
        if !matches!(
            profile.category,
            SystemCategory::OutOfBlockchainDatabase | SystemCategory::OutOfDatabaseBlockchain
        ) {
            continue;
        }
        let spec = HybridSpec::from_profile(&profile);
        println!(
            "  {:<14} band {:?}  forecast {:>9.0} tps  reported {:>9.0} tps",
            profile.name,
            spec.band(),
            forecast_throughput(&spec, &network, &costs),
            profile.reported_tps.unwrap_or(f64::NAN),
        );
    }

    // Now sketch a new design: a verifiable database that keeps storage-based
    // replication and a CFT shared log (for speed) but adds per-replica
    // signature re-verification by switching the ordering layer to Tendermint.
    println!("\nDesign exploration — 'verifiable ledger DB' candidates:");
    for (label, protocol, replication, concurrency) in [
        (
            "shared log + OCC  (Veritas-like)",
            ProtocolKind::SharedLog,
            ReplicationModel::StorageBased,
            ConcurrencyChoice::ConcurrentExecutionSerialCommit,
        ),
        (
            "Tendermint + OCC  (FalconDB-like)",
            ProtocolKind::Tendermint,
            ReplicationModel::StorageBased,
            ConcurrencyChoice::ConcurrentExecutionSerialCommit,
        ),
        (
            "shared log + full re-execution (ChainifyDB-like)",
            ProtocolKind::SharedLog,
            ReplicationModel::TransactionBased,
            ConcurrencyChoice::Concurrent,
        ),
        (
            "IBFT + serial execution (permissioned chain)",
            ProtocolKind::Ibft,
            ReplicationModel::TransactionBased,
            ConcurrencyChoice::Serial,
        ),
    ] {
        let spec = HybridSpec {
            name: label.to_string(),
            replication,
            protocol,
            concurrency,
            nodes: 4,
            txn_bytes: 1_100,
            batch_size: 500,
        };
        println!(
            "  {:<48} band {:?}  forecast {:>9.0} tps",
            label,
            spec.band(),
            forecast_throughput(&spec, &network, &costs)
        );
    }
    println!("\nThe ordering of these estimates is what Section 5.6 argues a designer can");
    println!("predict from the replication and failure models alone.");
}
