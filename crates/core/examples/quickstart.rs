//! Quickstart: run the same YCSB workload against a blockchain (Quorum) and a
//! distributed database (etcd) and print the throughput/latency gap the paper
//! opens with.
//!
//! ```text
//! cargo run -p dichotomy-core --release --example quickstart
//! ```

use dichotomy_core::driver::{run_workload, DriverConfig};
use dichotomy_core::systems::{Etcd, EtcdConfig, Quorum, QuorumConfig, TransactionalSystem};
use dichotomy_core::workload::{YcsbConfig, YcsbMix, YcsbWorkload};

fn main() {
    let workload = || {
        YcsbWorkload::new(YcsbConfig {
            record_count: 5_000,
            record_size: 1_000,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        })
    };

    let mut quorum = Quorum::new(QuorumConfig::default());
    let mut etcd = Etcd::new(EtcdConfig::default());
    let systems: Vec<(&str, &mut dyn TransactionalSystem)> = vec![
        ("Quorum (blockchain)", &mut quorum),
        ("etcd (database)", &mut etcd),
    ];

    println!("YCSB update-only, 1 KB records, 5-node full replication\n");
    for (name, system) in systems {
        let stats = run_workload(system, &mut workload(), &DriverConfig::saturating(1_000));
        println!(
            "{name:<22} {:>8.0} tps   mean latency {:>8.1} ms   p95 {:>8.1} ms",
            stats.metrics.throughput_tps,
            stats.metrics.latency.mean_us / 1000.0,
            stats.metrics.latency.p95_us as f64 / 1000.0,
        );
    }
    println!("\nThe gap — and where it comes from — is what the rest of the harness dissects;");
    println!("see `cargo run -p dichotomy-bench --bin repro -- all`.");
}
