//! Contention study (the Figure 9 scenario): sweep the Zipfian skew and watch
//! the concurrency-control choices diverge — TiDB's optimistic/Percolator
//! pipeline collapses, Fabric's OCC aborts climb, while the serial executors
//! (Quorum, etcd) do not care.
//!
//! ```text
//! cargo run -p dichotomy-core --release --example contention_study
//! ```

use dichotomy_core::driver::{run_workload, DriverConfig};
use dichotomy_core::systems::{
    Etcd, EtcdConfig, Fabric, FabricConfig, Quorum, QuorumConfig, TiDb, TiDbConfig,
    TransactionalSystem,
};
use dichotomy_core::workload::{YcsbConfig, YcsbMix, YcsbWorkload};

fn run(system: &mut dyn TransactionalSystem, theta: f64) -> (f64, f64) {
    let mut workload = YcsbWorkload::new(YcsbConfig {
        record_count: 5_000,
        record_size: 1_000,
        zipf_theta: theta,
        mix: YcsbMix::ReadModifyWrite,
        ..YcsbConfig::default()
    });
    let stats = run_workload(system, &mut workload, &DriverConfig::saturating(800));
    (
        stats.metrics.throughput_tps,
        stats.metrics.abort_rate_percent(),
    )
}

fn main() {
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "theta", "Fabric tps", "Quorum tps", "TiDB tps", "etcd tps", "Fabric abort%", "TiDB abort%"
    );
    for theta in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let (fabric_tps, fabric_ab) = run(&mut Fabric::new(FabricConfig::default()), theta);
        let (quorum_tps, _) = run(&mut Quorum::new(QuorumConfig::default()), theta);
        let (tidb_tps, tidb_ab) = run(&mut TiDb::new(TiDbConfig::default()), theta);
        let (etcd_tps, _) = run(&mut Etcd::new(EtcdConfig::default()), theta);
        println!(
            "{theta:<8.1} {fabric_tps:>12.0} {quorum_tps:>12.0} {tidb_tps:>12.0} {etcd_tps:>12.0} {fabric_ab:>14.1} {tidb_ab:>14.1}"
        );
    }
}
