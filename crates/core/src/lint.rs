//! Layer 2 of the static-analysis pair: the **semantic plan linter**.
//!
//! `repro lint [ids…]` expands every experiment to its
//! [`ExperimentPlan`](crate::ExperimentPlan) *without executing a single
//! probe* and diagnoses plan-level mistakes statically — in the spirit of
//! static robustness analysis over declarative transaction templates: the
//! [`Scenario`](crate::Scenario) spec is declarative enough that a whole
//! class of misconfigurations is decidable before any simulation runs.
//!
//! Codes (`S0xx`, shared [`Diagnostic`] model with the `D0xx` source
//! auditor in `dichotomy-lint`):
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | S001 | warn | fault event at/past the arrival horizon (dropped) |
//! | S002 | warn | overlapping crash windows merged |
//! | S003 | warn | duplicate probes in one plan (wasted dedup slots) |
//! | S004 | deny | `Sweep::OfferedTps` over a non-open-loop arrival |
//! | S005 | deny | `Mixed` population share rounds to zero transactions |
//! | S006 | warn | `window_us` wider than the run's arrival horizon |
//! | S007 | note | zero-probe experiment riding a bench set |
//! | S008 | deny | zero-survivor exploration (lives in `dichotomy-explore::lint_spec`; `repro lint explore` surfaces it) |
//!
//! S001/S002 originate in [`FaultPlan::validate`] during plan expansion
//! (`sanitize_fault_plans` records them on `plan.diagnostics`); the linter
//! re-validates hand-built plans too, so both construction paths report
//! identical findings.

use std::collections::BTreeMap;

use dichotomy_common::{Diagnostic, Severity};

use crate::driver::{mixed_shares, ArrivalSpec};
use crate::scenario::{arrival_horizon_us, probe_key_bytes, ExperimentPlan, Probe, Scenario};
use crate::Sweep;

/// Lint a fully expanded plan. Includes the expansion-time findings carried
/// on `plan.diagnostics` (S001/S002 from `Scenario::plan()`), a fresh fault
/// re-validation for hand-built plans, and the plan-shape checks
/// (S003/S005/S006/S007). The experiment field of each locus is the plan id;
/// callers that know the repro key can rewrite it via
/// [`Diagnostic::for_experiment`].
pub fn lint_plan(plan: &ExperimentPlan) -> Vec<Diagnostic> {
    let mut diags = plan.diagnostics.clone();

    // Fresh fault validation: plans built through `Scenario::plan()` are
    // already sanitized (re-validation finds nothing, the findings sit on
    // `plan.diagnostics`), but hand-assembled plans never ran it.
    for row in &plan.rows {
        for run in &row.runs {
            let Probe::Drive { system, driver, .. } = &run.probe else {
                continue;
            };
            if let Some(faults) = &system.faults {
                if !faults.is_empty() {
                    let (_, found) = faults.validate(arrival_horizon_us(driver));
                    diags.extend(
                        found
                            .into_iter()
                            .map(|d| d.at_plan(plan.id, row.label.clone(), system.label())),
                    );
                }
            }

            // S005: a Mixed population whose weight largest-remainder-rounds
            // to a zero transaction share never submits anything — dead
            // configuration, almost certainly a weight typo.
            if let Some(ArrivalSpec::Mixed { populations }) = &driver.arrival {
                let shares = mixed_shares(populations, driver.transactions);
                for (i, ((weight, _), share)) in populations.iter().zip(&shares).enumerate() {
                    if *share == 0 {
                        diags.push(
                            Diagnostic::new(
                                "S005",
                                Severity::Deny,
                                format!(
                                    "mixed population {i} (weight {weight}) \
                                     largest-remainder-rounds to a zero transaction share \
                                     out of {}: it never submits",
                                    driver.transactions
                                ),
                            )
                            .with_help("raise the weight or the transaction budget")
                            .at_plan(
                                plan.id,
                                row.label.clone(),
                                system.label(),
                            ),
                        );
                    }
                }
            }

            // S006: a metrics window wider than the whole arrival horizon
            // collapses the time series to a single window — dips, stalls
            // and recovery bursts become invisible.
            if let (Some(window), Some(horizon)) = (driver.window_us, arrival_horizon_us(driver)) {
                if window > horizon {
                    diags.push(
                        Diagnostic::new(
                            "S006",
                            Severity::Warn,
                            format!(
                                "window_us ({window} µs) exceeds the run's arrival horizon \
                                 ({horizon} µs): the time series degenerates to one window"
                            ),
                        )
                        .with_help("shrink window_us or extend the run")
                        .at_plan(
                            plan.id,
                            row.label.clone(),
                            system.label(),
                        ),
                    );
                }
            }
        }
    }

    // S003: duplicate probes inside one plan. Cross-plan duplicates are the
    // dedup layer's win; *intra*-plan duplicates usually mean a sweep point
    // or row was listed twice.
    let mut seen: BTreeMap<Vec<u8>, (usize, usize)> = BTreeMap::new();
    for (ri, row) in plan.rows.iter().enumerate() {
        for run in &row.runs {
            let key = probe_key_bytes(&run.probe);
            match seen.get(&key) {
                Some(&(first_row, _)) => {
                    diags.push(
                        Diagnostic::new(
                            "S003",
                            Severity::Warn,
                            format!(
                                "probe duplicates row '{}' exactly (same content key); \
                                 the dedup layer will execute it once, but the plan \
                                 lists it twice",
                                plan.rows[first_row].label
                            ),
                        )
                        .with_help("drop the duplicate sweep point or row")
                        .at_plan(
                            plan.id,
                            row.label.clone(),
                            run.probe.label(),
                        ),
                    );
                }
                None => {
                    seen.insert(key, (ri, 0));
                }
            }
        }
    }

    // S007: zero probes — legitimate for text-only experiments (Table 2),
    // but worth a note when the plan rides a bench set: it contributes no
    // timings and an accidental empty sweep looks identical.
    if plan.probe_count() == 0 {
        diags.push(
            Diagnostic::new(
                "S007",
                Severity::Note,
                if plan.text.is_some() {
                    "plan schedules zero probes (text-only experiment)".to_string()
                } else {
                    "plan schedules zero probes and renders no text: empty sweep?".to_string()
                },
            )
            .at_plan(plan.id, "", ""),
        );
    }

    diags
}

/// Lint a scenario *before* expansion: scenario-level mistakes that are
/// invisible in the expanded plan (S004, duplicate sweep values), then
/// everything [`lint_plan`] finds on the expansion itself.
pub fn lint_scenario(scenario: &Scenario) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // S004: Sweep::OfferedTps writes `driver.offered_tps` and pins the
    // arrival spec to an open loop only when none is set; over an explicit
    // closed-loop (or phased/mixed) arrival the swept knob is simply never
    // read — every sweep point measures the same thing.
    if let Sweep::OfferedTps(points) = &scenario.sweep {
        match &scenario.driver.arrival {
            Some(ArrivalSpec::ClosedLoop { .. }) => {
                diags.push(
                    Diagnostic::new(
                        "S004",
                        Severity::Deny,
                        format!(
                            "Sweep::OfferedTps ({} points) over a closed-loop arrival: \
                             closed loops pace on completions, the swept offered_tps is \
                             never read",
                            points.len()
                        ),
                    )
                    .with_help("sweep ClosedClients/ThinkTimeUs instead, or drop the arrival spec")
                    .at_plan(scenario.id, "", ""),
                );
            }
            Some(ArrivalSpec::Phased { .. }) | Some(ArrivalSpec::Mixed { .. }) => {
                diags.push(
                    Diagnostic::new(
                        "S004",
                        Severity::Deny,
                        format!(
                            "Sweep::OfferedTps ({} points) over a phased/mixed arrival: \
                             the arrival spec overrides the swept offered_tps",
                            points.len()
                        ),
                    )
                    .with_help("encode the load axis in the arrival spec itself")
                    .at_plan(scenario.id, "", ""),
                );
            }
            None | Some(ArrivalSpec::OpenLoop { .. }) => {}
        }
    }

    // S003 (scenario form): duplicate sweep values expand to byte-identical
    // probes; report them at the source rather than per expanded row.
    for (a, b) in duplicate_sweep_points(&scenario.sweep) {
        diags.push(
            Diagnostic::new(
                "S003",
                Severity::Warn,
                format!("sweep point {b} duplicates point {a}: identical rows"),
            )
            .with_help("drop the duplicate sweep value")
            .at_plan(scenario.id, "", ""),
        );
    }

    diags.extend(lint_plan(&scenario.plan()));
    diags
}

/// Indices `(first, dup)` of sweep points equal to an earlier point.
/// Float axes compare by bit pattern — exactly the equality the probe
/// content key sees after `Encode`.
fn duplicate_sweep_points(sweep: &Sweep) -> Vec<(usize, usize)> {
    fn dups<T, K: Ord>(items: &[T], key: impl Fn(&T) -> K) -> Vec<(usize, usize)> {
        let mut first: BTreeMap<K, usize> = BTreeMap::new();
        let mut out = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match first.get(&key(item)) {
                Some(&j) => out.push((j, i)),
                None => {
                    first.insert(key(item), i);
                }
            }
        }
        out
    }
    match sweep {
        Sweep::None | Sweep::Fault(_) => Vec::new(),
        Sweep::Nodes(v) => dups(v, |&n| n),
        Sweep::Theta(v) => dups(v, |&t| t.to_bits()),
        Sweep::OpsPerTxn { counts, .. } => dups(counts, |&c| c),
        Sweep::RecordSize(v) => dups(v, |&s| s),
        Sweep::Shards(v) => dups(v, |&s| s),
        Sweep::OfferedTps(v) => dups(v, |&t| t.to_bits()),
        Sweep::ClosedClients(v) | Sweep::ThinkTimeUs(v) | Sweep::MaxOutstanding(v) => {
            dups(v, |&x| x)
        }
    }
}
