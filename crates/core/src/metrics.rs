//! Receipt aggregation: throughput, latency percentiles, abort breakdowns,
//! phase-level latency decomposition and windowed time series.
//!
//! [`Metrics::from_receipts`] summarizes a whole run; [`TimeSeries`] buckets
//! the same receipts into fixed simulated-time windows (throughput, latency
//! percentiles and abort rate per window, with optional warm-up trimming),
//! which is how saturation build-up and fault dips become visible.

use std::collections::BTreeMap;

use dichotomy_common::{intern, AbortReason, Decode, Encode, Timestamp, TxnReceipt, TxnStatus};

/// Latency summary in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarize a set of latencies (order irrelevant): mean plus the
    /// p50/p95/p99/max order statistics. Empty input gives all zeros.
    pub fn of(mut latencies: Vec<u64>) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let n = latencies.len();
        // Nearest-rank percentile: the ⌈q·n⌉-th smallest sample (1-based),
        // i.e. index ⌈q·n⌉−1. The old floor((n−1)·q) rounding sat one rank
        // low whenever q·n was fractional — on n=10 it reported the 9th
        // sample as p99.
        let pct = |q: f64| latencies[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencySummary {
            mean_us: latencies.iter().sum::<u64>() as f64 / n as f64,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: latencies[n - 1],
        }
    }
}

/// How the driver aggregates receipts into [`Metrics`] and a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// Retain every receipt and compute exact order-statistic percentiles at
    /// the end of the run. Byte-identical to the historical behaviour; the
    /// default. Memory is O(transactions).
    #[default]
    Exact,
    /// Fold receipts into per-window [`P2Quantile`] sketches as they
    /// complete and drop them. Percentiles are P²-estimated (exact up to 5
    /// samples; within a few percent beyond — see the sketch docs); counts,
    /// means and maxima stay exact. Memory is O(windows), which is what
    /// makes million-client runs fit.
    Streaming,
}

/// Streaming quantile estimator: the P² (piecewise-parabolic) algorithm of
/// Jain & Chlamtac (1985). Five markers track the running estimate of one
/// quantile in O(1) memory and O(1) time per observation.
///
/// The first five samples are kept exactly, so small populations report the
/// same nearest-rank order statistics as [`LatencySummary::of`]. Beyond
/// that the estimate is approximate: on smooth unimodal distributions the
/// mid-quantiles land within ~1–2 % of the exact value and tail quantiles
/// (p95/p99) within ~5 %; heavily multi-modal data can err further. The
/// tests at the bottom of this module pin those bounds.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights: running estimates of the 0, q/2, q, (1+q)/2 and 1
    /// quantiles.
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks into the stream so far).
    positions: [f64; 5],
    /// The first five observations, kept exact for small-n queries and for
    /// seeding the markers.
    initial: [u64; 5],
    count: u64,
}

impl P2Quantile {
    /// A sketch for quantile `q` (in `(0, 1)`; e.g. `0.99` for p99).
    pub fn new(q: f64) -> Self {
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            initial: [0; 5],
            count: 0,
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation into the sketch.
    pub fn observe(&mut self, value: u64) {
        if self.count < 5 {
            self.initial[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                self.initial.sort_unstable();
                for (h, &v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = v as f64;
                }
            }
            return;
        }
        self.count += 1;
        let x = value as f64;
        // Which cell the observation falls into; the extreme markers track
        // the running min and max exactly.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x.max(self.heights[4]);
            3
        } else {
            (1..4).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };
        for pos in &mut self.positions[k + 1..] {
            *pos += 1.0;
        }
        // Nudge the three interior markers towards their desired ranks,
        // adjusting heights parabolically (linearly when the parabola would
        // break monotonicity).
        let dn = [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0];
        let n = (self.count - 1) as f64;
        // Indexing i-1/i/i+1 across three parallel arrays: a range loop
        // reads better than zipped iterators here.
        #[allow(clippy::needless_range_loop)]
        for i in 1..4 {
            let desired = 1.0 + n * dn[i];
            let d = desired - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let ds = d.signum();
                let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
                let (pm, p, pp) = (
                    self.positions[i - 1],
                    self.positions[i],
                    self.positions[i + 1],
                );
                let parabolic = h + ds / (pp - pm)
                    * ((p - pm + ds) * (hp - h) / (pp - p) + (pp - p - ds) * (h - hm) / (p - pm));
                self.heights[i] = if hm < parabolic && parabolic < hp {
                    parabolic
                } else if ds > 0.0 {
                    h + (hp - h) / (pp - p)
                } else {
                    h - (hm - h) / (pm - p)
                };
                self.positions[i] += ds;
            }
        }
    }

    /// The current estimate, rounded to a microsecond. Exact (nearest-rank)
    /// for five or fewer observations; zero before any.
    pub fn estimate(&self) -> u64 {
        let n = self.count as usize;
        if n == 0 {
            return 0;
        }
        if n <= 5 {
            let mut sorted = self.initial;
            let sorted = &mut sorted[..n];
            sorted.sort_unstable();
            return sorted[((self.q * n as f64).ceil() as usize).clamp(1, n) - 1];
        }
        self.heights[2].round().max(0.0) as u64
    }
}

/// Streaming replacement for collecting a `Vec<u64>` of latencies: exact
/// count / mean / max plus P² sketches for p50, p95 and p99, in O(1) memory.
#[derive(Debug, Clone)]
pub struct StreamingLatency {
    count: u64,
    sum: u128,
    max: u64,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl Default for StreamingLatency {
    fn default() -> Self {
        StreamingLatency {
            count: 0,
            sum: 0,
            max: 0,
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }
}

impl StreamingLatency {
    /// Fold one latency into the accumulator.
    pub fn observe(&mut self, latency_us: u64) {
        self.count += 1;
        self.sum += latency_us as u128;
        self.max = self.max.max(latency_us);
        self.p50.observe(latency_us);
        self.p95.observe(latency_us);
        self.p99.observe(latency_us);
    }

    /// Number of latencies observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The summary: mean and max exact, percentiles estimated (exact for
    /// five or fewer samples). Matches `LatencySummary::default()` when
    /// nothing was observed, like [`LatencySummary::of`] on empty input.
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            mean_us: self.sum as f64 / self.count as f64,
            p50_us: self.p50.estimate(),
            p95_us: self.p95.estimate(),
            p99_us: self.p99.estimate(),
            max_us: self.max,
        }
    }
}

/// Aggregated metrics for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted, by reason.
    pub aborts: BTreeMap<AbortReason, u64>,
    /// Committed transactions per second of simulated time.
    pub throughput_tps: f64,
    /// Latency of committed transactions.
    pub latency: LatencySummary,
    /// Mean per-phase latency (µs) across committed transactions, keyed by
    /// the system-reported phase name.
    pub phase_means_us: BTreeMap<&'static str, f64>,
    /// Total simulated duration used for the throughput computation (µs).
    pub duration_us: Timestamp,
}

impl Metrics {
    /// Aggregate a set of receipts. The measurement window runs from the
    /// earliest submit to the latest finish.
    pub fn from_receipts(receipts: &[TxnReceipt]) -> Self {
        if receipts.is_empty() {
            return Metrics::default();
        }
        let start = receipts.iter().map(|r| r.submit_time).min().unwrap_or(0);
        let end = receipts.iter().map(|r| r.finish_time).max().unwrap_or(0);
        let duration_us = end.saturating_sub(start).max(1);

        let mut committed = 0u64;
        let mut aborts: BTreeMap<AbortReason, u64> = BTreeMap::new();
        let mut latencies = Vec::new();
        let mut phase_sums: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
        for r in receipts {
            match r.status {
                TxnStatus::Committed => {
                    committed += 1;
                    latencies.push(r.latency_us());
                    for (name, us) in &r.phase_latencies {
                        let entry = phase_sums.entry(name).or_insert((0.0, 0));
                        entry.0 += *us as f64;
                        entry.1 += 1;
                    }
                }
                TxnStatus::Aborted(reason) => {
                    *aborts.entry(reason).or_insert(0) += 1;
                }
            }
        }
        let phase_means_us = phase_sums
            .into_iter()
            .map(|(name, (sum, count))| (name, sum / count.max(1) as f64))
            .collect();
        Metrics {
            committed,
            aborts,
            throughput_tps: committed as f64 / (duration_us as f64 / 1e6),
            latency: LatencySummary::of(latencies),
            phase_means_us,
            duration_us,
        }
    }

    /// Total aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Abort rate over all finished transactions, in percent.
    pub fn abort_rate_percent(&self) -> f64 {
        let total = self.committed + self.aborted();
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborted() as f64 / total as f64
        }
    }

    /// Aborts attributed to one reason, in percent of all finished
    /// transactions.
    pub fn abort_share_percent(&self, reason: AbortReason) -> f64 {
        let total = self.committed + self.aborted();
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborts.get(&reason).copied().unwrap_or(0) as f64 / total as f64
        }
    }
}

/// One fixed-width window of a [`TimeSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWindow {
    /// Window start (inclusive, simulated µs).
    pub start_us: Timestamp,
    /// Window end (exclusive, simulated µs).
    pub end_us: Timestamp,
    /// Transactions *submitted* inside the window (bucketed by submit time)
    /// — the offered side of the offered-vs-achieved comparison. Under
    /// saturation, `submitted` outruns `committed`; in a closed loop the two
    /// track each other.
    pub submitted: u64,
    /// Transactions that committed (finished) inside the window.
    pub committed: u64,
    /// Transactions that aborted inside the window.
    pub aborted: u64,
    /// Submitted transactions per second over the window width (offered
    /// load as actually generated, open or closed loop alike).
    pub offered_tps: f64,
    /// Committed transactions per second over the window width (achieved
    /// load).
    pub throughput_tps: f64,
    /// Aborts as a percentage of the window's finished transactions.
    pub abort_rate_percent: f64,
    /// Latency summary of the window's committed transactions.
    pub latency: LatencySummary,
}

/// Windowed time-series view of a run: receipts bucketed by finish time into
/// contiguous fixed-width windows, after warm-up trimming.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// Window width (µs).
    pub window_us: u64,
    /// Receipts finishing before this simulated time were dropped.
    pub warmup_us: u64,
    /// The windows, contiguous from `warmup_us` to past the last finish.
    /// Windows with no finishing transactions are present (all-zero) — they
    /// are what a stall or crash dip looks like.
    pub windows: Vec<TimeWindow>,
}

impl TimeSeries {
    /// Bucket `receipts` into `window_us`-wide windows by finish time,
    /// dropping receipts that finish before `warmup_us` (warm-up trimming).
    pub fn from_receipts(receipts: &[TxnReceipt], window_us: u64, warmup_us: Timestamp) -> Self {
        let window_us = window_us.max(1);
        let kept: Vec<&TxnReceipt> = receipts
            .iter()
            .filter(|r| r.finish_time >= warmup_us)
            .collect();
        let Some(last_finish) = kept.iter().map(|r| r.finish_time).max() else {
            return TimeSeries {
                window_us,
                warmup_us,
                windows: Vec::new(),
            };
        };
        let count = ((last_finish - warmup_us) / window_us + 1) as usize;
        let mut submitted = vec![0u64; count];
        let mut committed = vec![0u64; count];
        let mut aborted = vec![0u64; count];
        let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); count];
        for r in kept {
            // The offered side: bucket by submit time (a receipt's submit
            // can land windows before its finish). Submits before the
            // warm-up origin are trimmed like early finishes.
            if r.submit_time >= warmup_us {
                submitted[((r.submit_time - warmup_us) / window_us) as usize] += 1;
            }
            let idx = ((r.finish_time - warmup_us) / window_us) as usize;
            match r.status {
                TxnStatus::Committed => {
                    committed[idx] += 1;
                    latencies[idx].push(r.latency_us());
                }
                TxnStatus::Aborted(_) => aborted[idx] += 1,
            }
        }
        let windows = (0..count)
            .map(|i| {
                let start_us = warmup_us + i as u64 * window_us;
                let finished = committed[i] + aborted[i];
                TimeWindow {
                    start_us,
                    end_us: start_us + window_us,
                    submitted: submitted[i],
                    committed: committed[i],
                    aborted: aborted[i],
                    offered_tps: submitted[i] as f64 / (window_us as f64 / 1e6),
                    throughput_tps: committed[i] as f64 / (window_us as f64 / 1e6),
                    abort_rate_percent: if finished == 0 {
                        0.0
                    } else {
                        100.0 * aborted[i] as f64 / finished as f64
                    },
                    latency: LatencySummary::of(std::mem::take(&mut latencies[i])),
                }
            })
            .collect();
        TimeSeries {
            window_us,
            warmup_us,
            windows,
        }
    }

    /// Whether the series has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The window containing simulated time `t`, if any.
    pub fn window_at(&self, t: Timestamp) -> Option<&TimeWindow> {
        if t < self.warmup_us {
            return None;
        }
        self.windows
            .get(((t - self.warmup_us) / self.window_us.max(1)) as usize)
    }
}

/// Per-window accumulator of the [`StreamingAggregator`]: exact counts plus
/// a [`StreamingLatency`] sketch instead of a latency vector.
#[derive(Debug, Clone, Default)]
struct WindowAccum {
    submitted: u64,
    committed: u64,
    aborted: u64,
    latency: StreamingLatency,
}

/// Incremental receipt aggregation for [`MetricsMode::Streaming`]: receipts
/// fold in one at a time (in any order) and are dropped, producing the same
/// [`Metrics`] / [`TimeSeries`] shapes as the exact path with percentiles
/// P²-estimated. Memory is O(windows), independent of transaction count.
///
/// The two sides mirror the exact pipeline: run-level metrics consume every
/// receipt (no warm-up trimming, like [`Metrics::from_receipts`]); the
/// window side drops receipts finishing before `warmup_us` and buckets by
/// finish time (submit-side counts by submit time), like
/// [`TimeSeries::from_receipts`].
#[derive(Debug, Clone)]
pub struct StreamingAggregator {
    window_us: u64,
    warmup_us: Timestamp,
    // Run-level (unfiltered) side.
    committed: u64,
    aborts: BTreeMap<AbortReason, u64>,
    latency: StreamingLatency,
    phase_sums: BTreeMap<&'static str, (f64, u64)>,
    span: Option<(Timestamp, Timestamp)>,
    // Window (warm-up-trimmed) side, gap-filled on demand.
    windows: Vec<WindowAccum>,
}

impl StreamingAggregator {
    /// An aggregator bucketing into `window_us`-wide windows (clamped to
    /// ≥ 1 µs) after `warmup_us` of warm-up trimming.
    pub fn new(window_us: u64, warmup_us: Timestamp) -> Self {
        StreamingAggregator {
            window_us: window_us.max(1),
            warmup_us,
            committed: 0,
            aborts: BTreeMap::new(),
            latency: StreamingLatency::default(),
            phase_sums: BTreeMap::new(),
            span: None,
            windows: Vec::new(),
        }
    }

    /// Fold one receipt in; the caller can drop it afterwards.
    pub fn observe(&mut self, r: &TxnReceipt) {
        // Run-level side: every receipt counts, as in `Metrics::from_receipts`.
        self.span = Some(match self.span {
            None => (r.submit_time, r.finish_time),
            Some((s, e)) => (s.min(r.submit_time), e.max(r.finish_time)),
        });
        match r.status {
            TxnStatus::Committed => {
                self.committed += 1;
                self.latency.observe(r.latency_us());
                for (name, us) in &r.phase_latencies {
                    let entry = self.phase_sums.entry(name).or_insert((0.0, 0));
                    entry.0 += *us as f64;
                    entry.1 += 1;
                }
            }
            TxnStatus::Aborted(reason) => {
                *self.aborts.entry(reason).or_insert(0) += 1;
            }
        }
        // Window side: receipts finishing inside the warm-up are dropped
        // entirely (submit side included), as in `TimeSeries::from_receipts`.
        if r.finish_time < self.warmup_us {
            return;
        }
        let idx = ((r.finish_time - self.warmup_us) / self.window_us) as usize;
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, WindowAccum::default);
        }
        if r.submit_time >= self.warmup_us {
            let sub = ((r.submit_time - self.warmup_us) / self.window_us) as usize;
            self.windows[sub].submitted += 1;
        }
        let w = &mut self.windows[idx];
        match r.status {
            TxnStatus::Committed => {
                w.committed += 1;
                w.latency.observe(r.latency_us());
            }
            TxnStatus::Aborted(_) => w.aborted += 1,
        }
    }

    /// Close the aggregation: the run [`Metrics`], the [`TimeSeries`] and
    /// the makespan (latest finish observed, or `fallback_now` when no
    /// receipt ever arrived).
    pub fn finish(self, fallback_now: Timestamp) -> (Metrics, TimeSeries, Timestamp) {
        let (start, end) = self.span.unwrap_or((0, 0));
        let duration_us = end.saturating_sub(start).max(1);
        let metrics = if self.span.is_none() {
            Metrics::default()
        } else {
            Metrics {
                committed: self.committed,
                aborts: self.aborts,
                throughput_tps: self.committed as f64 / (duration_us as f64 / 1e6),
                latency: self.latency.summary(),
                phase_means_us: self
                    .phase_sums
                    .into_iter()
                    .map(|(name, (sum, count))| (name, sum / count.max(1) as f64))
                    .collect(),
                duration_us,
            }
        };
        let window_us = self.window_us;
        let warmup_us = self.warmup_us;
        let windows = self
            .windows
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let start_us = warmup_us + i as u64 * window_us;
                let finished = w.committed + w.aborted;
                TimeWindow {
                    start_us,
                    end_us: start_us + window_us,
                    submitted: w.submitted,
                    committed: w.committed,
                    aborted: w.aborted,
                    offered_tps: w.submitted as f64 / (window_us as f64 / 1e6),
                    throughput_tps: w.committed as f64 / (window_us as f64 / 1e6),
                    abort_rate_percent: if finished == 0 {
                        0.0
                    } else {
                        100.0 * w.aborted as f64 / finished as f64
                    },
                    latency: w.latency.summary(),
                }
            })
            .collect();
        let series = TimeSeries {
            window_us,
            warmup_us,
            windows,
        };
        let makespan = match self.span {
            Some((_, last_finish)) => last_finish,
            None => fallback_now,
        };
        (metrics, series, makespan)
    }
}

// Canonical codecs: metrics round-trip through the in-repo `Encode`/`Decode`
// pair so probe results can live in the persistent measurement cache. `f64`
// fields travel as raw bits, so a decoded value is bit-identical to the
// encoded one and a cache hit renders byte-identical JSON.

impl Encode for MetricsMode {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MetricsMode::Exact => 0,
            MetricsMode::Streaming => 1,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Encode for LatencySummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.mean_us.encode_into(out);
        self.p50_us.encode_into(out);
        self.p95_us.encode_into(out);
        self.p99_us.encode_into(out);
        self.max_us.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        40
    }
}

impl Decode for LatencySummary {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(LatencySummary {
            mean_us: f64::decode_from(input)?,
            p50_us: u64::decode_from(input)?,
            p95_us: u64::decode_from(input)?,
            p99_us: u64::decode_from(input)?,
            max_us: u64::decode_from(input)?,
        })
    }
}

impl Encode for Metrics {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.committed.encode_into(out);
        out.extend_from_slice(&(self.aborts.len() as u32).to_be_bytes());
        for (reason, count) in &self.aborts {
            reason.encode_into(out);
            count.encode_into(out);
        }
        self.throughput_tps.encode_into(out);
        self.latency.encode_into(out);
        out.extend_from_slice(&(self.phase_means_us.len() as u32).to_be_bytes());
        for (name, mean) in &self.phase_means_us {
            name.encode_into(out);
            mean.encode_into(out);
        }
        self.duration_us.encode_into(out);
    }
}

impl Decode for Metrics {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let committed = u64::decode_from(input)?;
        let mut aborts = BTreeMap::new();
        for _ in 0..u32::decode_from(input)? {
            aborts.insert(AbortReason::decode_from(input)?, u64::decode_from(input)?);
        }
        let throughput_tps = f64::decode_from(input)?;
        let latency = LatencySummary::decode_from(input)?;
        let mut phase_means_us = BTreeMap::new();
        for _ in 0..u32::decode_from(input)? {
            // Phase names are `&'static str` literals on the encode side; the
            // decode side interns them back into 'static lifetime.
            let name = intern(&String::decode_from(input)?);
            phase_means_us.insert(name, f64::decode_from(input)?);
        }
        Some(Metrics {
            committed,
            aborts,
            throughput_tps,
            latency,
            phase_means_us,
            duration_us: Timestamp::decode_from(input)?,
        })
    }
}

impl Encode for TimeWindow {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.start_us.encode_into(out);
        self.end_us.encode_into(out);
        self.submitted.encode_into(out);
        self.committed.encode_into(out);
        self.aborted.encode_into(out);
        self.offered_tps.encode_into(out);
        self.throughput_tps.encode_into(out);
        self.abort_rate_percent.encode_into(out);
        self.latency.encode_into(out);
    }
}

impl Decode for TimeWindow {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(TimeWindow {
            start_us: Timestamp::decode_from(input)?,
            end_us: Timestamp::decode_from(input)?,
            submitted: u64::decode_from(input)?,
            committed: u64::decode_from(input)?,
            aborted: u64::decode_from(input)?,
            offered_tps: f64::decode_from(input)?,
            throughput_tps: f64::decode_from(input)?,
            abort_rate_percent: f64::decode_from(input)?,
            latency: LatencySummary::decode_from(input)?,
        })
    }
}

impl Encode for TimeSeries {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.window_us.encode_into(out);
        self.warmup_us.encode_into(out);
        self.windows.encode_into(out);
    }
}

impl Decode for TimeSeries {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(TimeSeries {
            window_us: u64::decode_from(input)?,
            warmup_us: u64::decode_from(input)?,
            windows: Vec::decode_from(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::rng::{self, Rng};
    use dichotomy_common::{ClientId, TxnId};

    fn id(seq: u64) -> TxnId {
        TxnId::new(ClientId(1), seq)
    }

    /// `sketch` within `tol` relative error of `exact` (absolute floor of
    /// one microsecond so tiny exact values don't demand impossible
    /// precision).
    fn close(sketch: u64, exact: u64, tol: f64) -> bool {
        (sketch as f64 - exact as f64).abs() <= (tol * exact as f64).max(1.0)
    }

    /// Feed `samples` through a [`StreamingLatency`] and compare against the
    /// exact summary, asserting the documented accuracy bounds: mean and
    /// max exact, p50 within `tol_mid`, p95/p99 within `tol_tail`.
    fn assert_sketch_tracks_exact(samples: Vec<u64>, tol_mid: f64, tol_tail: f64, label: &str) {
        let mut sketch = StreamingLatency::default();
        for &s in &samples {
            sketch.observe(s);
        }
        let exact = LatencySummary::of(samples);
        let est = sketch.summary();
        assert!(
            (est.mean_us - exact.mean_us).abs() <= 1e-6 * exact.mean_us.max(1.0),
            "{label}: mean {} vs exact {}",
            est.mean_us,
            exact.mean_us
        );
        assert_eq!(est.max_us, exact.max_us, "{label}: max is tracked exactly");
        assert!(
            close(est.p50_us, exact.p50_us, tol_mid),
            "{label}: p50 {} vs exact {}",
            est.p50_us,
            exact.p50_us
        );
        assert!(
            close(est.p95_us, exact.p95_us, tol_tail),
            "{label}: p95 {} vs exact {}",
            est.p95_us,
            exact.p95_us
        );
        assert!(
            close(est.p99_us, exact.p99_us, tol_tail),
            "{label}: p99 {} vs exact {}",
            est.p99_us,
            exact.p99_us
        );
    }

    #[test]
    fn sketch_tracks_exact_percentiles_on_uniform_data() {
        for case in 0..5u64 {
            let mut r = rng::seeded(rng::derive_seed(0x5EED, &format!("uniform{case}")));
            let samples: Vec<u64> = (0..20_000).map(|_| r.gen_range(1..100_000u64)).collect();
            // Uniform is P²'s best case: a few percent everywhere.
            assert_sketch_tracks_exact(samples, 0.05, 0.05, "uniform");
        }
    }

    #[test]
    fn sketch_tracks_exact_percentiles_on_heavy_tailed_data() {
        // Pareto-shaped (Zipf-like tail): x = scale · u^(−1/α), α = 1.2.
        // The tail stretches across four orders of magnitude; the sketch is
        // documented to hold mid-quantiles to a few percent and tails to
        // ~10 % here.
        for case in 0..5u64 {
            let mut r = rng::seeded(rng::derive_seed(0x21F, &format!("zipf{case}")));
            let samples: Vec<u64> = (0..20_000)
                .map(|_| {
                    let u: f64 = r.gen::<f64>().max(1e-9);
                    (100.0 * u.powf(-1.0 / 1.2)).min(1e9) as u64
                })
                .collect();
            assert_sketch_tracks_exact(samples, 0.05, 0.10, "pareto");
        }
    }

    #[test]
    fn sketch_is_exact_on_constant_data() {
        let mut sketch = StreamingLatency::default();
        for _ in 0..10_000 {
            sketch.observe(777);
        }
        let est = sketch.summary();
        assert_eq!(est.p50_us, 777);
        assert_eq!(est.p95_us, 777);
        assert_eq!(est.p99_us, 777);
        assert_eq!(est.max_us, 777);
        assert_eq!(est.mean_us, 777.0);
    }

    #[test]
    fn sketch_tracks_bimodal_data_within_documented_bounds() {
        // Two tight modes three orders of magnitude apart — the adversarial
        // case for P². The upper-tail quantiles sit inside the slow mode and
        // stay within ~10 %; the median may land between the modes, so the
        // documented bound for p50 is only "inside the sampled range".
        for case in 0..5u64 {
            let mut r = rng::seeded(rng::derive_seed(0xB1D0, &format!("bimodal{case}")));
            let samples: Vec<u64> = (0..20_000)
                .map(|_| {
                    if r.gen_bool(0.5) {
                        r.gen_range(900..1_100u64)
                    } else {
                        r.gen_range(90_000..110_000u64)
                    }
                })
                .collect();
            let mut sketch = StreamingLatency::default();
            for &s in &samples {
                sketch.observe(s);
            }
            let exact = LatencySummary::of(samples);
            let est = sketch.summary();
            assert_eq!(est.max_us, exact.max_us);
            assert!(
                est.p50_us >= 900 && est.p50_us <= 110_000,
                "p50 {} outside the sampled range",
                est.p50_us
            );
            assert!(
                close(est.p95_us, exact.p95_us, 0.10),
                "p95 {} vs exact {}",
                est.p95_us,
                exact.p95_us
            );
            assert!(
                close(est.p99_us, exact.p99_us, 0.10),
                "p99 {} vs exact {}",
                est.p99_us,
                exact.p99_us
            );
        }
    }

    #[test]
    fn sketch_edges_match_exact_for_empty_and_tiny_populations() {
        // Empty: the zero default, like `LatencySummary::of(vec![])`.
        assert_eq!(
            StreamingLatency::default().summary(),
            LatencySummary::default()
        );
        // Up to five samples the sketch holds the population exactly and
        // reports the same nearest-rank order statistics.
        for n in 1..=5usize {
            let samples: Vec<u64> = (1..=n as u64).map(|i| i * 30).rev().collect();
            let mut sketch = StreamingLatency::default();
            for &s in &samples {
                sketch.observe(s);
            }
            assert_eq!(
                sketch.summary(),
                LatencySummary::of(samples),
                "n = {n} should be exact"
            );
        }
    }

    #[test]
    fn streaming_aggregator_mirrors_the_exact_pipeline() {
        // A mixed run: commits and aborts, latencies spread across windows,
        // some receipts inside the warm-up. Counts, boundaries, rates and
        // means must match the exact pipeline exactly; percentiles within
        // the sketch bounds.
        let mut r = rng::seeded(rng::derive_seed(0xA66, "aggregator"));
        let receipts: Vec<TxnReceipt> = (0..4_000u64)
            .map(|i| {
                let submit = i * 37;
                let latency = r.gen_range(50..5_000u64);
                if i % 7 == 0 {
                    TxnReceipt::aborted(id(i), AbortReason::Overload, submit, submit + latency)
                } else {
                    TxnReceipt::committed(id(i), submit, submit + latency)
                }
            })
            .collect();
        let (window_us, warmup_us) = (10_000, 5_000);

        let mut agg = StreamingAggregator::new(window_us, warmup_us);
        for r in &receipts {
            agg.observe(r);
        }
        let (metrics, series, makespan) = agg.finish(0);

        let exact_metrics = Metrics::from_receipts(&receipts);
        let exact_series = TimeSeries::from_receipts(&receipts, window_us, warmup_us);
        assert_eq!(metrics.committed, exact_metrics.committed);
        assert_eq!(metrics.aborts, exact_metrics.aborts);
        assert_eq!(metrics.duration_us, exact_metrics.duration_us);
        assert_eq!(metrics.throughput_tps, exact_metrics.throughput_tps);
        assert_eq!(metrics.latency.max_us, exact_metrics.latency.max_us);
        assert!(close(
            metrics.latency.p50_us,
            exact_metrics.latency.p50_us,
            0.05
        ));
        assert!(close(
            metrics.latency.p99_us,
            exact_metrics.latency.p99_us,
            0.10
        ));
        assert_eq!(
            makespan,
            receipts.iter().map(|r| r.finish_time).max().unwrap()
        );

        assert_eq!(series.windows.len(), exact_series.windows.len());
        for (w, e) in series.windows.iter().zip(&exact_series.windows) {
            assert_eq!((w.start_us, w.end_us), (e.start_us, e.end_us));
            assert_eq!(w.submitted, e.submitted);
            assert_eq!(w.committed, e.committed);
            assert_eq!(w.aborted, e.aborted);
            assert_eq!(w.offered_tps, e.offered_tps);
            assert_eq!(w.throughput_tps, e.throughput_tps);
            assert_eq!(w.abort_rate_percent, e.abort_rate_percent);
            assert_eq!(w.latency.max_us, e.latency.max_us);
            assert!(
                close(w.latency.p50_us, e.latency.p50_us, 0.10),
                "window at {}: p50 {} vs {}",
                w.start_us,
                w.latency.p50_us,
                e.latency.p50_us
            );
        }
    }

    #[test]
    fn streaming_aggregator_handles_empty_and_gap_shapes() {
        // No receipts: default metrics, empty series, fallback makespan.
        let (m, s, makespan) = StreamingAggregator::new(1_000, 0).finish(42);
        assert_eq!(m.committed, 0);
        assert!(s.is_empty());
        assert_eq!(makespan, 42);
        // A gap between finishes materializes as an all-zero window, exactly
        // like the exact pipeline's dip shape.
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 500),
            TxnReceipt::committed(id(2), 3_000, 3_500),
        ];
        let mut agg = StreamingAggregator::new(1_000, 0);
        for r in &receipts {
            agg.observe(r);
        }
        let (_, series, _) = agg.finish(0);
        let exact = TimeSeries::from_receipts(&receipts, 1_000, 0);
        assert_eq!(series.windows.len(), 4);
        assert_eq!(
            series
                .windows
                .iter()
                .map(|w| w.committed)
                .collect::<Vec<_>>(),
            exact
                .windows
                .iter()
                .map(|w| w.committed)
                .collect::<Vec<_>>()
        );
        assert_eq!(series.windows[1].committed, 0);
        assert_eq!(series.windows[1].latency, LatencySummary::default());
    }

    #[test]
    fn empty_receipts_give_zero_metrics() {
        let m = Metrics::from_receipts(&[]);
        assert_eq!(m.committed, 0);
        assert_eq!(m.throughput_tps, 0.0);
        assert_eq!(m.abort_rate_percent(), 0.0);
    }

    #[test]
    fn throughput_and_latency_are_computed_over_the_window() {
        // 10 commits over 1 second of simulated time, each 1 ms latency.
        let receipts: Vec<TxnReceipt> = (0..10)
            .map(|i| TxnReceipt::committed(id(i), i * 100_000, i * 100_000 + 1_000))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 10);
        assert!(
            (m.throughput_tps - 10.0 / 0.901).abs() < 0.5,
            "{}",
            m.throughput_tps
        );
        assert_eq!(m.latency.p50_us, 1_000);
        assert_eq!(m.latency.max_us, 1_000);
        assert!((m.latency.mean_us - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn abort_breakdown_by_reason() {
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 10),
            TxnReceipt::aborted(id(2), AbortReason::ReadWriteConflict, 0, 10),
            TxnReceipt::aborted(id(3), AbortReason::ReadWriteConflict, 0, 10),
            TxnReceipt::aborted(id(4), AbortReason::InconsistentRead, 0, 10),
        ];
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 1);
        assert_eq!(m.aborted(), 3);
        assert_eq!(m.abort_rate_percent(), 75.0);
        assert_eq!(m.abort_share_percent(AbortReason::ReadWriteConflict), 50.0);
        assert_eq!(m.abort_share_percent(AbortReason::InconsistentRead), 25.0);
        assert_eq!(m.abort_share_percent(AbortReason::Overload), 0.0);
    }

    #[test]
    fn phase_means_average_across_committed_receipts() {
        let mut a = TxnReceipt::committed(id(1), 0, 300);
        a.phase_latencies = vec![("execute", 100), ("validate", 200)];
        let mut b = TxnReceipt::committed(id(2), 0, 500);
        b.phase_latencies = vec![("execute", 300), ("validate", 200)];
        let m = Metrics::from_receipts(&[a, b]);
        assert_eq!(m.phase_means_us["execute"], 200.0);
        assert_eq!(m.phase_means_us["validate"], 200.0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        // n=100, latencies 10..=1000 step 10: nearest rank ⌈q·n⌉−1 picks
        // index 49 / 94 / 98.
        let receipts: Vec<TxnReceipt> = (1..=100)
            .map(|i| TxnReceipt::committed(id(i), 0, i * 10))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.latency.p50_us, 500);
        assert_eq!(m.latency.p95_us, 950);
        assert_eq!(m.latency.p99_us, 990);
        assert_eq!(m.latency.max_us, 1000);
        // n=10, latencies 10..=100: ⌈0.99·10⌉−1 = 9, so p99 is the maximum
        // (the old floor((n−1)·q) rounding reported index 8, i.e. 90).
        let m = Metrics::from_receipts(
            &(1..=10)
                .map(|i| TxnReceipt::committed(id(i), 0, i * 10))
                .collect::<Vec<_>>(),
        );
        assert_eq!(m.latency.p50_us, 50);
        assert_eq!(m.latency.p95_us, 100);
        assert_eq!(m.latency.p99_us, 100);
    }

    #[test]
    fn single_receipt_metrics_are_well_defined() {
        let m = Metrics::from_receipts(&[TxnReceipt::committed(id(1), 100, 400)]);
        assert_eq!(m.committed, 1);
        assert_eq!(m.aborted(), 0);
        // Degenerate window: duration clamps to ≥ 1 µs, so throughput is
        // finite; every percentile equals the single sample.
        assert!(m.throughput_tps.is_finite() && m.throughput_tps > 0.0);
        assert_eq!(m.latency.p50_us, 300);
        assert_eq!(m.latency.p95_us, 300);
        assert_eq!(m.latency.p99_us, 300);
        assert_eq!(m.latency.max_us, 300);
        assert_eq!(m.latency.mean_us, 300.0);
    }

    #[test]
    fn all_aborted_run_has_zero_throughput_and_full_abort_rate() {
        let receipts: Vec<TxnReceipt> = (0..5)
            .map(|i| TxnReceipt::aborted(id(i), AbortReason::Overload, i * 10, i * 10 + 5))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 0);
        assert_eq!(m.aborted(), 5);
        assert_eq!(m.throughput_tps, 0.0);
        assert_eq!(m.abort_rate_percent(), 100.0);
        // No committed latencies: the summary is the zero default.
        assert_eq!(m.latency, LatencySummary::default());
    }

    #[test]
    fn empty_receipts_give_an_empty_time_series() {
        let s = TimeSeries::from_receipts(&[], 1_000, 0);
        assert!(s.is_empty());
        assert_eq!(s.window_at(500), None);
    }

    #[test]
    fn time_series_buckets_by_finish_time_and_keeps_empty_windows() {
        // Finishes at 500, 1500, 1600 and 3500: four 1 ms windows, the third
        // of which is empty (the "dip" shape).
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 500),
            TxnReceipt::committed(id(2), 1_000, 1_500),
            TxnReceipt::aborted(id(3), AbortReason::Overload, 1_000, 1_600),
            TxnReceipt::committed(id(4), 3_000, 3_500),
        ];
        let s = TimeSeries::from_receipts(&receipts, 1_000, 0);
        assert_eq!(s.windows.len(), 4);
        assert_eq!(
            s.windows.iter().map(|w| w.committed).collect::<Vec<_>>(),
            vec![1, 1, 0, 1]
        );
        // The offered side buckets by submit time: submits at 0, 1000, 1000
        // and 3000.
        assert_eq!(
            s.windows.iter().map(|w| w.submitted).collect::<Vec<_>>(),
            vec![1, 2, 0, 1]
        );
        assert_eq!(s.windows[1].offered_tps, 2_000.0);
        assert_eq!(s.windows[1].aborted, 1);
        assert_eq!(s.windows[1].abort_rate_percent, 50.0);
        assert_eq!(s.windows[2].throughput_tps, 0.0);
        // 1 commit per 1 ms window = 1000 tps.
        assert_eq!(s.windows[0].throughput_tps, 1_000.0);
        assert_eq!(s.window_at(3_200).unwrap().start_us, 3_000);
        assert_eq!(s.windows[0].end_us, 1_000);
    }

    #[test]
    fn offered_load_outruns_achieved_load_in_a_backlogged_series() {
        // 10 submissions inside the first millisecond, but the pipeline only
        // finishes one per millisecond: offered ≫ achieved early, and the
        // backlog drains across later windows with zero offered load.
        let receipts: Vec<TxnReceipt> = (0..10)
            .map(|i| TxnReceipt::committed(id(i), i * 100, (i + 1) * 1_000))
            .collect();
        let s = TimeSeries::from_receipts(&receipts, 1_000, 0);
        assert_eq!(s.windows[0].submitted, 10);
        assert_eq!(s.windows[0].committed, 0);
        assert!(s.windows[0].offered_tps > s.windows[0].throughput_tps);
        let tail = s.windows.last().unwrap();
        assert_eq!(tail.submitted, 0);
        assert_eq!(tail.committed, 1);
        // Submits before the warm-up origin are trimmed from the offered
        // side just like early finishes.
        let trimmed = TimeSeries::from_receipts(&receipts, 1_000, 1_000);
        assert_eq!(trimmed.windows[0].start_us, 1_000);
        assert_eq!(
            trimmed.windows.iter().map(|w| w.submitted).sum::<u64>(),
            0,
            "all submits (0–900 µs) predate the warm-up origin"
        );
    }

    #[test]
    fn warmup_trimming_drops_early_finishes_and_shifts_the_origin() {
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 400), // trimmed
            TxnReceipt::committed(id(2), 0, 1_200),
            TxnReceipt::committed(id(3), 0, 1_900),
        ];
        let s = TimeSeries::from_receipts(&receipts, 1_000, 1_000);
        assert_eq!(s.windows.len(), 1);
        assert_eq!(s.windows[0].start_us, 1_000);
        assert_eq!(s.windows[0].committed, 2);
        assert_eq!(s.window_at(500), None, "before the warm-up origin");
    }

    #[test]
    fn windowed_percentiles_match_a_hand_computed_fixture() {
        // Window 0 (finish < 1000): latencies 10..=100 step 10 (10 samples).
        // Window 1: latencies 200 and 400.
        let mut receipts: Vec<TxnReceipt> = (1..=10)
            .map(|i| TxnReceipt::committed(id(i), 0, i * 10))
            .collect();
        receipts.push(TxnReceipt::committed(id(11), 1_000, 1_200));
        receipts.push(TxnReceipt::committed(id(12), 1_000, 1_400));
        let s = TimeSeries::from_receipts(&receipts, 1_000, 0);
        assert_eq!(s.windows.len(), 2);
        let w0 = &s.windows[0];
        // Nearest rank, index = ⌈q·n⌉−1: n=10 → p50 at index 4 (50),
        // p95 at index ⌈9.5⌉−1 = 9 (100), p99 at index ⌈9.9⌉−1 = 9 (100).
        assert_eq!(w0.latency.p50_us, 50);
        assert_eq!(w0.latency.p95_us, 100);
        assert_eq!(w0.latency.p99_us, 100);
        assert_eq!(w0.latency.max_us, 100);
        assert_eq!(w0.latency.mean_us, 55.0);
        let w1 = &s.windows[1];
        // n=2 → p50 at index ⌈1⌉−1 = 0 (200), p95/p99 at index ⌈1.9⌉−1 = 1
        // (400), max 400.
        assert_eq!(w1.latency.p50_us, 200);
        assert_eq!(w1.latency.p95_us, 400);
        assert_eq!(w1.latency.p99_us, 400);
        assert_eq!(w1.latency.max_us, 400);
        assert_eq!(w1.latency.mean_us, 300.0);
    }
}
