//! Receipt aggregation: throughput, latency percentiles, abort breakdowns,
//! phase-level latency decomposition and windowed time series.
//!
//! [`Metrics::from_receipts`] summarizes a whole run; [`TimeSeries`] buckets
//! the same receipts into fixed simulated-time windows (throughput, latency
//! percentiles and abort rate per window, with optional warm-up trimming),
//! which is how saturation build-up and fault dips become visible.

use std::collections::BTreeMap;

use dichotomy_common::{AbortReason, Timestamp, TxnReceipt, TxnStatus};

/// Latency summary in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarize a set of latencies (order irrelevant): mean plus the
    /// p50/p95/p99/max order statistics. Empty input gives all zeros.
    pub fn of(mut latencies: Vec<u64>) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let n = latencies.len();
        // Nearest-rank percentile: the ⌈q·n⌉-th smallest sample (1-based),
        // i.e. index ⌈q·n⌉−1. The old floor((n−1)·q) rounding sat one rank
        // low whenever q·n was fractional — on n=10 it reported the 9th
        // sample as p99.
        let pct = |q: f64| latencies[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencySummary {
            mean_us: latencies.iter().sum::<u64>() as f64 / n as f64,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: latencies[n - 1],
        }
    }
}

/// Aggregated metrics for one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted, by reason.
    pub aborts: BTreeMap<AbortReason, u64>,
    /// Committed transactions per second of simulated time.
    pub throughput_tps: f64,
    /// Latency of committed transactions.
    pub latency: LatencySummary,
    /// Mean per-phase latency (µs) across committed transactions, keyed by
    /// the system-reported phase name.
    pub phase_means_us: BTreeMap<&'static str, f64>,
    /// Total simulated duration used for the throughput computation (µs).
    pub duration_us: Timestamp,
}

impl Metrics {
    /// Aggregate a set of receipts. The measurement window runs from the
    /// earliest submit to the latest finish.
    pub fn from_receipts(receipts: &[TxnReceipt]) -> Self {
        if receipts.is_empty() {
            return Metrics::default();
        }
        let start = receipts.iter().map(|r| r.submit_time).min().unwrap_or(0);
        let end = receipts.iter().map(|r| r.finish_time).max().unwrap_or(0);
        let duration_us = end.saturating_sub(start).max(1);

        let mut committed = 0u64;
        let mut aborts: BTreeMap<AbortReason, u64> = BTreeMap::new();
        let mut latencies = Vec::new();
        let mut phase_sums: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
        for r in receipts {
            match r.status {
                TxnStatus::Committed => {
                    committed += 1;
                    latencies.push(r.latency_us());
                    for (name, us) in &r.phase_latencies {
                        let entry = phase_sums.entry(name).or_insert((0.0, 0));
                        entry.0 += *us as f64;
                        entry.1 += 1;
                    }
                }
                TxnStatus::Aborted(reason) => {
                    *aborts.entry(reason).or_insert(0) += 1;
                }
            }
        }
        let phase_means_us = phase_sums
            .into_iter()
            .map(|(name, (sum, count))| (name, sum / count.max(1) as f64))
            .collect();
        Metrics {
            committed,
            aborts,
            throughput_tps: committed as f64 / (duration_us as f64 / 1e6),
            latency: LatencySummary::of(latencies),
            phase_means_us,
            duration_us,
        }
    }

    /// Total aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Abort rate over all finished transactions, in percent.
    pub fn abort_rate_percent(&self) -> f64 {
        let total = self.committed + self.aborted();
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborted() as f64 / total as f64
        }
    }

    /// Aborts attributed to one reason, in percent of all finished
    /// transactions.
    pub fn abort_share_percent(&self, reason: AbortReason) -> f64 {
        let total = self.committed + self.aborted();
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborts.get(&reason).copied().unwrap_or(0) as f64 / total as f64
        }
    }
}

/// One fixed-width window of a [`TimeSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWindow {
    /// Window start (inclusive, simulated µs).
    pub start_us: Timestamp,
    /// Window end (exclusive, simulated µs).
    pub end_us: Timestamp,
    /// Transactions *submitted* inside the window (bucketed by submit time)
    /// — the offered side of the offered-vs-achieved comparison. Under
    /// saturation, `submitted` outruns `committed`; in a closed loop the two
    /// track each other.
    pub submitted: u64,
    /// Transactions that committed (finished) inside the window.
    pub committed: u64,
    /// Transactions that aborted inside the window.
    pub aborted: u64,
    /// Submitted transactions per second over the window width (offered
    /// load as actually generated, open or closed loop alike).
    pub offered_tps: f64,
    /// Committed transactions per second over the window width (achieved
    /// load).
    pub throughput_tps: f64,
    /// Aborts as a percentage of the window's finished transactions.
    pub abort_rate_percent: f64,
    /// Latency summary of the window's committed transactions.
    pub latency: LatencySummary,
}

/// Windowed time-series view of a run: receipts bucketed by finish time into
/// contiguous fixed-width windows, after warm-up trimming.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// Window width (µs).
    pub window_us: u64,
    /// Receipts finishing before this simulated time were dropped.
    pub warmup_us: u64,
    /// The windows, contiguous from `warmup_us` to past the last finish.
    /// Windows with no finishing transactions are present (all-zero) — they
    /// are what a stall or crash dip looks like.
    pub windows: Vec<TimeWindow>,
}

impl TimeSeries {
    /// Bucket `receipts` into `window_us`-wide windows by finish time,
    /// dropping receipts that finish before `warmup_us` (warm-up trimming).
    pub fn from_receipts(receipts: &[TxnReceipt], window_us: u64, warmup_us: Timestamp) -> Self {
        let window_us = window_us.max(1);
        let kept: Vec<&TxnReceipt> = receipts
            .iter()
            .filter(|r| r.finish_time >= warmup_us)
            .collect();
        let Some(last_finish) = kept.iter().map(|r| r.finish_time).max() else {
            return TimeSeries {
                window_us,
                warmup_us,
                windows: Vec::new(),
            };
        };
        let count = ((last_finish - warmup_us) / window_us + 1) as usize;
        let mut submitted = vec![0u64; count];
        let mut committed = vec![0u64; count];
        let mut aborted = vec![0u64; count];
        let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); count];
        for r in kept {
            // The offered side: bucket by submit time (a receipt's submit
            // can land windows before its finish). Submits before the
            // warm-up origin are trimmed like early finishes.
            if r.submit_time >= warmup_us {
                submitted[((r.submit_time - warmup_us) / window_us) as usize] += 1;
            }
            let idx = ((r.finish_time - warmup_us) / window_us) as usize;
            match r.status {
                TxnStatus::Committed => {
                    committed[idx] += 1;
                    latencies[idx].push(r.latency_us());
                }
                TxnStatus::Aborted(_) => aborted[idx] += 1,
            }
        }
        let windows = (0..count)
            .map(|i| {
                let start_us = warmup_us + i as u64 * window_us;
                let finished = committed[i] + aborted[i];
                TimeWindow {
                    start_us,
                    end_us: start_us + window_us,
                    submitted: submitted[i],
                    committed: committed[i],
                    aborted: aborted[i],
                    offered_tps: submitted[i] as f64 / (window_us as f64 / 1e6),
                    throughput_tps: committed[i] as f64 / (window_us as f64 / 1e6),
                    abort_rate_percent: if finished == 0 {
                        0.0
                    } else {
                        100.0 * aborted[i] as f64 / finished as f64
                    },
                    latency: LatencySummary::of(std::mem::take(&mut latencies[i])),
                }
            })
            .collect();
        TimeSeries {
            window_us,
            warmup_us,
            windows,
        }
    }

    /// Whether the series has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The window containing simulated time `t`, if any.
    pub fn window_at(&self, t: Timestamp) -> Option<&TimeWindow> {
        if t < self.warmup_us {
            return None;
        }
        self.windows
            .get(((t - self.warmup_us) / self.window_us.max(1)) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, TxnId};

    fn id(seq: u64) -> TxnId {
        TxnId::new(ClientId(1), seq)
    }

    #[test]
    fn empty_receipts_give_zero_metrics() {
        let m = Metrics::from_receipts(&[]);
        assert_eq!(m.committed, 0);
        assert_eq!(m.throughput_tps, 0.0);
        assert_eq!(m.abort_rate_percent(), 0.0);
    }

    #[test]
    fn throughput_and_latency_are_computed_over_the_window() {
        // 10 commits over 1 second of simulated time, each 1 ms latency.
        let receipts: Vec<TxnReceipt> = (0..10)
            .map(|i| TxnReceipt::committed(id(i), i * 100_000, i * 100_000 + 1_000))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 10);
        assert!(
            (m.throughput_tps - 10.0 / 0.901).abs() < 0.5,
            "{}",
            m.throughput_tps
        );
        assert_eq!(m.latency.p50_us, 1_000);
        assert_eq!(m.latency.max_us, 1_000);
        assert!((m.latency.mean_us - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn abort_breakdown_by_reason() {
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 10),
            TxnReceipt::aborted(id(2), AbortReason::ReadWriteConflict, 0, 10),
            TxnReceipt::aborted(id(3), AbortReason::ReadWriteConflict, 0, 10),
            TxnReceipt::aborted(id(4), AbortReason::InconsistentRead, 0, 10),
        ];
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 1);
        assert_eq!(m.aborted(), 3);
        assert_eq!(m.abort_rate_percent(), 75.0);
        assert_eq!(m.abort_share_percent(AbortReason::ReadWriteConflict), 50.0);
        assert_eq!(m.abort_share_percent(AbortReason::InconsistentRead), 25.0);
        assert_eq!(m.abort_share_percent(AbortReason::Overload), 0.0);
    }

    #[test]
    fn phase_means_average_across_committed_receipts() {
        let mut a = TxnReceipt::committed(id(1), 0, 300);
        a.phase_latencies = vec![("execute", 100), ("validate", 200)];
        let mut b = TxnReceipt::committed(id(2), 0, 500);
        b.phase_latencies = vec![("execute", 300), ("validate", 200)];
        let m = Metrics::from_receipts(&[a, b]);
        assert_eq!(m.phase_means_us["execute"], 200.0);
        assert_eq!(m.phase_means_us["validate"], 200.0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        // n=100, latencies 10..=1000 step 10: nearest rank ⌈q·n⌉−1 picks
        // index 49 / 94 / 98.
        let receipts: Vec<TxnReceipt> = (1..=100)
            .map(|i| TxnReceipt::committed(id(i), 0, i * 10))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.latency.p50_us, 500);
        assert_eq!(m.latency.p95_us, 950);
        assert_eq!(m.latency.p99_us, 990);
        assert_eq!(m.latency.max_us, 1000);
        // n=10, latencies 10..=100: ⌈0.99·10⌉−1 = 9, so p99 is the maximum
        // (the old floor((n−1)·q) rounding reported index 8, i.e. 90).
        let m = Metrics::from_receipts(
            &(1..=10)
                .map(|i| TxnReceipt::committed(id(i), 0, i * 10))
                .collect::<Vec<_>>(),
        );
        assert_eq!(m.latency.p50_us, 50);
        assert_eq!(m.latency.p95_us, 100);
        assert_eq!(m.latency.p99_us, 100);
    }

    #[test]
    fn single_receipt_metrics_are_well_defined() {
        let m = Metrics::from_receipts(&[TxnReceipt::committed(id(1), 100, 400)]);
        assert_eq!(m.committed, 1);
        assert_eq!(m.aborted(), 0);
        // Degenerate window: duration clamps to ≥ 1 µs, so throughput is
        // finite; every percentile equals the single sample.
        assert!(m.throughput_tps.is_finite() && m.throughput_tps > 0.0);
        assert_eq!(m.latency.p50_us, 300);
        assert_eq!(m.latency.p95_us, 300);
        assert_eq!(m.latency.p99_us, 300);
        assert_eq!(m.latency.max_us, 300);
        assert_eq!(m.latency.mean_us, 300.0);
    }

    #[test]
    fn all_aborted_run_has_zero_throughput_and_full_abort_rate() {
        let receipts: Vec<TxnReceipt> = (0..5)
            .map(|i| TxnReceipt::aborted(id(i), AbortReason::Overload, i * 10, i * 10 + 5))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 0);
        assert_eq!(m.aborted(), 5);
        assert_eq!(m.throughput_tps, 0.0);
        assert_eq!(m.abort_rate_percent(), 100.0);
        // No committed latencies: the summary is the zero default.
        assert_eq!(m.latency, LatencySummary::default());
    }

    #[test]
    fn empty_receipts_give_an_empty_time_series() {
        let s = TimeSeries::from_receipts(&[], 1_000, 0);
        assert!(s.is_empty());
        assert_eq!(s.window_at(500), None);
    }

    #[test]
    fn time_series_buckets_by_finish_time_and_keeps_empty_windows() {
        // Finishes at 500, 1500, 1600 and 3500: four 1 ms windows, the third
        // of which is empty (the "dip" shape).
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 500),
            TxnReceipt::committed(id(2), 1_000, 1_500),
            TxnReceipt::aborted(id(3), AbortReason::Overload, 1_000, 1_600),
            TxnReceipt::committed(id(4), 3_000, 3_500),
        ];
        let s = TimeSeries::from_receipts(&receipts, 1_000, 0);
        assert_eq!(s.windows.len(), 4);
        assert_eq!(
            s.windows.iter().map(|w| w.committed).collect::<Vec<_>>(),
            vec![1, 1, 0, 1]
        );
        // The offered side buckets by submit time: submits at 0, 1000, 1000
        // and 3000.
        assert_eq!(
            s.windows.iter().map(|w| w.submitted).collect::<Vec<_>>(),
            vec![1, 2, 0, 1]
        );
        assert_eq!(s.windows[1].offered_tps, 2_000.0);
        assert_eq!(s.windows[1].aborted, 1);
        assert_eq!(s.windows[1].abort_rate_percent, 50.0);
        assert_eq!(s.windows[2].throughput_tps, 0.0);
        // 1 commit per 1 ms window = 1000 tps.
        assert_eq!(s.windows[0].throughput_tps, 1_000.0);
        assert_eq!(s.window_at(3_200).unwrap().start_us, 3_000);
        assert_eq!(s.windows[0].end_us, 1_000);
    }

    #[test]
    fn offered_load_outruns_achieved_load_in_a_backlogged_series() {
        // 10 submissions inside the first millisecond, but the pipeline only
        // finishes one per millisecond: offered ≫ achieved early, and the
        // backlog drains across later windows with zero offered load.
        let receipts: Vec<TxnReceipt> = (0..10)
            .map(|i| TxnReceipt::committed(id(i), i * 100, (i + 1) * 1_000))
            .collect();
        let s = TimeSeries::from_receipts(&receipts, 1_000, 0);
        assert_eq!(s.windows[0].submitted, 10);
        assert_eq!(s.windows[0].committed, 0);
        assert!(s.windows[0].offered_tps > s.windows[0].throughput_tps);
        let tail = s.windows.last().unwrap();
        assert_eq!(tail.submitted, 0);
        assert_eq!(tail.committed, 1);
        // Submits before the warm-up origin are trimmed from the offered
        // side just like early finishes.
        let trimmed = TimeSeries::from_receipts(&receipts, 1_000, 1_000);
        assert_eq!(trimmed.windows[0].start_us, 1_000);
        assert_eq!(
            trimmed.windows.iter().map(|w| w.submitted).sum::<u64>(),
            0,
            "all submits (0–900 µs) predate the warm-up origin"
        );
    }

    #[test]
    fn warmup_trimming_drops_early_finishes_and_shifts_the_origin() {
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 400), // trimmed
            TxnReceipt::committed(id(2), 0, 1_200),
            TxnReceipt::committed(id(3), 0, 1_900),
        ];
        let s = TimeSeries::from_receipts(&receipts, 1_000, 1_000);
        assert_eq!(s.windows.len(), 1);
        assert_eq!(s.windows[0].start_us, 1_000);
        assert_eq!(s.windows[0].committed, 2);
        assert_eq!(s.window_at(500), None, "before the warm-up origin");
    }

    #[test]
    fn windowed_percentiles_match_a_hand_computed_fixture() {
        // Window 0 (finish < 1000): latencies 10..=100 step 10 (10 samples).
        // Window 1: latencies 200 and 400.
        let mut receipts: Vec<TxnReceipt> = (1..=10)
            .map(|i| TxnReceipt::committed(id(i), 0, i * 10))
            .collect();
        receipts.push(TxnReceipt::committed(id(11), 1_000, 1_200));
        receipts.push(TxnReceipt::committed(id(12), 1_000, 1_400));
        let s = TimeSeries::from_receipts(&receipts, 1_000, 0);
        assert_eq!(s.windows.len(), 2);
        let w0 = &s.windows[0];
        // Nearest rank, index = ⌈q·n⌉−1: n=10 → p50 at index 4 (50),
        // p95 at index ⌈9.5⌉−1 = 9 (100), p99 at index ⌈9.9⌉−1 = 9 (100).
        assert_eq!(w0.latency.p50_us, 50);
        assert_eq!(w0.latency.p95_us, 100);
        assert_eq!(w0.latency.p99_us, 100);
        assert_eq!(w0.latency.max_us, 100);
        assert_eq!(w0.latency.mean_us, 55.0);
        let w1 = &s.windows[1];
        // n=2 → p50 at index ⌈1⌉−1 = 0 (200), p95/p99 at index ⌈1.9⌉−1 = 1
        // (400), max 400.
        assert_eq!(w1.latency.p50_us, 200);
        assert_eq!(w1.latency.p95_us, 400);
        assert_eq!(w1.latency.p99_us, 400);
        assert_eq!(w1.latency.max_us, 400);
        assert_eq!(w1.latency.mean_us, 300.0);
    }
}
