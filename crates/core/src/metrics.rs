//! Receipt aggregation: throughput, latency percentiles, abort breakdowns and
//! phase-level latency decomposition.

use std::collections::BTreeMap;

use dichotomy_common::{AbortReason, Timestamp, TxnReceipt, TxnStatus};

/// Latency summary in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencySummary {
    fn from_sorted(mut latencies: Vec<u64>) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let n = latencies.len();
        let pct = |p: f64| latencies[((n as f64 - 1.0) * p) as usize];
        LatencySummary {
            mean_us: latencies.iter().sum::<u64>() as f64 / n as f64,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: latencies[n - 1],
        }
    }
}

/// Aggregated metrics for one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted, by reason.
    pub aborts: BTreeMap<AbortReason, u64>,
    /// Committed transactions per second of simulated time.
    pub throughput_tps: f64,
    /// Latency of committed transactions.
    pub latency: LatencySummary,
    /// Mean per-phase latency (µs) across committed transactions, keyed by
    /// the system-reported phase name.
    pub phase_means_us: BTreeMap<&'static str, f64>,
    /// Total simulated duration used for the throughput computation (µs).
    pub duration_us: Timestamp,
}

impl Metrics {
    /// Aggregate a set of receipts. The measurement window runs from the
    /// earliest submit to the latest finish.
    pub fn from_receipts(receipts: &[TxnReceipt]) -> Self {
        if receipts.is_empty() {
            return Metrics::default();
        }
        let start = receipts.iter().map(|r| r.submit_time).min().unwrap_or(0);
        let end = receipts.iter().map(|r| r.finish_time).max().unwrap_or(0);
        let duration_us = end.saturating_sub(start).max(1);

        let mut committed = 0u64;
        let mut aborts: BTreeMap<AbortReason, u64> = BTreeMap::new();
        let mut latencies = Vec::new();
        let mut phase_sums: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
        for r in receipts {
            match r.status {
                TxnStatus::Committed => {
                    committed += 1;
                    latencies.push(r.latency_us());
                    for (name, us) in &r.phase_latencies {
                        let entry = phase_sums.entry(name).or_insert((0.0, 0));
                        entry.0 += *us as f64;
                        entry.1 += 1;
                    }
                }
                TxnStatus::Aborted(reason) => {
                    *aborts.entry(reason).or_insert(0) += 1;
                }
            }
        }
        let phase_means_us = phase_sums
            .into_iter()
            .map(|(name, (sum, count))| (name, sum / count.max(1) as f64))
            .collect();
        Metrics {
            committed,
            aborts,
            throughput_tps: committed as f64 / (duration_us as f64 / 1e6),
            latency: LatencySummary::from_sorted(latencies),
            phase_means_us,
            duration_us,
        }
    }

    /// Total aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Abort rate over all finished transactions, in percent.
    pub fn abort_rate_percent(&self) -> f64 {
        let total = self.committed + self.aborted();
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborted() as f64 / total as f64
        }
    }

    /// Aborts attributed to one reason, in percent of all finished
    /// transactions.
    pub fn abort_share_percent(&self, reason: AbortReason) -> f64 {
        let total = self.committed + self.aborted();
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborts.get(&reason).copied().unwrap_or(0) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, TxnId};

    fn id(seq: u64) -> TxnId {
        TxnId::new(ClientId(1), seq)
    }

    #[test]
    fn empty_receipts_give_zero_metrics() {
        let m = Metrics::from_receipts(&[]);
        assert_eq!(m.committed, 0);
        assert_eq!(m.throughput_tps, 0.0);
        assert_eq!(m.abort_rate_percent(), 0.0);
    }

    #[test]
    fn throughput_and_latency_are_computed_over_the_window() {
        // 10 commits over 1 second of simulated time, each 1 ms latency.
        let receipts: Vec<TxnReceipt> = (0..10)
            .map(|i| TxnReceipt::committed(id(i), i * 100_000, i * 100_000 + 1_000))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 10);
        assert!(
            (m.throughput_tps - 10.0 / 0.901).abs() < 0.5,
            "{}",
            m.throughput_tps
        );
        assert_eq!(m.latency.p50_us, 1_000);
        assert_eq!(m.latency.max_us, 1_000);
        assert!((m.latency.mean_us - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn abort_breakdown_by_reason() {
        let receipts = vec![
            TxnReceipt::committed(id(1), 0, 10),
            TxnReceipt::aborted(id(2), AbortReason::ReadWriteConflict, 0, 10),
            TxnReceipt::aborted(id(3), AbortReason::ReadWriteConflict, 0, 10),
            TxnReceipt::aborted(id(4), AbortReason::InconsistentRead, 0, 10),
        ];
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.committed, 1);
        assert_eq!(m.aborted(), 3);
        assert_eq!(m.abort_rate_percent(), 75.0);
        assert_eq!(m.abort_share_percent(AbortReason::ReadWriteConflict), 50.0);
        assert_eq!(m.abort_share_percent(AbortReason::InconsistentRead), 25.0);
        assert_eq!(m.abort_share_percent(AbortReason::Overload), 0.0);
    }

    #[test]
    fn phase_means_average_across_committed_receipts() {
        let mut a = TxnReceipt::committed(id(1), 0, 300);
        a.phase_latencies = vec![("execute", 100), ("validate", 200)];
        let mut b = TxnReceipt::committed(id(2), 0, 500);
        b.phase_latencies = vec![("execute", 300), ("validate", 200)];
        let m = Metrics::from_receipts(&[a, b]);
        assert_eq!(m.phase_means_us["execute"], 200.0);
        assert_eq!(m.phase_means_us["validate"], 200.0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let receipts: Vec<TxnReceipt> = (1..=100)
            .map(|i| TxnReceipt::committed(id(i), 0, i * 10))
            .collect();
        let m = Metrics::from_receipts(&receipts);
        assert_eq!(m.latency.p50_us, 500);
        assert_eq!(m.latency.p95_us, 950);
        assert_eq!(m.latency.p99_us, 990);
        assert_eq!(m.latency.max_us, 1000);
    }
}
